/**
 * @file
 * Reproduces Figure 9: performability with occasional system crashes
 * in the VIA networking subsystem (immature hardware/firmware),
 * modeled as switch crashes at rates 1/week, 1/month, 1/3-months.
 * TCP (assumed to run over mature Gigabit Ethernet) sees none.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/scenarios.hh"

using namespace performa;

int
main()
{
    bench::banner(
        "Figure 9: system faults from an immature substrate (VIA only)",
        "trade-offs mirror Figures 7/8: high system-fault rates erase "
        "VIA's performability advantage.");

    exp::BehaviorDb db = bench::loadBehaviors();
    auto lookup = db.lookup();

    const double day = 86400.0, week = 7 * day, month = 30 * day;

    std::printf("\n%-14s %14s %14s %14s %14s\n", "version", "none",
                "1/week", "1/month", "1/3months");
    for (press::Version v : press::allVersions) {
        std::printf("%-14s", press::versionName(v));
        for (double sys : {0.0, week, month, 3 * month}) {
            model::ScenarioOptions opts;
            opts.appMttfSec = month;
            opts.viaSystemFaultMttfSec = press::isVia(v) ? sys : 0.0;
            model::PerfResult r =
                model::evaluateScenario(v, lookup, opts);
            std::printf(" %10.0f r/s", r.performability);
        }
        std::printf("\n");
    }
    return 0;
}
