/**
 * @file
 * Shared plumbing for the reproduction benches: the phase-1 behaviour
 * cache location, per-figure banner printing, and small formatting
 * helpers. Each bench binary regenerates one table or figure of the
 * paper and prints paper-vs-measured rows.
 */

#ifndef PERFORMA_BENCH_COMMON_HH
#define PERFORMA_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "campaign/phase1.hh"
#include "campaign/thread_pool.hh"
#include "exp/behavior_db.hh"
#include "exp/report.hh"
#include "exp/stages.hh"

namespace performa::bench {

/**
 * Where phase-1 behaviours are cached across bench binaries. First
 * run measures (~55 fault-injection experiments); later runs reuse.
 * Override with the PERFORMA_PHASE1_CACHE environment variable.
 */
inline std::string
cachePath()
{
    const char *env = std::getenv("PERFORMA_PHASE1_CACHE");
    return env ? env : "performa_phase1.csv";
}

/**
 * Load-or-measure the full behaviour database. Missing grid points
 * are measured in parallel on the campaign worker pool (--jobs via
 * PERFORMA_JOBS; defaults to the hardware threads) with structured
 * done/total progress. Per-job seeds are scheduling-independent, so
 * the resulting cache is byte-identical for any worker count.
 */
inline exp::BehaviorDb
loadBehaviors()
{
    exp::BehaviorDb db;
    std::string path = cachePath();
    std::printf("phase-1 behaviours (cache: %s, jobs: %u)\n",
                path.c_str(), campaign::defaultWorkerCount());
    campaign::Phase1Options opts;
    opts.progress = [](const campaign::Progress &p) {
        std::printf("  [%2zu/%2zu] measured %-32s %5.1fs  "
                    "elapsed %.0fs  eta %.0fs\n",
                    p.done, p.total, p.last->label.c_str(),
                    p.last->wallSeconds, p.elapsedSeconds,
                    p.etaSeconds);
        std::fflush(stdout);
    };
    campaign::Phase1Result res = campaign::ensurePhase1(db, path, opts);
    for (const campaign::JobReport &f : res.failures)
        std::printf("  FAILED %s: %s\n", f.label.c_str(),
                    f.error.c_str());
    return db;
}

/**
 * Run the canonical single-fault experiment for (version, fault) and
 * print the throughput timeline plus the extracted 7-stage behaviour
 * — the reproduction of one curve of a Figure 2-5 style plot.
 */
inline void
timeline(press::Version v, fault::FaultKind k, const char *expected)
{
    std::printf("\n--- %s under %s ---\n", press::versionName(v),
                fault::faultName(k));
    std::printf("Paper behaviour: %s\n", expected);
    exp::ExperimentConfig cfg = exp::experimentFor(v, k);
    exp::ExperimentResult res = exp::runExperiment(cfg);
    exp::printSeries(res, sim::sec(40), cfg.duration, sim::sec(10));
    model::MeasuredBehavior mb = exp::extractBehavior(res, *cfg.fault);
    exp::printBehavior(mb);
    std::printf("  end state: %s\n",
                res.endSplintered
                    ? "SPLINTERED - operator reset required"
                    : "single cooperating cluster");
    std::fflush(stdout);
}

inline void
banner(const char *title, const char *paper_says)
{
    std::printf("\n================================================="
                "=====================\n");
    std::printf("%s\n", title);
    std::printf("Paper: %s\n", paper_says);
    std::printf("==================================================="
                "===================\n");
}

} // namespace performa::bench

#endif // PERFORMA_BENCH_COMMON_HH
