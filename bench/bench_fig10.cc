/**
 * @file
 * Reproduces Figure 10: the combined pessimistic fault load for VIA —
 * packet drops 1/month, extra application faults 1 per 2 weeks, and
 * system failures 1/month, all at once.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/scenarios.hh"

using namespace performa;

int
main()
{
    bench::banner(
        "Figure 10: combined pessimistic fault load for VIA",
        "under this load the performability of two of the three VIA "
        "versions falls below TCP-PRESS-HB: the advantage of a "
        "user-level network depends on product maturity and on the "
        "programmers handling the exported API.");

    exp::BehaviorDb db = bench::loadBehaviors();
    auto lookup = db.lookup();

    const double day = 86400.0, week = 7 * day, month = 30 * day;

    std::printf("\n%-14s %14s %14s\n", "version", "same load",
                "pessimistic");
    for (press::Version v : press::allVersions) {
        model::ScenarioOptions base;
        base.appMttfSec = month;
        model::PerfResult r0 = model::evaluateScenario(v, lookup, base);

        model::ScenarioOptions pess = base;
        if (press::isVia(v)) {
            pess.viaPacketDropMttfSec = month;
            pess.viaExtraAppMttfSec = 2 * week;
            pess.viaSystemFaultMttfSec = month;
        }
        model::PerfResult r1 = model::evaluateScenario(v, lookup, pess);
        std::printf("%-14s %10.0f r/s %10.0f r/s\n",
                    press::versionName(v), r0.performability,
                    r1.performability);
    }
    return 0;
}
