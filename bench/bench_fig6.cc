/**
 * @file
 * Reproduces Figure 6 (and prints Table 3): modeled unavailability
 * with per-fault breakdown (6a) and performability (6b) of the five
 * PRESS versions under the same fault load, at application fault
 * rates of once per day and once per month.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/scenarios.hh"

using namespace performa;

namespace {

void
printTable3()
{
    std::printf("\nTable 3 fault load (inputs):\n");
    model::FaultLoadParams p;
    p.appMttfSec = 86400.0;
    for (const auto &fc : model::table3FaultLoad(p)) {
        std::printf("  %-18s count=%.0f  MTTF=%10.0fs  MTTR=%6.0fs\n",
                    fc.name.c_str(), fc.count, fc.mttfSec, fc.mttrSec);
    }
    std::printf("  (application classes shown for 1 fault/day/node, "
                "split 40/40/8/9/2)\n");
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 6: unavailability and performability, same fault load",
        "(a) all three VIA versions slightly MORE available than the "
        "TCP versions; availability uniformly terrible: ~99% at 1 app "
        "fault/day, below 99.9% even at 1/month; process crash/hang "
        "dominate. (b) with small availability differences, the "
        "fastest version (VIA-PRESS-5) has the best performability.");

    printTable3();
    exp::BehaviorDb db = bench::loadBehaviors();
    auto lookup = db.lookup();

    const double day = 86400.0, month = 30 * day;

    for (double app_mttf : {day, month}) {
        std::printf("\n--- application fault rate: 1 per %s per node "
                    "---\n",
                    app_mttf == day ? "DAY" : "MONTH");
        std::printf("%-14s %14s %14s %14s\n", "version",
                    "unavailability", "availability", "performability");
        for (press::Version v : press::allVersions) {
            model::ScenarioOptions opts;
            opts.appMttfSec = app_mttf;
            model::PerfResult r =
                model::evaluateScenario(v, lookup, opts);
            std::printf("%-14s %14.5f %13.4f%% %11.0f r/s\n",
                        press::versionName(v), r.unavailability,
                        100.0 * r.availability, r.performability);
        }

        std::printf("\nper-fault contribution to unavailability "
                    "(Figure 6a stacking):\n");
        std::printf("%-20s", "fault");
        for (press::Version v : press::allVersions)
            std::printf(" %12.12s", press::versionName(v));
        std::printf("\n");
        // Collect breakdowns per version, keyed by class order.
        std::vector<model::PerfResult> results;
        for (press::Version v : press::allVersions) {
            model::ScenarioOptions opts;
            opts.appMttfSec = app_mttf;
            results.push_back(model::evaluateScenario(v, lookup, opts));
        }
        std::size_t classes = results[0].breakdown.size();
        for (std::size_t c = 0; c < classes; ++c) {
            std::printf("%-20s",
                        results[0].breakdown[c].name.c_str());
            for (const auto &r : results)
                std::printf(" %12.6f", r.breakdown[c].unavailability);
            std::printf("\n");
        }
    }
    return 0;
}
