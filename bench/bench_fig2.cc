/**
 * @file
 * Reproduces Figure 2: throughput of PRESS when a transient link
 * failure is injected (node 3's link to the switch, lasting its
 * MTTR). The paper plots TCP-PRESS, TCP-PRESS-HB and VIA-PRESS-5
 * (the other VIA versions behave like VIA-PRESS-5).
 */

#include "bench_common.hh"
#include "exp/report.hh"
#include "exp/stages.hh"

using namespace performa;

int
main()
{
    bench::banner(
        "Figure 2: transient link failure",
        "TCP-PRESS stalls at ~0 for the whole fault and resumes; "
        "TCP-PRESS-HB detects in 15s (3 heartbeats) and splinters 3+1 "
        "with NO re-merge; VIA versions detect ~instantly (connection "
        "breaks) and splinter 3+1 with NO re-merge. The splintered "
        "versions are thus LESS available than plain TCP-PRESS for "
        "short link faults.");

    bench::timeline(press::Version::TcpPress, fault::FaultKind::LinkDown,
                    "stall for the fault duration, then recover "
                    "(connection abort timeout never reached)");
    bench::timeline(press::Version::TcpPressHb,
                    fault::FaultKind::LinkDown,
                    "detect after 3 lost heartbeats (~15s), splinter "
                    "into 3 cooperating nodes + 1 singleton, stay "
                    "splintered after the link recovers");
    bench::timeline(press::Version::ViaPress5,
                    fault::FaultKind::LinkDown,
                    "connections break instantly; splinter 3+1; stay "
                    "splintered (VIA-PRESS-0/3 behave the same)");
    return 0;
}
