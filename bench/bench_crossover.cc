/**
 * @file
 * Reproduces the headline result quoted in the abstract and the
 * conclusion: faults in a VIA-based server (switch, link and
 * application errors) "would have to occur at approximately 4 times
 * the rate" of a TCP-based server before the performabilities
 * equalize.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/scenarios.hh"

using namespace performa;

int
main()
{
    bench::banner(
        "Crossover: how much higher must VIA's fault rate be?",
        "approximately 4x (link, switch and application faults scaled "
        "together until VIA and TCP performability match)");

    exp::BehaviorDb db = bench::loadBehaviors();
    auto lookup = db.lookup();

    const press::Version vias[] = {press::Version::ViaPress0,
                                   press::Version::ViaPress3,
                                   press::Version::ViaPress5};
    const press::Version tcps[] = {press::Version::TcpPress,
                                   press::Version::TcpPressHb};

    model::ScenarioOptions base;
    base.appMttfSec = 30 * 86400.0;

    std::printf("\ncrossover factor k (VIA fault rate = k x TCP's):\n");
    std::printf("%-14s", "");
    for (press::Version t : tcps)
        std::printf(" %14s", press::versionName(t));
    std::printf("\n");
    double sum = 0;
    int n = 0;
    for (press::Version v : vias) {
        std::printf("%-14s", press::versionName(v));
        for (press::Version t : tcps) {
            double k = model::crossoverFactor(v, t, lookup, base);
            std::printf(" %13.2fx", k);
            sum += k;
            ++n;
        }
        std::printf("\n");
    }
    std::printf("\nmean crossover factor: %.2fx (paper: ~4x)\n",
                sum / n);
    return 0;
}
