/**
 * @file
 * Reproduces Figure 8: performability when the VIA versions carry
 * more software bugs (VIA's programming model is harder: manual
 * buffer management and flow control). TCP stays at 1 application
 * fault per month; the VIA application fault rate scales from 1/day
 * to 1/month.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/scenarios.hh"

using namespace performa;

int
main()
{
    bench::banner(
        "Figure 8: extra software bugs on VIA",
        "performability comparable when the ADDITIONAL VIA application "
        "fault load is around 1/week; an experienced team (few added "
        "bugs) should choose VIA, an inexperienced one TCP.");

    exp::BehaviorDb db = bench::loadBehaviors();
    auto lookup = db.lookup();

    const double day = 86400.0, week = 7 * day, month = 30 * day;

    std::printf("\n%-14s %14s %14s %14s %14s\n", "version", "baseline",
                "+1/day", "+1/week", "+1/month");
    for (press::Version v : press::allVersions) {
        std::printf("%-14s", press::versionName(v));
        for (double extra : {0.0, day, week, month}) {
            model::ScenarioOptions opts;
            opts.appMttfSec = month; // TCP baseline: 1 per month
            opts.viaExtraAppMttfSec = press::isVia(v) ? extra : 0.0;
            model::PerfResult r =
                model::evaluateScenario(v, lookup, opts);
            std::printf(" %10.0f r/s", r.performability);
        }
        std::printf("\n");
    }
    return 0;
}
