/**
 * @file
 * Validates the phase-2 analytic model against direct long-run
 * simulation (the methodology's own soundness check, cf. the
 * assumptions discussion in Section 2.2): fault storms at increasing
 * rates, measured availability vs the model's prediction. The model
 * should track the simulation closely while faults rarely overlap
 * (small total degraded weight) and drift as overlap grows.
 */

#include <cstdio>

#include "bench_common.hh"
#include "exp/long_run.hh"

using namespace performa;

int
main()
{
    bench::banner(
        "Model validation: analytic prediction vs long-run simulation",
        "the model assumes single-fault-at-a-time with exponential "
        "arrivals; its error should be small at realistic rates and "
        "grow once faults overlap");

    std::printf("\n%-14s %6s %9s %9s %9s %7s %7s %7s\n", "version",
                "scale", "measured", "modeled", "error", "sum W",
                "faults", "resets");
    for (press::Version v :
         {press::Version::TcpPressHb, press::Version::ViaPress0}) {
        for (double scale : {1.0, 4.0}) {
            exp::LongRunConfig cfg;
            cfg.version = v;
            cfg.faults = exp::defaultValidationLoad(scale);
            cfg.duration = sim::minutes(20);
            exp::LongRunResult r = exp::validateModel(cfg);
            std::printf("%-14s %5.1fx %8.4f%% %8.4f%% %8.4f%% %7.3f "
                        "%7llu %7llu\n",
                        press::versionName(v), scale,
                        100 * r.measuredAvailability,
                        100 * r.predictedAvailability,
                        100 * r.absoluteError(), r.sumDegradedWeight,
                        (unsigned long long)r.faultsInjected,
                        (unsigned long long)r.operatorResets);
            std::fflush(stdout);
        }
    }
    std::printf("\n(scale multiplies all fault rates; 'sum W' is the "
                "fraction of time the model\nbelieves the system spends "
                "in degraded stages — overlap grows with it)\n");
    return 0;
}
