/**
 * @file
 * Reproduces Figure 3: throughput of PRESS when a node crash (hard
 * reboot) is injected.
 */

#include "bench_common.hh"

using namespace performa;

int
main()
{
    bench::banner(
        "Figure 3: node crash (hard reboot of node 3)",
        "TCP-PRESS grinds to a halt while the node is down; the "
        "recovered node's rejoin races crash detection and fails "
        "(rejoin messages disregarded while the node is still a "
        "member), so the cluster ends as 3 nodes + an independent "
        "singleton. TCP-PRESS-HB and the VIA versions detect quickly, "
        "run with 3 nodes, and cleanly reintegrate the node after "
        "reboot.");

    bench::timeline(press::Version::TcpPress,
                    fault::FaultKind::NodeCrash,
                    "halt while down; failed rejoin (the timing bug); "
                    "3-node cluster + singleton until the operator");
    bench::timeline(press::Version::TcpPressHb,
                    fault::FaultKind::NodeCrash,
                    "detect via heartbeats in ~15s, 3-node operation, "
                    "clean rejoin after reboot");
    bench::timeline(press::Version::ViaPress5,
                    fault::FaultKind::NodeCrash,
                    "instant detection via broken connections, 3-node "
                    "operation, clean rejoin (VIA-0/3 identical)");
    return 0;
}
