/**
 * @file
 * Ablation studies on the design choices the paper calls out:
 *
 *  1. Robust membership (Section 6.2): "to make heartbeats more
 *     effective, one needs to implement a rigorous membership
 *     algorithm that can repair the group membership" — measure the
 *     splinter-until-operator cost with and without the re-merge
 *     extension under a transient link fault.
 *  2. Static pre-pinning (Section 7): "if there are enough resources
 *     these should be pre-allocated during channel set-up" — measure
 *     VIA-PRESS-5's exposure to pin exhaustion with per-file vs
 *     pre-pinned registration.
 *  3. Heartbeat threshold: detection latency vs the splinter risk as
 *     the miss threshold varies.
 *  4. Operator response time: how the environmental assumption moves
 *     modeled unavailability for the non-self-healing versions.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/scenarios.hh"

using namespace performa;

namespace {

exp::ExperimentConfig
linkFaultConfig(press::Version v, bool robust)
{
    exp::ExperimentConfig cfg =
        exp::experimentFor(v, fault::FaultKind::LinkDown);
    cfg.cluster.press.robustMembership = robust;
    return cfg;
}

void
membershipAblation()
{
    std::printf("\n--- 1. robust membership under a 3-minute link "
                "fault ---\n");
    std::printf("%-14s %-10s %10s %12s %16s\n", "version", "membership",
                "healed?", "stage E", "post-fault dip");
    for (press::Version v :
         {press::Version::TcpPressHb, press::Version::ViaPress5}) {
        for (bool robust : {false, true}) {
            exp::ExperimentConfig cfg = linkFaultConfig(v, robust);
            exp::ExperimentResult res = exp::runExperiment(cfg);
            model::MeasuredBehavior mb =
                exp::extractBehavior(res, *cfg.fault);
            std::printf("%-14s %-10s %10s %9.0f r/s %13.1f%%\n",
                        press::versionName(v),
                        robust ? "robust" : "paper",
                        mb.healed ? "yes" : "NO (operator)",
                        mb.tput[model::StageE],
                        100.0 * (1.0 - mb.tput[model::StageE] /
                                           mb.normalTput));
        }
    }
    std::printf("(the robust protocol turns the indefinite splinter "
                "into a self-healing transient)\n");
}

void
pinningAblation()
{
    std::printf("\n--- 2. VIA-PRESS-5 pinning strategy under pin "
                "exhaustion ---\n");
    std::printf("%-12s %12s %12s %10s\n", "pinning", "normal",
                "during fault", "dip");
    for (bool static_pin : {false, true}) {
        exp::ExperimentConfig cfg = exp::experimentFor(
            press::Version::ViaPress5, fault::FaultKind::PinExhaustion);
        cfg.cluster.press.staticPinning = static_pin;
        exp::ExperimentResult res = exp::runExperiment(cfg);
        model::MeasuredBehavior mb =
            exp::extractBehavior(res, *cfg.fault);
        std::printf("%-12s %9.0f r/s %9.0f r/s %9.2f%%\n",
                    static_pin ? "static" : "per-file", mb.normalTput,
                    mb.tput[model::StageA],
                    100.0 * (1.0 - mb.tput[model::StageA] /
                                       mb.normalTput));
    }
    std::printf("(pre-pinning the cache region removes the "
                "vulnerability entirely)\n");
}

void
heartbeatAblation()
{
    std::printf("\n--- 3. heartbeat miss threshold (TCP-PRESS-HB, "
                "link fault) ---\n");
    std::printf("%8s %18s\n", "misses", "detection latency");
    for (int misses : {2, 3, 5}) {
        exp::ExperimentConfig cfg = exp::experimentFor(
            press::Version::TcpPressHb, fault::FaultKind::LinkDown);
        cfg.cluster.press.hbMissThreshold = misses;
        exp::ExperimentResult res = exp::runExperiment(cfg);
        model::MeasuredBehavior mb =
            exp::extractBehavior(res, *cfg.fault);
        std::printf("%8d %16.1fs\n", misses, mb.dur[model::StageA]);
    }
    std::printf("(threshold x 5s period; lower detects faster but "
                "risks false positives)\n");
}

void
operatorAblation()
{
    std::printf("\n--- 4. operator response time (modeled, Table 3 "
                "load, app faults 1/month) ---\n");
    exp::BehaviorDb db = bench::loadBehaviors();
    std::printf("%12s", "response");
    for (press::Version v : press::allVersions)
        std::printf(" %12.12s", press::versionName(v));
    std::printf("\n");
    for (double resp : {120.0, 600.0, 1800.0}) {
        std::printf("%10.0fs ", resp);
        for (press::Version v : press::allVersions) {
            model::ScenarioOptions opts;
            opts.appMttfSec = 30 * 86400.0;
            opts.env.operatorResponseSec = resp;
            model::PerfResult r =
                model::evaluateScenario(v, db.lookup(), opts);
            std::printf(" %12.5f", r.unavailability);
        }
        std::printf("\n");
    }
    std::printf("(unavailability; versions that splinter lean hardest "
                "on the operator)\n");
}

void
allLessonsAblation()
{
    std::printf("\n--- 5. all lessons applied: VIA-PRESS-5 + robust "
                "membership + static pinning ---\n");
    // Measure a full phase-1 behaviour set for the hardened server
    // (cached separately from the stock measurements).
    std::string cache = bench::cachePath() + ".hardened";
    exp::BehaviorDb hardened;
    hardened.load(cache);
    bool dirty = false;
    for (fault::FaultKind k : fault::allFaultKinds) {
        if (hardened.has(press::Version::ViaPress5, k))
            continue;
        exp::ExperimentConfig cfg =
            exp::experimentFor(press::Version::ViaPress5, k);
        cfg.cluster.press.robustMembership = true;
        cfg.cluster.press.staticPinning = true;
        exp::ExperimentResult res = exp::runExperiment(cfg);
        hardened.set(press::Version::ViaPress5, k,
                     exp::extractBehavior(res, *cfg.fault));
        std::printf("  measured hardened VIA-PRESS-5 x %s\n",
                    fault::faultName(k));
        std::fflush(stdout);
        dirty = true;
    }
    if (dirty)
        hardened.save(cache);

    exp::BehaviorDb stock = bench::loadBehaviors();
    model::ScenarioOptions opts;
    opts.appMttfSec = 30 * 86400.0;

    auto stock_lookup = stock.lookup();
    auto hardened_lookup = [&](press::Version v, fault::FaultKind k) {
        return v == press::Version::ViaPress5
                   ? hardened.get(v, k)
                   : stock.get(v, k);
    };

    std::printf("\n%-26s %14s %16s\n", "configuration",
                "unavailability", "performability");
    model::PerfResult tcp = model::evaluateScenario(
        press::Version::TcpPressHb, stock_lookup, opts);
    std::printf("%-26s %14.5f %12.0f r/s\n", "TCP-PRESS-HB (stock)",
                tcp.unavailability, tcp.performability);
    model::PerfResult via = model::evaluateScenario(
        press::Version::ViaPress5, stock_lookup, opts);
    std::printf("%-26s %14.5f %12.0f r/s\n", "VIA-PRESS-5 (stock)",
                via.unavailability, via.performability);
    model::PerfResult hard = model::evaluateScenario(
        press::Version::ViaPress5, hardened_lookup, opts);
    std::printf("%-26s %14.5f %12.0f r/s\n",
                "VIA-PRESS-5 (hardened)", hard.unavailability,
                hard.performability);
    std::printf("(the Section 7 communication-layer recipe, "
                "quantified end to end)\n");
}

} // namespace

int
main()
{
    bench::banner("Ablations: the paper's design-lesson knobs",
                  "Sections 6.2 and 7 discuss these qualitatively; "
                  "the ablations quantify them.");
    membershipAblation();
    pinningAblation();
    heartbeatAblation();
    operatorAblation();
    allLessonsAblation();
    return 0;
}
