/**
 * @file
 * Reproduces Figure 4: kernel memory (skbuf) exhaustion on the TCP
 * versions, and pinnable-memory exhaustion on VIA-PRESS-5. The other
 * VIA versions show no degradation under either fault (resources
 * pre-allocated at start-up), so the paper omits their curves; we
 * print VIA-PRESS-0 under kernel memory exhaustion to demonstrate
 * the immunity.
 */

#include "bench_common.hh"

using namespace performa;

int
main()
{
    bench::banner(
        "Figure 4: memory exhaustion",
        "Kernel memory exhaustion freezes TCP-PRESS (packets queue in "
        "the OS waiting for buffers); TCP-PRESS-HB splinters 3+1 after "
        "3 missed heartbeats; VIA versions are immune thanks to "
        "pre-allocation. VIA-PRESS-5 is instead vulnerable to "
        "pinnable-memory exhaustion: it sheds cached files and serves "
        "degraded until the fault clears.");

    bench::timeline(press::Version::TcpPress,
                    fault::FaultKind::KernelMemAlloc,
                    "throughput drops to ~0 for the fault duration "
                    "(cluster freeze), then recovers");
    bench::timeline(press::Version::TcpPressHb,
                    fault::FaultKind::KernelMemAlloc,
                    "heartbeats from the faulty node stop; splinter "
                    "3+1 after ~15s; no re-merge");
    bench::timeline(press::Version::ViaPress0,
                    fault::FaultKind::KernelMemAlloc,
                    "no degradation: VIA pre-allocates its resources");
    bench::timeline(press::Version::ViaPress5,
                    fault::FaultKind::PinExhaustion,
                    "drops files from its cache to relieve pin "
                    "pressure; degraded by the resulting misses during "
                    "the fault; regrows afterwards");
    return 0;
}
