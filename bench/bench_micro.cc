/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * event-queue throughput, Zipf sampling, LRU cache churn, TCP and VIA
 * message round-trips, and phase-2 model evaluation. These bound how
 * fast the fault-injection experiments run, not anything the paper
 * measures.
 */

#include <benchmark/benchmark.h>

#include "core/performability.hh"
#include "net/network.hh"
#include "os/node.hh"
#include "press/cache.hh"
#include "proto/tcp.hh"
#include "proto/via.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

using namespace performa;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1024; ++i)
            q.scheduleIn(static_cast<sim::Tick>(i % 97), [&] { ++sink; });
        q.runAll();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_EventQueueTimerArmCancel(benchmark::State &state)
{
    // Mirrors the TCP hot path (tcp.cc armRto/handleAck): every data
    // send arms an RTO timer and the matching ACK cancels it before it
    // fires, so the dominant cost is arm + cancel + queue upkeep, not
    // execution. The fired counter stays 0 in the steady state.
    sim::EventQueue q;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        sim::EventHandle rto = q.scheduleIn(100, [&] { ++fired; });
        q.cancel(rto);
        q.runUntil(q.now() + 1);
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations());
    state.counters["heap_final"] = static_cast<double>(q.heapSize());
}
BENCHMARK(BM_EventQueueTimerArmCancel);

static void
BM_EventQueueExpiryFlood(benchmark::State &state)
{
    // Mirrors ClosedLoopFarm: every request arms a long (6 s) expiry
    // timer and the response arrives almost immediately, cancelling
    // it. Cancelled timers must not linger in the heap for the
    // remaining simulated seconds; peak_heap verifies the engine
    // bounds its heap (compaction) instead of accumulating one dead
    // entry per served request. Iterations are pinned so the peak
    // heap counter is comparable across engine versions.
    sim::EventQueue q;
    std::uint64_t expired = 0;
    std::size_t peak = 0;
    for (auto _ : state) {
        sim::EventHandle expiry =
            q.scheduleIn(sim::sec(6), [&] { ++expired; });
        q.runUntil(q.now() + 1); // the response arrives
        q.cancel(expiry);
        if (q.heapSize() > peak)
            peak = q.heapSize();
    }
    benchmark::DoNotOptimize(expired);
    state.SetItemsProcessed(state.iterations());
    state.counters["peak_heap"] = static_cast<double>(peak);
}
BENCHMARK(BM_EventQueueExpiryFlood)->Iterations(1 << 18);

static void
BM_ZipfSample(benchmark::State &state)
{
    sim::ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 0.8);
    sim::Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(65536);

static void
BM_LruCacheChurn(benchmark::State &state)
{
    press::FileCache cache(1024 * 8192, 8192);
    sim::Rng rng(7);
    std::uint64_t evictions = 0;
    for (auto _ : state) {
        auto f = static_cast<sim::FileId>(rng.uniformInt(0, 4095));
        cache.insert(f, [&](sim::FileId) { ++evictions; });
    }
    benchmark::DoNotOptimize(evictions);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheChurn);

namespace {

/** Minimal two-node world for protocol round-trip benchmarks. */
struct TwoNodeWorld
{
    sim::Simulation sim{7};
    net::Network intra{sim};
    net::Network client{sim};
    net::PortId p0, p1, c0, c1;
    std::unique_ptr<osim::Node> n0, n1;

    TwoNodeWorld()
    {
        p0 = intra.addPort();
        p1 = intra.addPort();
        c0 = client.addPort();
        c1 = client.addPort();
        n0 = std::make_unique<osim::Node>(sim, 0, intra, p0, client, c0);
        n1 = std::make_unique<osim::Node>(sim, 1, intra, p1, client, c1);
    }

    std::unordered_map<sim::NodeId, net::PortId>
    ports() const
    {
        return {{0, p0}, {1, p1}};
    }
};

} // namespace

static void
BM_TcpMessageRoundTrip(benchmark::State &state)
{
    TwoNodeWorld w;
    proto::TcpComm a(*w.n0, proto::TcpConfig{}, w.ports());
    proto::TcpComm b(*w.n1, proto::TcpConfig{}, w.ports());
    std::uint64_t received = 0;
    proto::CommCallbacks cbs;
    cbs.onMessage = [&](sim::NodeId, proto::AppMessage &&) {
        ++received;
    };
    b.setCallbacks(cbs);
    a.setCallbacks({});
    a.start();
    b.start();
    a.connect(1);
    w.sim.runUntil(sim::sec(1));

    for (auto _ : state) {
        proto::AppMessage m;
        m.type = 1;
        m.bytes = 8192;
        a.send(1, std::move(m), {});
        w.sim.events().runAll();
    }
    benchmark::DoNotOptimize(received);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpMessageRoundTrip);

static void
BM_ViaMessageRoundTrip(benchmark::State &state)
{
    TwoNodeWorld w;
    proto::ViaComm a(*w.n0, proto::ViaConfig{}, w.ports());
    proto::ViaComm b(*w.n1, proto::ViaConfig{}, w.ports());
    std::uint64_t received = 0;
    proto::CommCallbacks cbs;
    cbs.onMessage = [&](sim::NodeId peer, proto::AppMessage &&) {
        ++received;
        b.consumed(peer);
    };
    b.setCallbacks(cbs);
    a.setCallbacks({});
    a.start();
    b.start();
    a.connect(1);
    w.sim.runUntil(sim::sec(1));

    for (auto _ : state) {
        proto::AppMessage m;
        m.type = 1;
        m.bytes = 8192;
        a.send(1, std::move(m), {});
        w.sim.events().runAll();
    }
    benchmark::DoNotOptimize(received);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ViaMessageRoundTrip);

static void
BM_ModelEvaluate(benchmark::State &state)
{
    model::FaultLoadParams params;
    std::vector<model::FaultClass> load = model::table3FaultLoad(params);
    model::MeasuredBehavior mb;
    mb.normalTput = 5000;
    mb.detected = true;
    mb.healed = false;
    mb.dur = {15, 10, 0, 15, 0, 0, 0};
    mb.tput = {100, 3800, 4400, 4600, 4600, 0, 3800};

    model::PerformabilityModel m(5000);
    for (const auto &fc : load)
        m.addFault(fc, mb);

    for (auto _ : state)
        benchmark::DoNotOptimize(m.evaluate());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelEvaluate);

BENCHMARK_MAIN();
