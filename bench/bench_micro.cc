/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * event-queue throughput, Zipf sampling, LRU cache churn, TCP and VIA
 * message round-trips, and phase-2 model evaluation. These bound how
 * fast the fault-injection experiments run, not anything the paper
 * measures.
 */

#include <benchmark/benchmark.h>

#include "core/performability.hh"
#include "exp/experiment.hh"
#include "loadgen/session_farm.hh"
#include "net/network.hh"
#include "os/node.hh"
#include "press/cache.hh"
#include "press/messages.hh"
#include "proto/tcp.hh"
#include "proto/via.hh"
#include "sim/latency_histogram.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/snapshot.hh"

using namespace performa;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1024; ++i)
            q.scheduleIn(static_cast<sim::Tick>(i % 97), [&] { ++sink; });
        q.runAll();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_EventQueueTimerArmCancel(benchmark::State &state)
{
    // Mirrors the TCP hot path (tcp.cc armRto/handleAck): every data
    // send arms an RTO timer and the matching ACK cancels it before it
    // fires, so the dominant cost is arm + cancel + queue upkeep, not
    // execution. The fired counter stays 0 in the steady state.
    sim::EventQueue q;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        sim::EventHandle rto = q.scheduleIn(100, [&] { ++fired; });
        q.cancel(rto);
        q.runUntil(q.now() + 1);
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations());
    state.counters["heap_final"] = static_cast<double>(q.heapSize());
}
BENCHMARK(BM_EventQueueTimerArmCancel);

static void
BM_EventQueueExpiryFlood(benchmark::State &state)
{
    // Mirrors ClosedLoopFarm: every request arms a long (6 s) expiry
    // timer and the response arrives almost immediately, cancelling
    // it. Cancelled timers must not linger in the heap for the
    // remaining simulated seconds; peak_heap verifies the engine
    // bounds its heap (compaction) instead of accumulating one dead
    // entry per served request. Iterations are pinned so the peak
    // heap counter is comparable across engine versions.
    sim::EventQueue q;
    std::uint64_t expired = 0;
    std::size_t peak = 0;
    for (auto _ : state) {
        sim::EventHandle expiry =
            q.scheduleIn(sim::sec(6), [&] { ++expired; });
        q.runUntil(q.now() + 1); // the response arrives
        q.cancel(expiry);
        if (q.heapSize() > peak)
            peak = q.heapSize();
    }
    benchmark::DoNotOptimize(expired);
    state.SetItemsProcessed(state.iterations());
    state.counters["peak_heap"] = static_cast<double>(peak);
}
BENCHMARK(BM_EventQueueExpiryFlood)->Iterations(1 << 18);

static void
BM_ZipfSample(benchmark::State &state)
{
    sim::ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 0.8);
    sim::Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(65536);

static void
BM_LruCacheChurn(benchmark::State &state)
{
    press::FileCache cache(1024 * 8192, 8192);
    sim::Rng rng(7);
    std::uint64_t evictions = 0;
    for (auto _ : state) {
        auto f = static_cast<sim::FileId>(rng.uniformInt(0, 4095));
        cache.insert(f, [&](sim::FileId) { ++evictions; });
    }
    benchmark::DoNotOptimize(evictions);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheChurn);

namespace {

/** Minimal two-node world for protocol round-trip benchmarks. */
struct TwoNodeWorld
{
    sim::Simulation sim{7};
    net::Network intra{sim};
    net::Network client{sim};
    net::PortId p0, p1, c0, c1;
    std::unique_ptr<osim::Node> n0, n1;

    TwoNodeWorld()
    {
        p0 = intra.addPort();
        p1 = intra.addPort();
        c0 = client.addPort();
        c1 = client.addPort();
        n0 = std::make_unique<osim::Node>(sim, 0, intra, p0, client, c0);
        n1 = std::make_unique<osim::Node>(sim, 1, intra, p1, client, c1);
    }

    std::unordered_map<sim::NodeId, net::PortId>
    ports() const
    {
        return {{0, p0}, {1, p1}};
    }
};

} // namespace

static void
BM_TcpEchoFlood(benchmark::State &state)
{
    // The message-path hot loop: a window of TCP messages is pumped
    // from node 0 to node 1 and echoed straight back. Every message
    // costs two data frames, two acks, two RTO arm/cancels and two
    // CPU-mediated deliveries, so this bounds how fast the phase-1
    // experiments can push intra-cluster traffic.
    TwoNodeWorld w;
    proto::TcpComm a(*w.n0, proto::TcpConfig{}, w.ports());
    proto::TcpComm b(*w.n1, proto::TcpConfig{}, w.ports());
    std::uint64_t echoed = 0;
    proto::CommCallbacks bcbs;
    bcbs.onMessage = [&](sim::NodeId peer, proto::AppMessage &&m) {
        b.send(peer, std::move(m), {});
    };
    b.setCallbacks(bcbs);
    proto::CommCallbacks acbs;
    acbs.onMessage = [&](sim::NodeId, proto::AppMessage &&) { ++echoed; };
    a.setCallbacks(acbs);
    a.start();
    b.start();
    a.connect(1);
    w.sim.runUntil(sim::sec(1));

    constexpr int kWindow = 16;
    for (auto _ : state) {
        for (int i = 0; i < kWindow; ++i) {
            proto::AppMessage m;
            m.type = 1;
            m.bytes = 1024;
            a.send(1, std::move(m), {});
        }
        w.sim.events().runAll();
    }
    benchmark::DoNotOptimize(echoed);
    state.SetItemsProcessed(state.iterations() * kWindow);
}
BENCHMARK(BM_TcpEchoFlood);

static void
BM_ViaEchoFlood(benchmark::State &state)
{
    // Same echo-flood shape over the VIA substrate: data frames ride
    // the SAN with hardware-ack outcome callbacks, and every delivery
    // returns a credit.
    TwoNodeWorld w;
    proto::ViaComm a(*w.n0, proto::ViaConfig{}, w.ports());
    proto::ViaComm b(*w.n1, proto::ViaConfig{}, w.ports());
    std::uint64_t echoed = 0;
    proto::CommCallbacks bcbs;
    bcbs.onMessage = [&](sim::NodeId peer, proto::AppMessage &&m) {
        b.consumed(peer);
        b.send(peer, std::move(m), {});
    };
    b.setCallbacks(bcbs);
    proto::CommCallbacks acbs;
    acbs.onMessage = [&](sim::NodeId peer, proto::AppMessage &&) {
        ++echoed;
        a.consumed(peer);
    };
    a.setCallbacks(acbs);
    a.start();
    b.start();
    a.connect(1);
    w.sim.runUntil(sim::sec(1));

    constexpr int kWindow = 16;
    for (auto _ : state) {
        for (int i = 0; i < kWindow; ++i) {
            proto::AppMessage m;
            m.type = 1;
            m.bytes = 1024;
            a.send(1, std::move(m), {});
        }
        w.sim.events().runAll();
    }
    benchmark::DoNotOptimize(echoed);
    state.SetItemsProcessed(state.iterations() * kWindow);
}
BENCHMARK(BM_ViaEchoFlood);

static void
BM_DatagramFlood(benchmark::State &state)
{
    // The heartbeat/join path: fire-and-forget datagrams, delivered
    // through the receiver's CPU.
    TwoNodeWorld w;
    proto::TcpComm a(*w.n0, proto::TcpConfig{}, w.ports());
    proto::TcpComm b(*w.n1, proto::TcpConfig{}, w.ports());
    std::uint64_t got = 0;
    proto::CommCallbacks bcbs;
    bcbs.onDatagram = [&](sim::NodeId, std::uint32_t, auto &&) { ++got; };
    b.setCallbacks(bcbs);
    a.setCallbacks({});
    a.start();
    b.start();
    w.sim.runUntil(sim::sec(1));

    constexpr int kBurst = 16;
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i)
            a.sendDatagram(1, 100);
        w.sim.events().runAll();
    }
    benchmark::DoNotOptimize(got);
    state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_DatagramFlood);

namespace {
/** A PRESS-sized flat message body (cache-update/file-data scale). */
struct ChurnBody
{
    std::uint64_t words[32];
};
} // namespace

static void
BM_MessagePayloadChurn(benchmark::State &state)
{
    // The isolated per-message allocation component of the message
    // path: create a flat body, attach it to a wire frame, take the
    // retransmit and receive-queue handle copies, read it at the
    // receiver, and drop everything. Before the payload pool this was
    // a make_shared heap allocation plus atomic refcount traffic on
    // every handle copy; now it is a size-classed free-list hit with
    // plain counters.
    sim::Simulation sim{7};
    std::uint64_t sink = 0;
    for (auto _ : state) {
        auto body = sim.makePayload<ChurnBody>();
        body->words[0] = 1;
        sim::RcAny wire = body; // frame attach
        sim::RcAny retx = wire; // retransmit attach
        sim::RcAny rcvq = retx; // receive-queue copy
        sink += rcvq.get<ChurnBody>()->words[0];
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
    state.counters["fresh_allocs"] =
        static_cast<double>(sim.pool().freshAllocs());
}
BENCHMARK(BM_MessagePayloadChurn);

static void
BM_DatagramPayloadFlood(benchmark::State &state)
{
    // The datagram path with a real body per message (the cluster's
    // cache-info/heartbeat traffic shape): per-message payload
    // allocation rides the full wire + CPU delivery path.
    TwoNodeWorld w;
    proto::TcpComm a(*w.n0, proto::TcpConfig{}, w.ports());
    proto::TcpComm b(*w.n1, proto::TcpConfig{}, w.ports());
    std::uint64_t got = 0;
    proto::CommCallbacks bcbs;
    bcbs.onDatagram = [&](sim::NodeId, std::uint32_t, sim::RcAny p) {
        got += p.get<ChurnBody>()->words[0];
    };
    b.setCallbacks(bcbs);
    a.setCallbacks({});
    a.start();
    b.start();
    w.sim.runUntil(sim::sec(1));

    constexpr int kBurst = 16;
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i) {
            auto body = w.sim.makePayload<ChurnBody>();
            body->words[0] = 1;
            a.sendDatagram(1, 100, std::move(body));
        }
        w.sim.events().runAll();
    }
    benchmark::DoNotOptimize(got);
    state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_DatagramPayloadFlood);

static void
BM_NetworkFrameBlast(benchmark::State &state)
{
    // Raw fabric cost: Network::send with an outcome callback, no
    // protocol stack on top. Isolates the per-frame-hop overhead
    // (delivery closure + outcome bookkeeping).
    sim::Simulation sim{7};
    net::Network net{sim};
    net::PortId p0 = net.addPort();
    net::PortId p1 = net.addPort();
    std::uint64_t got = 0, acked = 0;
    net.setHandler(p1, [&](net::Frame &&) { ++got; });

    constexpr int kBurst = 64;
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i) {
            net::Frame f;
            f.srcPort = p0;
            f.dstPort = p1;
            f.bytes = 512;
            net.send(std::move(f), [&](bool) { ++acked; });
        }
        sim.events().runAll();
    }
    benchmark::DoNotOptimize(got);
    benchmark::DoNotOptimize(acked);
    state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_NetworkFrameBlast);

static void
BM_TcpMessageRoundTrip(benchmark::State &state)
{
    TwoNodeWorld w;
    proto::TcpComm a(*w.n0, proto::TcpConfig{}, w.ports());
    proto::TcpComm b(*w.n1, proto::TcpConfig{}, w.ports());
    std::uint64_t received = 0;
    proto::CommCallbacks cbs;
    cbs.onMessage = [&](sim::NodeId, proto::AppMessage &&) {
        ++received;
    };
    b.setCallbacks(cbs);
    a.setCallbacks({});
    a.start();
    b.start();
    a.connect(1);
    w.sim.runUntil(sim::sec(1));

    for (auto _ : state) {
        proto::AppMessage m;
        m.type = 1;
        m.bytes = 8192;
        a.send(1, std::move(m), {});
        w.sim.events().runAll();
    }
    benchmark::DoNotOptimize(received);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpMessageRoundTrip);

static void
BM_ViaMessageRoundTrip(benchmark::State &state)
{
    TwoNodeWorld w;
    proto::ViaComm a(*w.n0, proto::ViaConfig{}, w.ports());
    proto::ViaComm b(*w.n1, proto::ViaConfig{}, w.ports());
    std::uint64_t received = 0;
    proto::CommCallbacks cbs;
    cbs.onMessage = [&](sim::NodeId peer, proto::AppMessage &&) {
        ++received;
        b.consumed(peer);
    };
    b.setCallbacks(cbs);
    a.setCallbacks({});
    a.start();
    b.start();
    a.connect(1);
    w.sim.runUntil(sim::sec(1));

    for (auto _ : state) {
        proto::AppMessage m;
        m.type = 1;
        m.bytes = 8192;
        a.send(1, std::move(m), {});
        w.sim.events().runAll();
    }
    benchmark::DoNotOptimize(received);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ViaMessageRoundTrip);

static void
BM_ModelEvaluate(benchmark::State &state)
{
    model::FaultLoadParams params;
    std::vector<model::FaultClass> load = model::table3FaultLoad(params);
    model::MeasuredBehavior mb;
    mb.normalTput = 5000;
    mb.detected = true;
    mb.healed = false;
    mb.dur = {15, 10, 0, 15, 0, 0, 0};
    mb.tput = {100, 3800, 4400, 4600, 4600, 0, 3800};

    model::PerformabilityModel m(5000);
    for (const auto &fc : load)
        m.addFault(fc, mb);

    for (auto _ : state)
        benchmark::DoNotOptimize(m.evaluate());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelEvaluate);

static void
BM_LatencyHistogramRecord(benchmark::State &state)
{
    // The per-response observability cost: one log-linear bucket
    // insert per latency sample. This sits on the client hot path four
    // times per served request (total + three stages), so it must stay
    // a handful of nanoseconds. Values are pre-drawn so the benchmark
    // times the histogram, not the RNG.
    sim::LatencyHistogram h;
    sim::Rng rng(7);
    constexpr std::size_t kVals = 4096;
    std::vector<std::uint64_t> vals(kVals);
    for (auto &v : vals)
        v = rng.uniformInt(1, sim::sec(2));
    std::size_t i = 0;
    for (auto _ : state) {
        h.record(vals[i]);
        i = (i + 1) & (kVals - 1);
    }
    benchmark::DoNotOptimize(h.count());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyHistogramRecord);

static void
BM_SessionClientChurn(benchmark::State &state)
{
    // The session-client engine against a zero-delay stamp-echoing
    // server: think timers, session churn, request/response payloads
    // and four histogram inserts per served request. Bounds how much
    // simulated client traffic the heavy-traffic profiles can push.
    sim::Simulation s{7};
    net::Network net{s};
    std::vector<net::PortId> servers, clients;
    for (int i = 0; i < 4; ++i)
        servers.push_back(net.addPort());
    for (int i = 0; i < 2; ++i)
        clients.push_back(net.addPort());
    for (net::PortId p : servers) {
        net.setHandler(p, [&s, &net, p](net::Frame &&f) {
            auto *req = f.payload.get<press::ClientRequestBody>();
            net::Frame r;
            r.srcPort = p;
            r.dstPort = req->replyPort;
            r.proto = net::Proto::Client;
            r.kind = press::ClientResponse;
            r.bytes = 8192;
            auto body = s.makePayload<press::ClientResponseBody>();
            body->req = req->req;
            body->sentAt = req->sentAt;
            body->acceptedAt = s.now();
            body->serviceStartAt = s.now();
            r.payload = std::move(body);
            net.send(std::move(r));
        });
    }

    wl::WorkloadConfig cfg;
    cfg.requestRate = 2000;
    cfg.numFiles = 1000;
    auto profile = *wl::profileByName("sessions");
    wl::SessionFarm farm(s, net, servers, clients, cfg, profile);
    farm.start();
    s.runUntil(sim::sec(1)); // warm: pools, slabs, session table

    std::uint64_t served_before = farm.totalServed();
    for (auto _ : state)
        s.runUntil(s.now() + sim::msec(10));
    benchmark::DoNotOptimize(farm.totalServed());
    state.SetItemsProcessed(farm.totalServed() - served_before);
}
BENCHMARK(BM_SessionClientChurn);

namespace {

/** A light phase-1 world: full 4-node PRESS cluster, reduced load. */
exp::ExperimentConfig
snapshotBenchConfig(sim::Tick inject_at, sim::Tick tail)
{
    exp::ExperimentConfig cfg =
        exp::defaultExperimentConfig(press::Version::TcpPress);
    cfg.workload.requestRate = 600;
    cfg.workload.numFiles = 8000;
    cfg.injectAt = inject_at;
    cfg.duration = inject_at + tail;
    return cfg;
}

} // namespace

static void
BM_SnapshotFork(benchmark::State &state)
{
    // Pure rewind cost: restore a warmed 4-node PRESS world (event
    // slab, payload refs, protocol endpoints, caches, farms) back to
    // its snapshot. This is what replaces a whole warm-up phase per
    // fault run in the campaign.
    exp::ExperimentConfig cfg =
        snapshotBenchConfig(sim::sec(10), sim::sec(5));
    exp::Experiment e(cfg);
    e.warmUp();
    sim::Snapshot snap = e.snapshot();
    for (auto _ : state)
        e.forkFrom(snap);
    state.SetItemsProcessed(state.iterations());
    state.counters["states"] = static_cast<double>(snap.size());
}
BENCHMARK(BM_SnapshotFork);

static void
BM_WarmupAmortization(benchmark::State &state)
{
    // One full fault grid (all Table 2 kinds) over a warm-up-dominated
    // geometry: 180 s fault-free warm phase, 12 s measured tail per
    // fault. Arg 0 = cold (every fault warms its own world, the
    // pre-snapshot campaign); Arg 1 = forked (one warm-up, every fault
    // forked from its snapshot). time(0) / time(1) is the campaign
    // speedup on such a grid.
    const bool forked = state.range(0) != 0;
    const sim::Tick injectAt = sim::sec(180);
    const sim::Tick tail = sim::sec(12);
    std::uint64_t runs = 0;
    for (auto _ : state) {
        if (forked) {
            exp::Experiment e(
                snapshotBenchConfig(injectAt, tail));
            e.warmUp();
            sim::Snapshot snap = e.snapshot();
            for (fault::FaultKind k : fault::allFaultKinds) {
                exp::ExperimentConfig cfg =
                    snapshotBenchConfig(injectAt, tail);
                cfg.fault = fault::FaultSpec{};
                cfg.fault->kind = k;
                e.forkFrom(snap);
                benchmark::DoNotOptimize(
                    e.injectAndMeasure(cfg.fault, cfg.duration));
                ++runs;
            }
        } else {
            for (fault::FaultKind k : fault::allFaultKinds) {
                exp::ExperimentConfig cfg =
                    snapshotBenchConfig(injectAt, tail);
                cfg.fault = fault::FaultSpec{};
                cfg.fault->kind = k;
                benchmark::DoNotOptimize(exp::runExperiment(cfg));
                ++runs;
            }
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(runs));
}
BENCHMARK(BM_WarmupAmortization)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

BENCHMARK_MAIN();
