/**
 * @file
 * Reproduces Table 1 of the paper: near-peak throughput of the five
 * PRESS versions on the 4-node cluster, fault-free, under a
 * saturating client load.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"
#include "exp/experiment.hh"

using namespace performa;

int
main()
{
    bench::banner("Table 1: near-peak throughput of the PRESS versions",
                  "TCP 4965, TCP-HB 4965, VIA-0 6031, VIA-3 6221, "
                  "VIA-5 7058 reqs/sec");

    std::printf("\n%-14s %12s %18s %8s\n", "version", "paper",
                "measured (3 seeds)", "ratio");
    double tcp_base = 0, tcp_paper = 0;
    for (press::Version v : press::allVersions) {
        exp::ExperimentConfig cfg = exp::defaultExperimentConfig(v);
        cfg.fault.reset();
        cfg.duration = sim::sec(90);
        // Mean +- stddev over three seeds.
        double sum = 0, sum2 = 0;
        const std::uint64_t seeds[] = {42, 1042, 2042};
        for (std::uint64_t seed : seeds) {
            cfg.seed = seed;
            exp::ExperimentResult res = exp::runExperiment(cfg);
            double t = res.served.meanRate(sim::sec(40), sim::sec(90));
            sum += t;
            sum2 += t * t;
        }
        double tput = sum / 3.0;
        double var = sum2 / 3.0 - tput * tput;
        double sd = var > 0 ? std::sqrt(var) : 0.0;
        double paper = press::paperThroughput(v);
        if (v == press::Version::TcpPress) {
            tcp_base = tput;
            tcp_paper = paper;
        }
        std::printf("%-14s %9.0f r/s %7.0f +- %3.0f r/s %7.3f",
                    press::versionName(v), paper, tput, sd,
                    tput / paper);
        if (tcp_base > 0) {
            std::printf("   speedup vs TCP: paper %.2fx, measured %.2fx",
                        paper / tcp_paper, tput / tcp_base);
        }
        std::printf("\n");
    }
    std::printf("\nShape check: TCP < VIA-0 < VIA-3 < VIA-5, zero-copy "
                "remote writes fastest.\n");
    return 0;
}
