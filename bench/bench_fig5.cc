/**
 * @file
 * Reproduces Figure 5: a NULL data pointer passed to the send call.
 */

#include "bench_common.hh"

using namespace performa;

int
main()
{
    bench::banner(
        "Figure 5: NULL pointer passed to the send API on node 3",
        "TCP detects synchronously (EFAULT) and the server fail-fasts: "
        "one node restarts and reintegrates. VIA-PRESS-0 reports an "
        "error-status descriptor: same one-node effect. In the remote-"
        "write versions (VIA-PRESS-3/5) the error is reported on BOTH "
        "nodes of the transfer, so TWO nodes terminate and restart.");

    bench::timeline(press::Version::TcpPress,
                    fault::FaultKind::BadParamNull,
                    "EFAULT -> fail-fast -> restart -> rejoin "
                    "(one node)");
    bench::timeline(press::Version::ViaPress0,
                    fault::FaultKind::BadParamNull,
                    "descriptor error at the sender -> one node "
                    "restarts");
    bench::timeline(press::Version::ViaPress3,
                    fault::FaultKind::BadParamNull,
                    "error on both ends of the remote write -> two "
                    "nodes restart");
    bench::timeline(press::Version::ViaPress5,
                    fault::FaultKind::BadParamNull,
                    "error on both ends -> two nodes restart");
    return 0;
}
