/**
 * @file
 * Reproduces Figure 7: performability in the presence of transient
 * packet drops. For TCP the drops have no effect (timeout and retry
 * absorbs them); for VIA each drop resets the channel and is modeled
 * as an application process crash. Rates: 1/day, 1/week, 1/month.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/scenarios.hh"

using namespace performa;

int
main()
{
    bench::banner(
        "Figure 7: transient packet drops (VIA only)",
        "TCP and VIA performabilities roughly equal when the drop "
        "rate is ~1/week; TCP wins above that rate, VIA wins below "
        "it.");

    exp::BehaviorDb db = bench::loadBehaviors();
    auto lookup = db.lookup();

    const double day = 86400.0, week = 7 * day, month = 30 * day;

    std::printf("\n%-14s %14s %14s %14s %14s\n", "version", "no drops",
                "1/day", "1/week", "1/month");
    for (press::Version v : press::allVersions) {
        std::printf("%-14s", press::versionName(v));
        for (double drop_mttf : {0.0, day, week, month}) {
            model::ScenarioOptions opts;
            opts.appMttfSec = month;
            opts.viaPacketDropMttfSec =
                press::isVia(v) ? drop_mttf : 0.0;
            model::PerfResult r =
                model::evaluateScenario(v, lookup, opts);
            std::printf(" %10.0f r/s", r.performability);
        }
        std::printf("\n");
    }
    std::printf("\n(rows are performability; TCP rows are flat because "
                "retransmission absorbs drops)\n");
    return 0;
}
