# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_closed_loop[1]_include.cmake")
include("/root/repo/build/tests/test_cluster_sizes[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_directory[1]_include.cmake")
include("/root/repo/build/tests/test_disk[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_fault_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_injector[1]_include.cmake")
include("/root/repo/build/tests/test_interpose[1]_include.cmake")
include("/root/repo/build/tests/test_long_run[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_press_server[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_stages_unit[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_time_series[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_via[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
