file(REMOVE_RECURSE
  "CMakeFiles/test_long_run.dir/test_long_run.cc.o"
  "CMakeFiles/test_long_run.dir/test_long_run.cc.o.d"
  "test_long_run"
  "test_long_run.pdb"
  "test_long_run[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_long_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
