# Empty dependencies file for test_long_run.
# This may be replaced when dependencies are built.
