file(REMOVE_RECURSE
  "CMakeFiles/test_stages_unit.dir/test_stages_unit.cc.o"
  "CMakeFiles/test_stages_unit.dir/test_stages_unit.cc.o.d"
  "test_stages_unit"
  "test_stages_unit.pdb"
  "test_stages_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stages_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
