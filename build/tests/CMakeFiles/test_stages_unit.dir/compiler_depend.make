# Empty compiler generated dependencies file for test_stages_unit.
# This may be replaced when dependencies are built.
