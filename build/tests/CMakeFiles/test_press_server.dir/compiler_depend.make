# Empty compiler generated dependencies file for test_press_server.
# This may be replaced when dependencies are built.
