file(REMOVE_RECURSE
  "CMakeFiles/test_press_server.dir/test_press_server.cc.o"
  "CMakeFiles/test_press_server.dir/test_press_server.cc.o.d"
  "test_press_server"
  "test_press_server.pdb"
  "test_press_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_press_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
