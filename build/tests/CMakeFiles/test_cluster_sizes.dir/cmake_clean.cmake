file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_sizes.dir/test_cluster_sizes.cc.o"
  "CMakeFiles/test_cluster_sizes.dir/test_cluster_sizes.cc.o.d"
  "test_cluster_sizes"
  "test_cluster_sizes.pdb"
  "test_cluster_sizes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
