# Empty compiler generated dependencies file for test_cluster_sizes.
# This may be replaced when dependencies are built.
