
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/performa_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/performa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/performa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/performa_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/press/CMakeFiles/performa_press.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/performa_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/performa_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/performa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/performa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
