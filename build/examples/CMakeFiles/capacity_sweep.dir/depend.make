# Empty dependencies file for capacity_sweep.
# This may be replaced when dependencies are built.
