# Empty compiler generated dependencies file for whatif_designer.
# This may be replaced when dependencies are built.
