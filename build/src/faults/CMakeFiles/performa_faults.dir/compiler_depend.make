# Empty compiler generated dependencies file for performa_faults.
# This may be replaced when dependencies are built.
