file(REMOVE_RECURSE
  "CMakeFiles/performa_faults.dir/injector.cc.o"
  "CMakeFiles/performa_faults.dir/injector.cc.o.d"
  "libperforma_faults.a"
  "libperforma_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
