file(REMOVE_RECURSE
  "libperforma_faults.a"
)
