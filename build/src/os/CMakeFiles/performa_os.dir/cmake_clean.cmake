file(REMOVE_RECURSE
  "CMakeFiles/performa_os.dir/cpu.cc.o"
  "CMakeFiles/performa_os.dir/cpu.cc.o.d"
  "CMakeFiles/performa_os.dir/node.cc.o"
  "CMakeFiles/performa_os.dir/node.cc.o.d"
  "libperforma_os.a"
  "libperforma_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
