file(REMOVE_RECURSE
  "libperforma_os.a"
)
