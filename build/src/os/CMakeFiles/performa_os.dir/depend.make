# Empty dependencies file for performa_os.
# This may be replaced when dependencies are built.
