
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/interpose.cc" "src/proto/CMakeFiles/performa_proto.dir/interpose.cc.o" "gcc" "src/proto/CMakeFiles/performa_proto.dir/interpose.cc.o.d"
  "/root/repo/src/proto/tcp.cc" "src/proto/CMakeFiles/performa_proto.dir/tcp.cc.o" "gcc" "src/proto/CMakeFiles/performa_proto.dir/tcp.cc.o.d"
  "/root/repo/src/proto/via.cc" "src/proto/CMakeFiles/performa_proto.dir/via.cc.o" "gcc" "src/proto/CMakeFiles/performa_proto.dir/via.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/performa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/performa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/performa_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
