file(REMOVE_RECURSE
  "CMakeFiles/performa_proto.dir/interpose.cc.o"
  "CMakeFiles/performa_proto.dir/interpose.cc.o.d"
  "CMakeFiles/performa_proto.dir/tcp.cc.o"
  "CMakeFiles/performa_proto.dir/tcp.cc.o.d"
  "CMakeFiles/performa_proto.dir/via.cc.o"
  "CMakeFiles/performa_proto.dir/via.cc.o.d"
  "libperforma_proto.a"
  "libperforma_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
