# Empty compiler generated dependencies file for performa_proto.
# This may be replaced when dependencies are built.
