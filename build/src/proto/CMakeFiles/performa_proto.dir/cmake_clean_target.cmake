file(REMOVE_RECURSE
  "libperforma_proto.a"
)
