file(REMOVE_RECURSE
  "CMakeFiles/performa_workload.dir/client_farm.cc.o"
  "CMakeFiles/performa_workload.dir/client_farm.cc.o.d"
  "CMakeFiles/performa_workload.dir/closed_loop.cc.o"
  "CMakeFiles/performa_workload.dir/closed_loop.cc.o.d"
  "CMakeFiles/performa_workload.dir/trace.cc.o"
  "CMakeFiles/performa_workload.dir/trace.cc.o.d"
  "libperforma_workload.a"
  "libperforma_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
