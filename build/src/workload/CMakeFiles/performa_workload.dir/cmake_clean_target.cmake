file(REMOVE_RECURSE
  "libperforma_workload.a"
)
