# Empty compiler generated dependencies file for performa_workload.
# This may be replaced when dependencies are built.
