# Empty compiler generated dependencies file for performa_sim.
# This may be replaced when dependencies are built.
