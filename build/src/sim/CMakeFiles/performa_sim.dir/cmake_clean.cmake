file(REMOVE_RECURSE
  "CMakeFiles/performa_sim.dir/event_queue.cc.o"
  "CMakeFiles/performa_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/performa_sim.dir/logging.cc.o"
  "CMakeFiles/performa_sim.dir/logging.cc.o.d"
  "CMakeFiles/performa_sim.dir/random.cc.o"
  "CMakeFiles/performa_sim.dir/random.cc.o.d"
  "CMakeFiles/performa_sim.dir/time_series.cc.o"
  "CMakeFiles/performa_sim.dir/time_series.cc.o.d"
  "libperforma_sim.a"
  "libperforma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
