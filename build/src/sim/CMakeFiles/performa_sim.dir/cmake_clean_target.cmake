file(REMOVE_RECURSE
  "libperforma_sim.a"
)
