# Empty compiler generated dependencies file for performa_exp.
# This may be replaced when dependencies are built.
