file(REMOVE_RECURSE
  "libperforma_exp.a"
)
