
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/behavior_db.cc" "src/exp/CMakeFiles/performa_exp.dir/behavior_db.cc.o" "gcc" "src/exp/CMakeFiles/performa_exp.dir/behavior_db.cc.o.d"
  "/root/repo/src/exp/experiment.cc" "src/exp/CMakeFiles/performa_exp.dir/experiment.cc.o" "gcc" "src/exp/CMakeFiles/performa_exp.dir/experiment.cc.o.d"
  "/root/repo/src/exp/long_run.cc" "src/exp/CMakeFiles/performa_exp.dir/long_run.cc.o" "gcc" "src/exp/CMakeFiles/performa_exp.dir/long_run.cc.o.d"
  "/root/repo/src/exp/replicate.cc" "src/exp/CMakeFiles/performa_exp.dir/replicate.cc.o" "gcc" "src/exp/CMakeFiles/performa_exp.dir/replicate.cc.o.d"
  "/root/repo/src/exp/report.cc" "src/exp/CMakeFiles/performa_exp.dir/report.cc.o" "gcc" "src/exp/CMakeFiles/performa_exp.dir/report.cc.o.d"
  "/root/repo/src/exp/stages.cc" "src/exp/CMakeFiles/performa_exp.dir/stages.cc.o" "gcc" "src/exp/CMakeFiles/performa_exp.dir/stages.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/performa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/press/CMakeFiles/performa_press.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/performa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/performa_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/performa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/performa_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/performa_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/performa_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
