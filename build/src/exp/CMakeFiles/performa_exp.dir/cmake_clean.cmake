file(REMOVE_RECURSE
  "CMakeFiles/performa_exp.dir/behavior_db.cc.o"
  "CMakeFiles/performa_exp.dir/behavior_db.cc.o.d"
  "CMakeFiles/performa_exp.dir/experiment.cc.o"
  "CMakeFiles/performa_exp.dir/experiment.cc.o.d"
  "CMakeFiles/performa_exp.dir/long_run.cc.o"
  "CMakeFiles/performa_exp.dir/long_run.cc.o.d"
  "CMakeFiles/performa_exp.dir/replicate.cc.o"
  "CMakeFiles/performa_exp.dir/replicate.cc.o.d"
  "CMakeFiles/performa_exp.dir/report.cc.o"
  "CMakeFiles/performa_exp.dir/report.cc.o.d"
  "CMakeFiles/performa_exp.dir/stages.cc.o"
  "CMakeFiles/performa_exp.dir/stages.cc.o.d"
  "libperforma_exp.a"
  "libperforma_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
