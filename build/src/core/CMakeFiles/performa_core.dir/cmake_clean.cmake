file(REMOVE_RECURSE
  "CMakeFiles/performa_core.dir/fault_load.cc.o"
  "CMakeFiles/performa_core.dir/fault_load.cc.o.d"
  "CMakeFiles/performa_core.dir/performability.cc.o"
  "CMakeFiles/performa_core.dir/performability.cc.o.d"
  "CMakeFiles/performa_core.dir/scenarios.cc.o"
  "CMakeFiles/performa_core.dir/scenarios.cc.o.d"
  "libperforma_core.a"
  "libperforma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
