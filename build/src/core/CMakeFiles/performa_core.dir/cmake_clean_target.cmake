file(REMOVE_RECURSE
  "libperforma_core.a"
)
