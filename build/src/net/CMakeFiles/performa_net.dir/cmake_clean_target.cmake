file(REMOVE_RECURSE
  "libperforma_net.a"
)
