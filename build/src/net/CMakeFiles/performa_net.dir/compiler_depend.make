# Empty compiler generated dependencies file for performa_net.
# This may be replaced when dependencies are built.
