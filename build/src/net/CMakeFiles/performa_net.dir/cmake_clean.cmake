file(REMOVE_RECURSE
  "CMakeFiles/performa_net.dir/network.cc.o"
  "CMakeFiles/performa_net.dir/network.cc.o.d"
  "libperforma_net.a"
  "libperforma_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
