file(REMOVE_RECURSE
  "libperforma_press.a"
)
