
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/press/cluster.cc" "src/press/CMakeFiles/performa_press.dir/cluster.cc.o" "gcc" "src/press/CMakeFiles/performa_press.dir/cluster.cc.o.d"
  "/root/repo/src/press/config.cc" "src/press/CMakeFiles/performa_press.dir/config.cc.o" "gcc" "src/press/CMakeFiles/performa_press.dir/config.cc.o.d"
  "/root/repo/src/press/server.cc" "src/press/CMakeFiles/performa_press.dir/server.cc.o" "gcc" "src/press/CMakeFiles/performa_press.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/performa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/performa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/performa_os.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/performa_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
