file(REMOVE_RECURSE
  "CMakeFiles/performa_press.dir/cluster.cc.o"
  "CMakeFiles/performa_press.dir/cluster.cc.o.d"
  "CMakeFiles/performa_press.dir/config.cc.o"
  "CMakeFiles/performa_press.dir/config.cc.o.d"
  "CMakeFiles/performa_press.dir/server.cc.o"
  "CMakeFiles/performa_press.dir/server.cc.o.d"
  "libperforma_press.a"
  "libperforma_press.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_press.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
