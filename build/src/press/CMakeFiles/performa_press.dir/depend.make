# Empty dependencies file for performa_press.
# This may be replaced when dependencies are built.
