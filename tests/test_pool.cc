/**
 * @file
 * Unit tests for the payload pool: refcount lifecycle, block
 * recycling, size classes, exception safety, and the typed/erased
 * handle conversions the message path relies on.
 */

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/pool.hh"

using namespace performa::sim;

namespace {

struct Tracked
{
    static int live;
    int v;
    explicit Tracked(int x) : v(x) { ++live; }
    ~Tracked() { --live; }
};

int Tracked::live = 0;

struct ThrowsInCtor
{
    ThrowsInCtor() { throw std::runtime_error("boom"); }
};

} // namespace

TEST(PayloadPool, HandleLifecycleRunsDestructorOnce)
{
    PayloadPool pool;
    Tracked::live = 0;
    {
        Rc<Tracked> a = pool.make<Tracked>(42);
        EXPECT_EQ(Tracked::live, 1);
        EXPECT_EQ(a->v, 42);
        EXPECT_EQ(a.refCount(), 1u);

        Rc<Tracked> b = a; // copy bumps
        EXPECT_EQ(a.refCount(), 2u);
        Rc<Tracked> c = std::move(b); // move steals
        EXPECT_EQ(c.refCount(), 2u);
        EXPECT_FALSE(b);
        c.reset();
        EXPECT_EQ(a.refCount(), 1u);
        EXPECT_EQ(Tracked::live, 1);
    }
    EXPECT_EQ(Tracked::live, 0);
    EXPECT_EQ(pool.liveBlocks(), 0u);
}

TEST(PayloadPool, BlocksAreRecycledNotReallocated)
{
    PayloadPool pool;
    for (int i = 0; i < 100; ++i) {
        Rc<int> h = pool.make<int>(i);
        EXPECT_EQ(*h, i);
    }
    // One heap carve, ninety-nine free-list hits.
    EXPECT_EQ(pool.freshAllocs(), 1u);
    EXPECT_EQ(pool.poolHits(), 99u);
    EXPECT_EQ(pool.liveBlocks(), 0u);
}

TEST(PayloadPool, SizeClassesAreSegregated)
{
    PayloadPool pool;
    auto small = pool.make<int>(1);
    auto big = pool.make<std::array<char, 1000>>();
    EXPECT_EQ(pool.freshAllocs(), 2u); // distinct classes, two carves
    small.reset();
    auto small2 = pool.make<int>(2);
    EXPECT_EQ(pool.freshAllocs(), 2u); // recycled the small block
    EXPECT_EQ(pool.poolHits(), 1u);
    (void)big;
}

TEST(PayloadPool, ErasedHandleRoundTripsThroughCast)
{
    PayloadPool pool;
    Rc<std::string> s = pool.make<std::string>("payload");
    RcAny any = s; // slice-copy to the erased handle
    EXPECT_EQ(any.refCount(), 2u);
    EXPECT_EQ(*any.get<std::string>(), "payload");

    Rc<std::string> back = any.cast<std::string>();
    EXPECT_EQ(back.refCount(), 3u);
    EXPECT_EQ(*back, "payload");

    s.reset();
    any.reset();
    EXPECT_EQ(back.refCount(), 1u);
    EXPECT_EQ(*back, "payload");
}

TEST(PayloadPool, ThrowingConstructorRecyclesTheBlock)
{
    PayloadPool pool;
    EXPECT_THROW(pool.make<ThrowsInCtor>(), std::runtime_error);
    EXPECT_EQ(pool.liveBlocks(), 0u);
    std::uint64_t fresh = pool.freshAllocs();
    // The failed construction's block is on the free list.
    auto ok = pool.make<char>('x');
    EXPECT_EQ(pool.freshAllocs(), fresh);
    (void)ok;
}

TEST(PayloadPool, SharedHandleSurvivesManyAttachReleaseCycles)
{
    // The retransmit pattern: one owner keeps the payload while
    // transient frames attach and release references repeatedly. The
    // block must never be recycled out from under the owner.
    PayloadPool pool;
    Rc<std::vector<int>> owner =
        pool.make<std::vector<int>>(std::vector<int>{1, 2, 3});
    for (int i = 0; i < 1000; ++i) {
        RcAny frame_ref = owner;
        // Churn the pool so a wrongly freed block would be reused.
        auto junk = pool.make<std::vector<int>>(
            std::vector<int>(3, 0x0BAD));
        EXPECT_EQ((*owner)[0], 1);
    }
    EXPECT_EQ(owner.refCount(), 1u);
    EXPECT_EQ((*owner)[2], 3);
}
