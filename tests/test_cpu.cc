/**
 * @file
 * Unit tests for the serial CPU model: FIFO retirement, cost
 * accounting, nested pauses, and crash clearing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "os/cpu.hh"
#include "sim/simulation.hh"

using namespace performa;
using namespace performa::sim;

TEST(Cpu, ItemsRetireInFifoOrderWithCosts)
{
    Simulation s;
    osim::Cpu cpu(s);
    std::vector<std::pair<int, Tick>> done;
    cpu.exec(usec(100), [&] { done.push_back({1, s.now()}); });
    cpu.exec(usec(50), [&] { done.push_back({2, s.now()}); });
    cpu.exec(usec(10), [&] { done.push_back({3, s.now()}); });
    s.runUntil(sec(1));
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0], (std::pair<int, Tick>{1, usec(100)}));
    EXPECT_EQ(done[1], (std::pair<int, Tick>{2, usec(150)}));
    EXPECT_EQ(done[2], (std::pair<int, Tick>{3, usec(160)}));
    EXPECT_EQ(cpu.busyTime(), usec(160));
    EXPECT_TRUE(cpu.idle());
}

TEST(Cpu, SaturationQueuesWork)
{
    Simulation s;
    osim::Cpu cpu(s);
    int done = 0;
    for (int i = 0; i < 10; ++i)
        cpu.exec(usec(100), [&] { ++done; });
    EXPECT_EQ(cpu.queueLength(), 9u); // one in flight
    s.runUntil(usec(500));
    EXPECT_EQ(done, 5);
    s.runUntil(usec(1000));
    EXPECT_EQ(done, 10);
}

TEST(Cpu, PauseStopsNewItemsButFinishesInFlight)
{
    Simulation s;
    osim::Cpu cpu(s);
    int done = 0;
    cpu.exec(usec(100), [&] { ++done; });
    cpu.exec(usec(100), [&] { ++done; });
    s.runUntil(usec(50));
    cpu.pause();
    s.runUntil(usec(500));
    EXPECT_EQ(done, 1); // in-flight item retired, next one held
    cpu.resume();
    s.runUntil(usec(700));
    EXPECT_EQ(done, 2);
}

TEST(Cpu, PausesNest)
{
    Simulation s;
    osim::Cpu cpu(s);
    int done = 0;
    cpu.pause();
    cpu.pause();
    cpu.exec(usec(10), [&] { ++done; });
    cpu.resume();
    s.runUntil(usec(100));
    EXPECT_EQ(done, 0); // still paused once
    cpu.resume();
    s.runUntil(usec(200));
    EXPECT_EQ(done, 1);
}

TEST(Cpu, ClearDropsQueuedAndInFlight)
{
    Simulation s;
    osim::Cpu cpu(s);
    int done = 0;
    cpu.exec(usec(100), [&] { ++done; });
    cpu.exec(usec(100), [&] { ++done; });
    s.runUntil(usec(10));
    cpu.clear();
    s.runUntil(sec(1));
    EXPECT_EQ(done, 0);
    EXPECT_TRUE(cpu.idle());
}

TEST(Cpu, UsableAfterClear)
{
    Simulation s;
    osim::Cpu cpu(s);
    int done = 0;
    cpu.exec(usec(100), [&] { ++done; });
    cpu.clear();
    cpu.exec(usec(100), [&] { ++done; });
    s.runUntil(sec(1));
    EXPECT_EQ(done, 1);
}

TEST(Cpu, ResumeWithoutPauseIsHarmless)
{
    Simulation s;
    osim::Cpu cpu(s);
    cpu.resume();
    int done = 0;
    cpu.exec(usec(5), [&] { ++done; });
    s.runUntil(usec(100));
    EXPECT_EQ(done, 1);
}
