/**
 * @file
 * The behaviour-contract matrix: for every (PRESS version, fault)
 * pair, run a scaled-down fault-injection experiment and check the
 * qualitative outcome the paper reports in Section 5 —
 *
 *   - was the fault detected by the service (exclusion / fail-fast)?
 *   - did the service heal by itself, or does it stay degraded or
 *     splintered until an operator steps in?
 *
 * Scale note: faults last 30 s here (vs. their 3-minute MTTRs in the
 * canonical experiments) to keep the suite fast. The one behaviour
 * that is genuinely duration-dependent is the TCP-PRESS node-crash
 * rejoin race, which needs the retransmission backoff to outlast the
 * rejoin window; that row uses a 120 s crash like the real
 * experiment. The TCP connection-abort path (switch faults outliving
 * the 15-minute abort timeout) is exercised separately in
 * test_press_server.cc and by bench_fig2/4 at full scale.
 */

#include <gtest/gtest.h>

#include <string>

#include "exp/stages.hh"

using namespace performa;
using namespace performa::sim;
using fault::FaultKind;
using press::Version;

namespace {

struct Expectation
{
    FaultKind kind;
    bool detected;
    bool healed;
};

struct MatrixRow
{
    Version version;
    std::vector<Expectation> expectations;
};

exp::ExperimentConfig
matrixConfig(Version v, FaultKind k)
{
    exp::ExperimentConfig cfg;
    cfg.cluster.press.version = v;
    cfg.workload.requestRate = 1500;
    cfg.workload.numFiles = 20000;
    cfg.injectAt = sec(20);
    fault::FaultSpec spec;
    spec.kind = k;
    spec.target = 3;
    spec.duration =
        k == FaultKind::NodeCrash ? sec(120) : sec(30);
    cfg.fault = spec;
    cfg.duration = cfg.injectAt + spec.duration + sec(150);
    return cfg;
}

std::vector<Expectation>
tcpPressExpectations()
{
    return {
        {FaultKind::LinkDown, false, true},   // stall, resume
        {FaultKind::SwitchDown, false, true}, // stall < abort timeout
        {FaultKind::NodeCrash, true, false},  // rejoin race -> 3+1
        {FaultKind::NodeFreeze, false, true}, // correct "no fault"
        {FaultKind::KernelMemAlloc, false, true}, // freeze, resume
        {FaultKind::PinExhaustion, false, true},  // immune
        {FaultKind::AppCrash, true, true},    // RST -> exclude -> rejoin
        {FaultKind::AppHang, false, true},    // stall, resume
        {FaultKind::BadParamNull, true, true},    // EFAULT fail-fast
        {FaultKind::BadParamOffPtr, true, true},  // desync fail-fast
        {FaultKind::BadParamOffSize, true, true},
    };
}

std::vector<Expectation>
tcpPressHbExpectations()
{
    return {
        {FaultKind::LinkDown, true, false},   // splinter, no re-merge
        {FaultKind::SwitchDown, true, false}, // all singletons
        {FaultKind::NodeCrash, true, true},   // HB detect, clean rejoin
        {FaultKind::NodeFreeze, true, false}, // false positive splinter
        {FaultKind::KernelMemAlloc, true, false}, // HBs blocked -> 3+1
        {FaultKind::PinExhaustion, false, true},  // immune
        {FaultKind::AppCrash, true, true},
        {FaultKind::AppHang, true, false},    // false positive splinter
        {FaultKind::BadParamNull, true, true},
        {FaultKind::BadParamOffPtr, true, true},
        {FaultKind::BadParamOffSize, true, true},
    };
}

std::vector<Expectation>
viaExpectations()
{
    return {
        {FaultKind::LinkDown, true, false},   // instant break, 3+1
        {FaultKind::SwitchDown, true, false}, // singletons
        {FaultKind::NodeCrash, true, true},   // instant detect, rejoin
        {FaultKind::NodeFreeze, false, true}, // NIC acks; stall+resume
        {FaultKind::KernelMemAlloc, false, true}, // pre-allocated
        {FaultKind::PinExhaustion, false, true},  // VIA-5: degrade+heal
        {FaultKind::AppCrash, true, true},
        {FaultKind::AppHang, false, true},    // credits stall; resume
        {FaultKind::BadParamNull, true, true},
        {FaultKind::BadParamOffPtr, true, true},
        {FaultKind::BadParamOffSize, true, true},
    };
}

MatrixRow
rowFor(Version v)
{
    switch (v) {
      case Version::TcpPress:
        return {v, tcpPressExpectations()};
      case Version::TcpPressHb:
        return {v, tcpPressHbExpectations()};
      default:
        return {v, viaExpectations()};
    }
}

} // namespace

class FaultMatrix : public ::testing::TestWithParam<Version>
{};

TEST_P(FaultMatrix, SectionFiveContractHolds)
{
    MatrixRow row = rowFor(GetParam());
    for (const auto &e : row.expectations) {
        exp::ExperimentConfig cfg = matrixConfig(row.version, e.kind);
        exp::ExperimentResult res = exp::runExperiment(cfg);
        model::MeasuredBehavior mb =
            exp::extractBehavior(res, *cfg.fault);
        std::string ctx = std::string(press::versionName(row.version)) +
                          " under " + fault::faultName(e.kind);
        EXPECT_EQ(mb.detected, e.detected) << ctx;
        EXPECT_EQ(mb.healed, e.healed) << ctx;
        // Healed must agree with the cluster's structural state.
        if (e.healed)
            EXPECT_FALSE(res.endSplintered) << ctx;
        // Normal throughput is sane in every run.
        EXPECT_GT(mb.normalTput, 1200) << ctx;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, FaultMatrix,
    ::testing::ValuesIn(std::vector<Version>(
        std::begin(press::allVersions), std::end(press::allVersions))),
    [](const ::testing::TestParamInfo<Version> &info) {
        std::string n = press::versionName(info.param);
        for (auto &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

/**
 * Quantitative spot checks on the two headline dynamics: detection
 * latency of the heartbeat protocol and the instant detection of VIA
 * connection breaks.
 */
TEST(FaultMatrixTiming, HeartbeatDetectionNearThreePeriods)
{
    exp::ExperimentConfig cfg =
        matrixConfig(Version::TcpPressHb, FaultKind::LinkDown);
    exp::ExperimentResult res = exp::runExperiment(cfg);
    model::MeasuredBehavior mb = exp::extractBehavior(res, *cfg.fault);
    ASSERT_TRUE(mb.detected);
    // 3 heartbeats at 5 s: detection within [10, 21] seconds.
    EXPECT_GE(mb.dur[model::StageA], 10.0);
    EXPECT_LE(mb.dur[model::StageA], 21.0);
}

TEST(FaultMatrixTiming, ViaDetectionSubSecond)
{
    exp::ExperimentConfig cfg =
        matrixConfig(Version::ViaPress0, FaultKind::LinkDown);
    exp::ExperimentResult res = exp::runExperiment(cfg);
    model::MeasuredBehavior mb = exp::extractBehavior(res, *cfg.fault);
    ASSERT_TRUE(mb.detected);
    EXPECT_LT(mb.dur[model::StageA], 1.0);
}

TEST(FaultMatrixTiming, RdmaBadParamKillsTwoNodes)
{
    exp::ExperimentConfig cfg =
        matrixConfig(Version::ViaPress5, FaultKind::BadParamNull);
    exp::ExperimentResult res = exp::runExperiment(cfg);
    EXPECT_EQ(res.markers.count(exp::MarkerKind::FailFast), 2u);
    exp::ExperimentConfig cfg0 =
        matrixConfig(Version::ViaPress0, FaultKind::BadParamNull);
    exp::ExperimentResult res0 = exp::runExperiment(cfg0);
    EXPECT_EQ(res0.markers.count(exp::MarkerKind::FailFast), 1u);
}
