/**
 * @file
 * The paper's testbed is 4 nodes, but the library must generalize:
 * clusters of other sizes form, serve, and reconfigure correctly.
 */

#include <gtest/gtest.h>

#include "faults/injector.hh"
#include "press/cluster.hh"
#include "sim/simulation.hh"
#include "loadgen/client_farm.hh"

using namespace performa;
using namespace performa::sim;

namespace {

struct Sized
{
    Simulation s{31};
    press::Cluster cluster;
    wl::ClientFarm farm;
    fault::Injector injector;

    explicit Sized(std::uint32_t nodes, press::Version v, double rate)
        : cluster(s, makeCfg(nodes, v)),
          farm(s, cluster.clientNet(), cluster.serverClientPorts(),
               cluster.clientMachinePorts(), makeWl(rate)),
          injector(s, cluster)
    {
        cluster.startAll();
        s.runUntil(sec(1));
        cluster.prewarm(10000);
        farm.start();
    }

    static press::ClusterConfig
    makeCfg(std::uint32_t nodes, press::Version v)
    {
        press::ClusterConfig cfg;
        cfg.press.version = v;
        cfg.press.numNodes = nodes;
        return cfg;
    }

    static wl::WorkloadConfig
    makeWl(double rate)
    {
        wl::WorkloadConfig cfg;
        cfg.requestRate = rate;
        cfg.numFiles = 10000;
        return cfg;
    }
};

} // namespace

class ClusterSizes : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(ClusterSizes, FormsAndServes)
{
    std::uint32_t n = GetParam();
    Sized w(n, press::Version::ViaPress0, 800);
    for (std::uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(w.cluster.server(i).members().size(), n) << i;
    w.s.runUntil(sec(15));
    double rate = w.farm.served().meanRate(sec(5), sec(15));
    EXPECT_NEAR(rate, 800, 80);
}

TEST_P(ClusterSizes, SurvivesACrashAndRejoin)
{
    std::uint32_t n = GetParam();
    Sized w(n, press::Version::ViaPress3, 600);
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::NodeCrash;
    spec.target = n - 1;
    spec.injectAt = sec(5);
    spec.duration = sec(20);
    w.injector.schedule(spec);
    w.s.runUntil(sec(10));
    EXPECT_EQ(w.cluster.server(0).members().size(), n - 1);
    w.s.runUntil(sec(60));
    EXPECT_FALSE(w.cluster.splintered());
    EXPECT_EQ(w.cluster.server(n - 1).members().size(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClusterSizes,
                         ::testing::Values(2u, 3u, 6u, 8u));

TEST(ClusterSizes, HeartbeatRingScalesWithMembership)
{
    // 6-node heartbeat ring: a kernel-memory fault on one node is
    // detected by its ring successor and the cluster splinters 5+1.
    Sized w(6, press::Version::TcpPressHb, 800);
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::KernelMemAlloc;
    spec.target = 4;
    spec.injectAt = sec(5);
    spec.duration = sec(40);
    w.injector.schedule(spec);
    w.s.runUntil(sec(40));
    EXPECT_TRUE(w.cluster.splintered());
    EXPECT_EQ(w.cluster.server(0).members().size(), 5u);
    EXPECT_EQ(w.cluster.server(4).members().size(), 1u);
}
