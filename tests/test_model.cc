/**
 * @file
 * Unit and property tests for the phase-2 performability model: stage
 * resolution, the AT/AA combination equations, the performability
 * metric, fault loads, and scenario composition.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/fault_load.hh"
#include "core/performability.hh"
#include "core/scenarios.hh"

using namespace performa;
using namespace performa::model;

namespace {

/** A behaviour: detected in 15 s, degraded to 75%, heals. */
MeasuredBehavior
healedBehavior(double tn = 1000.0)
{
    MeasuredBehavior mb;
    mb.normalTput = tn;
    mb.detected = true;
    mb.healed = true;
    mb.dur = {15, 10, 0, 15, 0, 0, 0};
    mb.tput = {0, 0.5 * tn, 0.75 * tn, 0.9 * tn, tn, 0, 0.5 * tn};
    return mb;
}

/** A behaviour that stays splintered until the operator. */
MeasuredBehavior
splinteredBehavior(double tn = 1000.0)
{
    MeasuredBehavior mb = healedBehavior(tn);
    mb.healed = false;
    mb.tput[StageE] = 0.8 * tn;
    return mb;
}

/** An undetected stall that heals on repair. */
MeasuredBehavior
stallBehavior(double tn = 1000.0)
{
    MeasuredBehavior mb;
    mb.normalTput = tn;
    mb.detected = false;
    mb.healed = true;
    mb.dur = {0, 0, 0, 20, 0, 0, 0};
    mb.tput = {0, 0, 0, 0.5 * tn, tn, 0, 0};
    return mb;
}

} // namespace

TEST(ResolveStages, DetectedHealedUsesMttrForC)
{
    EnvParams env;
    ResolvedStages rs = resolveStages(healedBehavior(), 180.0, env);
    EXPECT_DOUBLE_EQ(rs.durSec[StageA], 15.0);
    EXPECT_DOUBLE_EQ(rs.durSec[StageB], 10.0);
    EXPECT_DOUBLE_EQ(rs.durSec[StageC], 155.0); // 180 - 15 - 10
    EXPECT_DOUBLE_EQ(rs.durSec[StageD], 15.0);
    EXPECT_DOUBLE_EQ(rs.durSec[StageE], 0.0);
    EXPECT_DOUBLE_EQ(rs.durSec[StageF], 0.0);
    EXPECT_DOUBLE_EQ(rs.durSec[StageG], 0.0);
}

TEST(ResolveStages, DetectionLatencyLongerThanMttrClampsC)
{
    EnvParams env;
    MeasuredBehavior mb = healedBehavior();
    mb.dur[StageA] = 500.0; // slower than the 180 s repair
    ResolvedStages rs = resolveStages(mb, 180.0, env);
    EXPECT_DOUBLE_EQ(rs.durSec[StageA], 180.0);
    EXPECT_DOUBLE_EQ(rs.durSec[StageC], 0.0);
}

TEST(ResolveStages, UndetectedSpendsWholeMttrInA)
{
    EnvParams env;
    ResolvedStages rs = resolveStages(stallBehavior(), 180.0, env);
    EXPECT_DOUBLE_EQ(rs.durSec[StageA], 180.0);
    EXPECT_DOUBLE_EQ(rs.durSec[StageB], 0.0);
    EXPECT_DOUBLE_EQ(rs.durSec[StageC], 0.0);
    EXPECT_DOUBLE_EQ(rs.durSec[StageD], 20.0);
}

TEST(ResolveStages, UnhealedAddsOperatorStages)
{
    EnvParams env;
    env.operatorResponseSec = 600;
    env.resetDurationSec = 60;
    env.warmupSec = 20;
    ResolvedStages rs = resolveStages(splinteredBehavior(), 180.0, env);
    EXPECT_DOUBLE_EQ(rs.durSec[StageE], 600.0);
    EXPECT_DOUBLE_EQ(rs.durSec[StageF], 60.0);
    EXPECT_DOUBLE_EQ(rs.durSec[StageG], 20.0);
    EXPECT_DOUBLE_EQ(rs.tput[StageF], 0.0);
    EXPECT_DOUBLE_EQ(rs.tput[StageE], 800.0);
}

TEST(ResolveStages, TotalDurationSumsAllStages)
{
    EnvParams env;
    ResolvedStages rs = resolveStages(healedBehavior(), 180.0, env);
    EXPECT_DOUBLE_EQ(rs.totalDuration(), 15 + 10 + 155 + 15);
}

TEST(PerformabilityMetric, ScalesLinearlyWithThroughput)
{
    double p1 = performabilityMetric(1000, 0.999, 0.99999);
    double p2 = performabilityMetric(2000, 0.999, 0.99999);
    EXPECT_NEAR(p2, 2 * p1, 1e-9);
}

TEST(PerformabilityMetric, HalvingUnavailabilityRoughlyDoublesP)
{
    double p1 = performabilityMetric(1000, 1 - 2e-3, 0.99999);
    double p2 = performabilityMetric(1000, 1 - 1e-3, 0.99999);
    EXPECT_NEAR(p2 / p1, 2.0, 0.01);
}

TEST(PerformabilityMetric, PerfectAvailabilityIsFinite)
{
    double p = performabilityMetric(1000, 1.0, 0.99999);
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GT(p, 0);
}

TEST(Model, NoFaultsMeansPerfectAvailability)
{
    PerformabilityModel m(1000);
    PerfResult r = m.evaluate();
    EXPECT_DOUBLE_EQ(r.avgTput, 1000.0);
    EXPECT_DOUBLE_EQ(r.availability, 1.0);
}

TEST(Model, SingleFaultHandComputedAT)
{
    // One component, MTTF 10000 s, stall of 100 s at zero throughput,
    // heals instantly: AT = (1 - 100/10000)*Tn.
    MeasuredBehavior mb;
    mb.normalTput = 1000;
    mb.detected = false;
    mb.healed = true;
    mb.dur = {0, 0, 0, 0, 0, 0, 0};
    mb.tput = {0, 0, 0, 0, 1000, 0, 0};

    FaultClass fc{"stall", fault::FaultKind::LinkDown, 1.0, 10000.0,
                  100.0};
    PerformabilityModel m(1000);
    m.addFault(fc, mb);
    PerfResult r = m.evaluate();
    EXPECT_NEAR(r.avgTput, (1.0 - 0.01) * 1000.0, 1e-6);
    EXPECT_NEAR(r.availability, 0.99, 1e-9);
    ASSERT_EQ(r.breakdown.size(), 1u);
    EXPECT_NEAR(r.breakdown[0].unavailability, 0.01, 1e-9);
}

TEST(Model, ComponentCountMultipliesContribution)
{
    MeasuredBehavior mb;
    mb.normalTput = 1000;
    mb.detected = false;
    mb.healed = true;
    mb.tput = {0, 0, 0, 0, 1000, 0, 0};

    FaultClass one{"x", fault::FaultKind::NodeCrash, 1.0, 10000.0, 50.0};
    FaultClass four = one;
    four.count = 4.0;

    PerformabilityModel m1(1000), m4(1000);
    m1.addFault(one, mb);
    m4.addFault(four, mb);
    double u1 = m1.evaluate().unavailability;
    double u4 = m4.evaluate().unavailability;
    EXPECT_NEAR(u4, 4 * u1, 1e-9);
}

TEST(Model, DegradedStageAboveNormalContributesNothing)
{
    // A fault whose stages all run at Tn: no unavailability.
    MeasuredBehavior mb;
    mb.normalTput = 1000;
    mb.detected = false;
    mb.healed = true;
    mb.tput = {1000, 1000, 1000, 1000, 1000, 0, 1000};
    mb.dur = {0, 0, 0, 10, 0, 0, 0};

    FaultClass fc{"benign", fault::FaultKind::PinExhaustion, 4.0,
                  5270400.0, 180.0};
    PerformabilityModel m(1000);
    m.addFault(fc, mb);
    EXPECT_NEAR(m.evaluate().unavailability, 0.0, 1e-12);
}

TEST(Model, UnhealedFaultCostsOperatorTime)
{
    EnvParams env;
    env.operatorResponseSec = 600;
    FaultClass fc{"splinter", fault::FaultKind::LinkDown, 1.0, 100000.0,
                  180.0};

    PerformabilityModel healed(1000), splintered(1000);
    healed.addFault(fc, healedBehavior());
    splintered.addFault(fc, splinteredBehavior());
    EXPECT_GT(splintered.evaluate(env).unavailability,
              healed.evaluate(env).unavailability);
}

TEST(FaultLoad, Table3HasAllClasses)
{
    FaultLoadParams p;
    auto load = table3FaultLoad(p);
    EXPECT_EQ(load.size(), 11u); // 6 hw/os + 5 app classes
    double app_share = 0;
    for (const auto &fc : load) {
        EXPECT_GT(fc.mttfSec, 0);
        EXPECT_GT(fc.mttrSec, 0);
        app_share += appFaultShare(fc.kind);
    }
    EXPECT_NEAR(app_share, 0.99, 0.02); // 40+40+8+9+2
}

TEST(FaultLoad, AppMixSplitsRate)
{
    FaultLoadParams p;
    p.appMttfSec = 86400;
    auto load = table3FaultLoad(p);
    double total_rate = 0;
    for (const auto &fc : load) {
        if (appFaultShare(fc.kind) > 0)
            total_rate += fc.count / fc.mttfSec;
    }
    // Summed app rate ~= numNodes / appMttf (mix shares sum to ~0.99).
    EXPECT_NEAR(total_rate, 4.0 * 0.99 / 86400.0, 1e-7);
}

TEST(FaultLoad, ScaleRatesDividesMttf)
{
    FaultLoadParams p;
    auto load = table3FaultLoad(p);
    double before = load[0].mttfSec;
    scaleRates(load, {fault::FaultKind::LinkDown}, 4.0);
    EXPECT_DOUBLE_EQ(load[0].mttfSec, before / 4.0);
}

namespace {

/** Synthetic behaviour lookup for scenario tests. */
MeasuredBehavior
syntheticLookup(press::Version v, fault::FaultKind)
{
    double tn = press::paperThroughput(v);
    MeasuredBehavior mb = healedBehavior(tn);
    return mb;
}

} // namespace

TEST(Scenario, ViaAdditionsOnlyAffectViaVersions)
{
    ScenarioOptions base;
    ScenarioOptions pess = base;
    pess.viaPacketDropMttfSec = 86400;
    pess.viaSystemFaultMttfSec = 86400;
    pess.viaExtraAppMttfSec = 86400;

    double tcp_base = evaluateScenario(press::Version::TcpPress,
                                       syntheticLookup, base)
                          .performability;
    double tcp_pess = evaluateScenario(press::Version::TcpPress,
                                       syntheticLookup, pess)
                          .performability;
    EXPECT_DOUBLE_EQ(tcp_base, tcp_pess);

    double via_base = evaluateScenario(press::Version::ViaPress5,
                                       syntheticLookup, base)
                          .performability;
    double via_pess = evaluateScenario(press::Version::ViaPress5,
                                       syntheticLookup, pess)
                          .performability;
    EXPECT_LT(via_pess, via_base);
}

TEST(Scenario, HigherAppFaultRateLowersPerformability)
{
    ScenarioOptions daily, monthly;
    daily.appMttfSec = 86400;
    monthly.appMttfSec = 30 * 86400;
    double pd = evaluateScenario(press::Version::ViaPress5,
                                 syntheticLookup, daily)
                    .performability;
    double pm = evaluateScenario(press::Version::ViaPress5,
                                 syntheticLookup, monthly)
                    .performability;
    EXPECT_LT(pd, pm);
}

TEST(Scenario, RateScaleMonotonicallyLowersPerformability)
{
    double prev = 1e18;
    for (double k : {1.0, 2.0, 4.0, 8.0, 16.0}) {
        ScenarioOptions o;
        o.viaRateScale = k;
        double p = evaluateScenario(press::Version::ViaPress5,
                                    syntheticLookup, o)
                       .performability;
        EXPECT_LT(p, prev);
        prev = p;
    }
}

TEST(Scenario, CrossoverFindsCrossingPoint)
{
    // With identical (synthetic) behaviours, VIA-5 starts ahead on
    // raw throughput; scaling its fault rates must eventually drop it
    // to TCP's performability.
    ScenarioOptions base;
    double k = crossoverFactor(press::Version::ViaPress5,
                               press::Version::TcpPress,
                               syntheticLookup, base);
    ASSERT_GT(k, 1.0);
    ASSERT_LT(k, 64.0);
    // Verify it is actually a crossing.
    ScenarioOptions at;
    at.viaRateScale = k;
    double p_via = evaluateScenario(press::Version::ViaPress5,
                                    syntheticLookup, at)
                       .performability;
    double p_tcp = evaluateScenario(press::Version::TcpPress,
                                    syntheticLookup, base)
                       .performability;
    EXPECT_NEAR(p_via, p_tcp, 0.01 * p_tcp);
}

/** Property sweep: AA always in (0, 1] and AT <= Tn. */
class ModelInvariantSweep : public ::testing::TestWithParam<double>
{};

TEST_P(ModelInvariantSweep, BoundsHold)
{
    double app_mttf = GetParam();
    ScenarioOptions o;
    o.appMttfSec = app_mttf;
    for (press::Version v : press::allVersions) {
        PerfResult r = evaluateScenario(v, syntheticLookup, o);
        EXPECT_GT(r.availability, 0.0);
        EXPECT_LE(r.availability, 1.0);
        EXPECT_LE(r.avgTput, r.normalTput + 1e-9);
        EXPECT_GT(r.performability, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AppRates, ModelInvariantSweep,
                         ::testing::Values(3600.0, 86400.0, 604800.0,
                                           2592000.0));
