/**
 * @file
 * Locks in the allocation-free message path: global operator new is
 * replaced with a counting hook, and a warmed-up TCP echo flood (plus
 * a raw Network frame blast) must execute its steady-state window
 * without a single heap allocation — payloads come from the pool,
 * in-flight frames from the parked slab, queue slots from the rings,
 * and event records from the event-engine slab.
 *
 * This file must stay its own test binary: the hook is global.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <unordered_map>

#include "loadgen/session_farm.hh"
#include "net/network.hh"
#include "os/node.hh"
#include "press/messages.hh"
#include "proto/tcp.hh"
#include "sim/simulation.hh"

namespace {

bool g_counting = false;
std::uint64_t g_news = 0;

void *
countedAlloc(std::size_t n)
{
    if (g_counting)
        ++g_news;
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
countedAllocAligned(std::size_t n, std::size_t align)
{
    if (g_counting)
        ++g_news;
    void *p = nullptr;
    if (posix_memalign(&p, align < sizeof(void *) ? sizeof(void *) : align,
                       n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new(std::size_t n, std::align_val_t a)
{
    return countedAllocAligned(n, static_cast<std::size_t>(a));
}

void *
operator new[](std::size_t n, std::align_val_t a)
{
    return countedAllocAligned(n, static_cast<std::size_t>(a));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

using namespace performa;

namespace {

struct TwoNodeWorld
{
    sim::Simulation sim{7};
    net::Network intra{sim};
    net::Network client{sim};
    net::PortId p0, p1, c0, c1;
    std::unique_ptr<osim::Node> n0, n1;

    TwoNodeWorld()
    {
        p0 = intra.addPort();
        p1 = intra.addPort();
        c0 = client.addPort();
        c1 = client.addPort();
        n0 = std::make_unique<osim::Node>(sim, 0, intra, p0, client, c0);
        n1 = std::make_unique<osim::Node>(sim, 1, intra, p1, client, c1);
    }

    std::unordered_map<sim::NodeId, net::PortId>
    ports() const
    {
        return {{0, p0}, {1, p1}};
    }
};

} // namespace

TEST(ZeroAlloc, TcpEchoFloodSteadyStateAllocatesNothing)
{
    TwoNodeWorld w;
    proto::TcpComm a(*w.n0, proto::TcpConfig{}, w.ports());
    proto::TcpComm b(*w.n1, proto::TcpConfig{}, w.ports());
    std::uint64_t echoed = 0;
    proto::CommCallbacks bcbs;
    bcbs.onMessage = [&](sim::NodeId peer, proto::AppMessage &&m) {
        b.send(peer, std::move(m), {});
    };
    b.setCallbacks(bcbs);
    proto::CommCallbacks acbs;
    acbs.onMessage = [&](sim::NodeId, proto::AppMessage &&) { ++echoed; };
    a.setCallbacks(acbs);
    a.start();
    b.start();
    a.connect(1);
    w.sim.runUntil(sim::sec(1));
    ASSERT_TRUE(a.connected(1));

    constexpr int kWindow = 16;
    auto pumpWindow = [&] {
        for (int i = 0; i < kWindow; ++i) {
            proto::AppMessage m;
            m.type = 1;
            m.bytes = 1024;
            a.send(1, std::move(m), {});
        }
        w.sim.events().runAll();
    };

    // Warm-up: let every slab, ring, pool class and the event heap
    // reach steady-state capacity.
    for (int r = 0; r < 50; ++r)
        pumpWindow();

    std::uint64_t fresh_before = w.sim.pool().freshAllocs();
    std::uint64_t echoed_before = echoed;
    g_news = 0;
    g_counting = true;
    for (int r = 0; r < 200; ++r)
        pumpWindow();
    g_counting = false;

    EXPECT_EQ(echoed - echoed_before, 200u * kWindow);
    EXPECT_EQ(g_news, 0u) << "heap allocations in the steady state";
    EXPECT_EQ(w.sim.pool().freshAllocs(), fresh_before)
        << "payload pool carved fresh blocks in the steady state";
}

TEST(ZeroAlloc, NetworkFrameBlastSteadyStateAllocatesNothing)
{
    sim::Simulation s{7};
    net::Network net{s};
    net::PortId p0 = net.addPort();
    net::PortId p1 = net.addPort();
    std::uint64_t got = 0, acked = 0;
    net.setHandler(p1, [&](net::Frame &&) { ++got; });

    constexpr int kBurst = 64;
    auto blast = [&] {
        for (int i = 0; i < kBurst; ++i) {
            net::Frame f;
            f.srcPort = p0;
            f.dstPort = p1;
            f.bytes = 512;
            net.send(std::move(f), [&](bool ok) { acked += ok; });
        }
        s.events().runAll();
    };

    for (int r = 0; r < 20; ++r)
        blast();

    std::uint64_t got_before = got;
    g_news = 0;
    g_counting = true;
    for (int r = 0; r < 100; ++r)
        blast();
    g_counting = false;

    EXPECT_EQ(got - got_before, 100u * kBurst);
    EXPECT_EQ(acked, got);
    EXPECT_EQ(g_news, 0u) << "heap allocations in the steady state";
}

TEST(ZeroAlloc, SessionClientFloodSteadyStateAllocatesNothing)
{
    sim::Simulation s{11};
    net::Network net{s};
    std::vector<net::PortId> servers, clients;
    for (int i = 0; i < 2; ++i)
        servers.push_back(net.addPort());
    for (int i = 0; i < 2; ++i)
        clients.push_back(net.addPort());

    // A stamp-echoing server: responds from the payload pool so the
    // whole request/response loop runs off pre-carved memory.
    for (net::PortId p : servers) {
        net.setHandler(p, [&s, &net, p](net::Frame &&f) {
            auto *req = f.payload.get<press::ClientRequestBody>();
            net::Frame r;
            r.srcPort = p;
            r.dstPort = req->replyPort;
            r.proto = net::Proto::Client;
            r.kind = press::ClientResponse;
            r.bytes = 8192;
            auto body = s.makePayload<press::ClientResponseBody>();
            body->req = req->req;
            body->sentAt = req->sentAt;
            body->acceptedAt = s.now();
            body->serviceStartAt = s.now();
            r.payload = std::move(body);
            net.send(std::move(r));
        });
    }

    wl::WorkloadConfig cfg;
    cfg.requestRate = 2000;
    cfg.numFiles = 500;
    auto profile = *wl::profileByName("sessions");
    profile.reserveSlices = 128; // covers the whole run below
    wl::SessionFarm farm(s, net, servers, clients, cfg, profile);
    farm.start();

    // Warm-up: session table live, payload pool and event slab at
    // steady-state capacity, histograms carved out.
    s.runUntil(sim::sec(5));
    ASSERT_GT(farm.totalServed(), 0u);

    // Deterministically pre-carve pool capacity past any stochastic
    // in-flight peak: every session can have a request body and a
    // response body live at once, plus slack for queued frames.
    {
        std::vector<sim::Rc<press::ClientRequestBody>> reqs;
        std::vector<sim::Rc<press::ClientResponseBody>> resps;
        std::size_t n = 4 * farm.sessionCount() + 64;
        reqs.reserve(n);
        resps.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            reqs.push_back(s.makePayload<press::ClientRequestBody>());
            resps.push_back(s.makePayload<press::ClientResponseBody>());
        }
    } // handles drop here; the blocks land on the free lists

    std::uint64_t fresh_before = s.pool().freshAllocs();
    std::uint64_t served_before = farm.totalServed();
    g_news = 0;
    g_counting = true;
    s.runUntil(sim::sec(60));
    g_counting = false;

    EXPECT_GT(farm.totalServed(), served_before);
    EXPECT_EQ(farm.totalFailed(), 0u);
    EXPECT_GT(farm.timeline()
                  .cumulative(sim::LatencyStage::Total)
                  .count(),
              0u);
    EXPECT_EQ(g_news, 0u) << "heap allocations in the steady state";
    EXPECT_EQ(s.pool().freshAllocs(), fresh_before)
        << "payload pool carved fresh blocks in the steady state";
}
