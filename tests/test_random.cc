/**
 * @file
 * Unit and property tests for the random utilities, in particular the
 * Zipf sampler that drives file popularity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"

using namespace performa::sim;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.uniformInt(3, 7);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 7u);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialNeverZero)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.exponential(2), 1u);
}

/** Property: sample mean of the exponential tracks the requested mean. */
class ExponentialMeanSweep
    : public ::testing::TestWithParam<Tick>
{};

TEST_P(ExponentialMeanSweep, MeanWithinTenPercent)
{
    Rng r(1234);
    Tick mean = GetParam();
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.exponential(mean));
    double m = sum / n;
    EXPECT_NEAR(m, static_cast<double>(mean),
                0.1 * static_cast<double>(mean));
}

INSTANTIATE_TEST_SUITE_P(Means, ExponentialMeanSweep,
                         ::testing::Values(usec(100), msec(1), msec(50),
                                           sec(1)));

TEST(Zipf, PmfSumsToOne)
{
    ZipfSampler z(1000, 0.8);
    double sum = 0;
    for (std::size_t i = 0; i < z.size(); ++i)
        sum += z.pmf(i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfMonotonicallyDecreasing)
{
    ZipfSampler z(500, 0.8);
    for (std::size_t i = 1; i < z.size(); ++i)
        EXPECT_LE(z.pmf(i), z.pmf(i - 1) + 1e-12);
}

TEST(Zipf, CoverageMonotonic)
{
    ZipfSampler z(1000, 0.8);
    EXPECT_DOUBLE_EQ(z.coverage(0), 0.0);
    EXPECT_DOUBLE_EQ(z.coverage(1000), 1.0);
    EXPECT_DOUBLE_EQ(z.coverage(5000), 1.0);
    double prev = 0;
    for (std::size_t k = 1; k <= 1000; k += 37) {
        double c = z.coverage(k);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(Zipf, HotItemsDominateSamples)
{
    ZipfSampler z(10000, 0.8);
    Rng r(5);
    std::size_t hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (z.sample(r) < 1000)
            ++hot;
    }
    // Top 10% of a 0.8-skew Zipf carries well over a third of mass.
    double frac = static_cast<double>(hot) / n;
    EXPECT_NEAR(frac, z.coverage(1000), 0.03);
}

TEST(Zipf, SampleWithinRange)
{
    ZipfSampler z(64, 1.0);
    Rng r(9);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(z.sample(r), 64u);
}

/** Property: empirical frequency of item 0 tracks pmf(0) across skews. */
class ZipfSkewSweep : public ::testing::TestWithParam<double>
{};

TEST_P(ZipfSkewSweep, TopItemFrequencyMatchesPmf)
{
    double alpha = GetParam();
    ZipfSampler z(2048, alpha);
    Rng r(31);
    int zero = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        if (z.sample(r) == 0)
            ++zero;
    }
    EXPECT_NEAR(static_cast<double>(zero) / n, z.pmf(0),
                0.1 * z.pmf(0) + 0.005);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewSweep,
                         ::testing::Values(0.4, 0.8, 1.0, 1.4));
