/**
 * @file
 * Tests for the long-run model-validation harness: at modest fault
 * rates the phase-2 model must track directly simulated availability.
 */

#include <gtest/gtest.h>

#include "exp/long_run.hh"

using namespace performa;
using namespace performa::sim;

namespace {

exp::LongRunConfig
fastConfig(press::Version v)
{
    exp::LongRunConfig cfg;
    cfg.version = v;
    // Only quickly self-healing faults, short horizon: fast test.
    cfg.faults = {
        {fault::FaultKind::AppCrash, 900.0, sec(12)},
        {fault::FaultKind::KernelMemAlloc, 1200.0, sec(20)},
    };
    cfg.duration = minutes(8);
    return cfg;
}

} // namespace

TEST(LongRunValidation, ModelTracksSimulationOnVia)
{
    exp::LongRunResult r = exp::validateModel(
        fastConfig(press::Version::ViaPress0));
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_GT(r.measuredAvailability, 0.8);
    EXPECT_LE(r.measuredAvailability, 1.0);
    EXPECT_GT(r.predictedAvailability, 0.8);
    // Within a few percentage points of availability.
    EXPECT_LT(r.absoluteError(), 0.05)
        << "measured " << r.measuredAvailability << " vs predicted "
        << r.predictedAvailability;
}

TEST(LongRunValidation, ModelTracksSimulationOnTcp)
{
    exp::LongRunResult r = exp::validateModel(
        fastConfig(press::Version::TcpPress));
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_LT(r.absoluteError(), 0.07)
        << "measured " << r.measuredAvailability << " vs predicted "
        << r.predictedAvailability;
}

TEST(LongRunValidation, DefaultLoadScalesRates)
{
    auto base = exp::defaultValidationLoad(1.0);
    auto fast = exp::defaultValidationLoad(2.0);
    ASSERT_EQ(base.size(), fast.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        EXPECT_NEAR(fast[i].mttfPerNodeSec,
                    base[i].mttfPerNodeSec / 2.0, 1e-9);
}
