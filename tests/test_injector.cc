/**
 * @file
 * Unit tests for the Mendosus-style injector: every fault kind must
 * manipulate exactly the intended component state and restore it on
 * recovery.
 */

#include <gtest/gtest.h>

#include <vector>

#include "faults/injector.hh"
#include "press/cluster.hh"
#include "sim/simulation.hh"

using namespace performa;
using namespace performa::sim;

namespace {

struct World
{
    Simulation s{5};
    press::Cluster cluster;
    fault::Injector injector;
    std::vector<std::string> events;

    explicit World(press::Version v = press::Version::TcpPress)
        : cluster(s, makeCfg(v)), injector(s, cluster)
    {
        injector.setEventFn([this](Tick, const std::string &what,
                                   NodeId) { events.push_back(what); });
        cluster.startAll();
        s.runUntil(sec(1));
    }

    static press::ClusterConfig
    makeCfg(press::Version v)
    {
        press::ClusterConfig cfg;
        cfg.press.version = v;
        return cfg;
    }

    fault::FaultSpec
    spec(fault::FaultKind k, Tick duration = sec(10))
    {
        fault::FaultSpec f;
        f.kind = k;
        f.target = 2;
        f.injectAt = s.now();
        f.duration = duration;
        return f;
    }
};

} // namespace

TEST(Injector, LinkDownAndRecovery)
{
    World w;
    w.injector.injectNow(w.spec(fault::FaultKind::LinkDown));
    EXPECT_FALSE(w.cluster.intraNet().linkUp(2));
    EXPECT_TRUE(w.cluster.clientNet().linkUp(2)); // clients untouched
    w.s.runUntil(sec(12));
    EXPECT_TRUE(w.cluster.intraNet().linkUp(2));
    ASSERT_EQ(w.events.size(), 2u);
    EXPECT_EQ(w.events[0], "inject link-down");
    EXPECT_EQ(w.events[1], "recover link-down");
}

TEST(Injector, SwitchDownAndRecovery)
{
    World w;
    w.injector.injectNow(w.spec(fault::FaultKind::SwitchDown));
    EXPECT_FALSE(w.cluster.intraNet().switchUp());
    EXPECT_TRUE(w.cluster.clientNet().switchUp());
    w.s.runUntil(sec(12));
    EXPECT_TRUE(w.cluster.intraNet().switchUp());
}

TEST(Injector, NodeCrashPowersOffAndRebootsNode)
{
    World w;
    w.injector.injectNow(w.spec(fault::FaultKind::NodeCrash, sec(20)));
    EXPECT_FALSE(w.cluster.node(2).up());
    w.s.runUntil(sec(25));
    EXPECT_TRUE(w.cluster.node(2).up());
    EXPECT_EQ(w.cluster.node(2).incarnation(), 2u);
}

TEST(Injector, NodeFreezeSuspendsAndResumes)
{
    World w;
    w.injector.injectNow(w.spec(fault::FaultKind::NodeFreeze, sec(10)));
    EXPECT_TRUE(w.cluster.node(2).frozen());
    w.s.runUntil(sec(12));
    EXPECT_TRUE(w.cluster.node(2).up());
    EXPECT_FALSE(w.cluster.node(2).frozen());
}

TEST(Injector, KernelMemFaultTogglesAllocator)
{
    World w;
    w.injector.injectNow(w.spec(fault::FaultKind::KernelMemAlloc));
    EXPECT_TRUE(w.cluster.node(2).kernelMem().failInjected());
    EXPECT_FALSE(w.cluster.node(2).kernelMem().alloc(1));
    w.s.runUntil(sec(12));
    EXPECT_FALSE(w.cluster.node(2).kernelMem().failInjected());
}

TEST(Injector, PinFaultLowersAndRestoresThreshold)
{
    World w;
    auto f = w.spec(fault::FaultKind::PinExhaustion);
    f.pinLimitBytes = 1234;
    w.injector.injectNow(f);
    EXPECT_EQ(w.cluster.node(2).pins().effectiveLimit(), 1234u);
    w.s.runUntil(sec(12));
    EXPECT_GT(w.cluster.node(2).pins().effectiveLimit(), 1234u);
}

TEST(Injector, AppCrashKillsProcessDaemonRestarts)
{
    World w;
    w.injector.injectNow(w.spec(fault::FaultKind::AppCrash));
    EXPECT_FALSE(w.cluster.server(2).alive());
    w.s.runUntil(sec(15)); // restart delay (10 s)
    EXPECT_TRUE(w.cluster.server(2).alive());
}

TEST(Injector, AppHangStopsAndContinuesProcess)
{
    World w;
    w.injector.injectNow(w.spec(fault::FaultKind::AppHang, sec(8)));
    EXPECT_TRUE(w.cluster.server(2).stoppedBySignal());
    w.s.runUntil(sec(10));
    EXPECT_FALSE(w.cluster.server(2).stoppedBySignal());
    EXPECT_TRUE(w.cluster.server(2).alive());
}

TEST(Injector, BadParamFaultsArmTheInterposer)
{
    World w;
    w.injector.injectNow(w.spec(fault::FaultKind::BadParamNull));
    EXPECT_TRUE(w.cluster.server(2).interposer().sendArmed());
}

TEST(Injector, PacketDropOnTcpIsHarmless)
{
    World w(press::Version::TcpPress);
    w.injector.injectNow(w.spec(fault::FaultKind::PacketDrop));
    EXPECT_TRUE(w.cluster.server(2).alive());
}

TEST(Injector, PacketDropOnViaActsAsProcessCrash)
{
    World w(press::Version::ViaPress0);
    w.injector.injectNow(w.spec(fault::FaultKind::PacketDrop));
    EXPECT_FALSE(w.cluster.server(2).alive());
    w.s.runUntil(sec(15));
    EXPECT_TRUE(w.cluster.server(2).alive()); // restarted + rejoined
}

TEST(Injector, ScheduleDefersInjection)
{
    World w;
    auto f = w.spec(fault::FaultKind::LinkDown);
    f.injectAt = sec(5);
    w.injector.schedule(f);
    EXPECT_TRUE(w.cluster.intraNet().linkUp(2));
    w.s.runUntil(sec(6));
    EXPECT_FALSE(w.cluster.intraNet().linkUp(2));
}

TEST(Injector, FaultNamesAreStable)
{
    for (fault::FaultKind k : fault::allFaultKinds)
        EXPECT_STRNE(fault::faultName(k), "?");
    EXPECT_STREQ(fault::faultName(fault::FaultKind::PacketDrop),
                 "packet-drop");
}

TEST(Injector, HasDurationMatchesFaultSemantics)
{
    EXPECT_TRUE(fault::hasDuration(fault::FaultKind::LinkDown));
    EXPECT_TRUE(fault::hasDuration(fault::FaultKind::AppHang));
    EXPECT_FALSE(fault::hasDuration(fault::FaultKind::AppCrash));
    EXPECT_FALSE(fault::hasDuration(fault::FaultKind::BadParamNull));
}
