/**
 * @file
 * Tests for the closed-loop client population.
 */

#include <gtest/gtest.h>

#include "press/messages.hh"
#include "sim/simulation.hh"
#include "loadgen/closed_loop.hh"

using namespace performa;
using namespace performa::sim;

namespace {

struct FarmWorld
{
    Simulation s{3};
    net::Network n{s};
    std::vector<net::PortId> servers;
    std::vector<net::PortId> clients;
    bool respond = true;
    Tick serviceDelay = usec(200);

    FarmWorld()
    {
        for (int i = 0; i < 4; ++i) {
            net::PortId p = n.addPort();
            servers.push_back(p);
            n.setHandler(p, [this, p](net::Frame &&f) {
                if (!respond)
                    return;
                auto req = f.payload.cast<press::ClientRequestBody>();
                auto reply = [this, p, req] {
                    net::Frame r;
                    r.srcPort = p;
                    r.dstPort = req->replyPort;
                    r.proto = net::Proto::Client;
                    r.kind = press::ClientResponse;
                    r.bytes = 8192;
                    auto body =
                        s.makePayload<press::ClientResponseBody>();
                    body->req = req->req;
                    r.payload = std::move(body);
                    n.send(std::move(r));
                };
                s.scheduleIn(serviceDelay, reply);
            });
        }
        for (int i = 0; i < 2; ++i)
            clients.push_back(n.addPort());
    }
};

} // namespace

TEST(ClosedLoop, UsersCycleThroughRequests)
{
    FarmWorld w;
    wl::ClosedLoopConfig cfg;
    cfg.users = 50;
    cfg.meanThinkTime = msec(10);
    cfg.numFiles = 100;
    wl::ClosedLoopFarm farm(w.s, w.n, w.servers, w.clients, cfg);
    farm.start();
    w.s.runUntil(sec(10));
    // ~50 users / (10ms think + ~0.5ms service) ~ 4700 req/s; allow
    // broad slack, the point is sustained cycling.
    EXPECT_GT(farm.totalServed(), 20000u);
    EXPECT_EQ(farm.totalFailed(), 0u);
}

TEST(ClosedLoop, ThroughputScalesWithUsers)
{
    double rates[2];
    int idx = 0;
    for (std::size_t users : {20, 80}) {
        FarmWorld w;
        wl::ClosedLoopConfig cfg;
        cfg.users = users;
        cfg.meanThinkTime = msec(20);
        cfg.numFiles = 100;
        wl::ClosedLoopFarm farm(w.s, w.n, w.servers, w.clients, cfg);
        farm.start();
        w.s.runUntil(sec(10));
        rates[idx++] = farm.served().meanRate(sec(2), sec(10));
    }
    EXPECT_GT(rates[1], 3.0 * rates[0]);
}

TEST(ClosedLoop, SelfThrottlesWhenServerIsSilent)
{
    FarmWorld w;
    w.respond = false;
    wl::ClosedLoopConfig cfg;
    cfg.users = 30;
    cfg.meanThinkTime = msec(10);
    cfg.numFiles = 100;
    cfg.requestTimeout = sec(2);
    wl::ClosedLoopFarm farm(w.s, w.n, w.servers, w.clients, cfg);
    farm.start();
    w.s.runUntil(sec(20));
    // Each user can fail at most ~once per timeout: bounded failures,
    // unlike the open-loop farm which keeps firing.
    EXPECT_LE(farm.totalFailed(), 30u * 11u);
    EXPECT_GT(farm.totalFailed(), 30u * 5u);
    EXPECT_EQ(farm.totalServed(), 0u);
}

TEST(ClosedLoop, StopCeasesActivity)
{
    FarmWorld w;
    wl::ClosedLoopConfig cfg;
    cfg.users = 10;
    cfg.meanThinkTime = msec(10);
    cfg.numFiles = 100;
    wl::ClosedLoopFarm farm(w.s, w.n, w.servers, w.clients, cfg);
    farm.start();
    w.s.runUntil(sec(2));
    farm.stop();
    std::uint64_t served = farm.totalServed();
    w.s.runUntil(sec(10));
    EXPECT_EQ(farm.totalServed(), served);
}

TEST(ClosedLoop, ServedRequestsDoNotLeakExpiryTimers)
{
    // Regression: issue() armed a 6 s expiry per request and never
    // cancelled it on response, leaving one dead heap entry per served
    // request in the event queue for the rest of the run.
    FarmWorld w;
    wl::ClosedLoopConfig cfg;
    cfg.users = 50;
    cfg.meanThinkTime = msec(10);
    cfg.numFiles = 100;
    wl::ClosedLoopFarm farm(w.s, w.n, w.servers, w.clients, cfg);
    farm.start();
    w.s.runUntil(sec(5));
    ASSERT_GT(farm.totalServed(), 10000u);
    // Live events: one think or expiry timer per user plus a handful
    // of in-flight frames — nothing proportional to requests served.
    EXPECT_LT(w.s.events().pending(), cfg.users * 3);
    // And the heap itself must be bounded too (cancelled entries are
    // compacted away, not carried until their 6 s due time).
    EXPECT_LT(w.s.events().heapSize(), cfg.users * 6);
}

TEST(ClosedLoop, StopMidFlightCountsAbandonedRequests)
{
    // Regression: stop() cleared pending_ silently, so requests in
    // flight at stop time were neither served nor failed and the
    // accounting no longer summed to the requests issued.
    FarmWorld w;
    w.serviceDelay = msec(50); // long enough to guarantee in-flight
    wl::ClosedLoopConfig cfg;
    cfg.users = 20;
    cfg.meanThinkTime = msec(10);
    cfg.numFiles = 100;
    wl::ClosedLoopFarm farm(w.s, w.n, w.servers, w.clients, cfg);
    farm.start();
    w.s.runUntil(msec(500) + msec(25)); // mid service window
    ASSERT_GT(farm.inFlight(), 0u);
    farm.stop();
    EXPECT_EQ(farm.inFlight(), 0u);
    EXPECT_GT(farm.totalAbandoned(), 0u);
    EXPECT_EQ(farm.totalIssued(), farm.totalServed() +
                                      farm.totalFailed() +
                                      farm.totalAbandoned());
    // Abandoned expiry timers were cancelled: letting the clock run
    // past the timeout window must not record late failures.
    std::uint64_t failed = farm.totalFailed();
    w.s.runUntil(sec(30));
    EXPECT_EQ(farm.totalFailed(), failed);
}

TEST(ClosedLoop, AccountingSumsWhileRunning)
{
    FarmWorld w;
    wl::ClosedLoopConfig cfg;
    cfg.users = 30;
    cfg.meanThinkTime = msec(10);
    cfg.numFiles = 100;
    wl::ClosedLoopFarm farm(w.s, w.n, w.servers, w.clients, cfg);
    farm.start();
    w.s.runUntil(sec(3));
    EXPECT_EQ(farm.totalIssued(),
              farm.totalServed() + farm.totalFailed() +
                  farm.totalAbandoned() + farm.inFlight());
}

TEST(ClosedLoop, LatencyReflectsServiceDelay)
{
    FarmWorld w;
    w.serviceDelay = msec(5);
    wl::ClosedLoopConfig cfg;
    cfg.users = 10;
    cfg.meanThinkTime = msec(20);
    cfg.numFiles = 100;
    wl::ClosedLoopFarm farm(w.s, w.n, w.servers, w.clients, cfg);
    farm.start();
    w.s.runUntil(sec(10));
    EXPECT_GT(farm.latency().mean(), 5000.0); // >= the 5ms service
    EXPECT_LT(farm.latency().mean(), 8000.0);
}
