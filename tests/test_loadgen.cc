/**
 * @file
 * Tests for the loadgen subsystem: the profile registry, rate
 * modulation, Pareto file sizes, the split RNG stream contract, the
 * session farm, and latency-stamp recording.
 */

#include <gtest/gtest.h>

#include <map>

#include "loadgen/client_farm.hh"
#include "loadgen/generator.hh"
#include "loadgen/load_profile.hh"
#include "loadgen/session_farm.hh"
#include "press/messages.hh"
#include "sim/simulation.hh"

using namespace performa;
using namespace performa::sim;

namespace {

/** A bare network with scripted "server" ports that echo latency
 *  stamps like the PRESS server does. */
struct StampWorld
{
    Simulation s{3};
    net::Network n{s};
    std::vector<net::PortId> servers;
    std::vector<net::PortId> clients;
    std::map<net::PortId, int> requestsPerServer;
    bool respond = true;
    Tick serviceDelay = usec(500);

    StampWorld()
    {
        for (int i = 0; i < 4; ++i) {
            net::PortId p = n.addPort();
            servers.push_back(p);
            n.setHandler(p, [this, p](net::Frame &&f) {
                ++requestsPerServer[p];
                if (!respond)
                    return;
                auto *req = f.payload.get<press::ClientRequestBody>();
                net::Frame r;
                r.srcPort = p;
                r.dstPort = req->replyPort;
                r.proto = net::Proto::Client;
                r.kind = press::ClientResponse;
                r.bytes = 8192;
                auto body = s.makePayload<press::ClientResponseBody>();
                body->req = req->req;
                body->sentAt = req->sentAt;
                body->acceptedAt = s.now();
                body->serviceStartAt = s.now() + serviceDelay;
                r.payload = std::move(body);
                n.send(std::move(r));
            });
        }
        for (int i = 0; i < 2; ++i)
            clients.push_back(n.addPort());
    }
};

wl::WorkloadConfig
smallConfig()
{
    wl::WorkloadConfig cfg;
    cfg.requestRate = 500;
    cfg.numFiles = 1000;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------

TEST(LoadProfile, RegistryKnowsTheBuiltins)
{
    for (const char *name :
         {"steady", "sessions", "pareto", "diurnal", "flashcrowd"}) {
        auto p = wl::profileByName(name);
        ASSERT_TRUE(p.has_value()) << name;
        EXPECT_EQ(p->name, name);
    }
    EXPECT_FALSE(wl::profileByName("nosuch").has_value());
    EXPECT_TRUE(wl::profileByName("steady")->isDefault());
    EXPECT_FALSE(wl::profileByName("flashcrowd")->isDefault());
    EXPECT_TRUE(wl::profileByName("sessions")->sessions);
    EXPECT_TRUE(wl::profileByName("pareto")->pareto.enabled);
}

TEST(LoadProfile, FlashCrowdRampHoldAndDecay)
{
    wl::LoadProfileSpec p;
    p.rateScale = 1.0;
    p.flash.at = sec(100);
    p.flash.ramp = sec(10);
    p.flash.hold = sec(30);
    p.flash.peak = 3.0;

    EXPECT_DOUBLE_EQ(wl::rateMultiplierAt(p, sec(50)), 1.0);
    // Halfway up the ramp: 1 + (3-1)/2.
    EXPECT_NEAR(wl::rateMultiplierAt(p, sec(105)), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(wl::rateMultiplierAt(p, sec(120)), 3.0);
    // Halfway down the back ramp.
    EXPECT_NEAR(wl::rateMultiplierAt(p, sec(145)), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(wl::rateMultiplierAt(p, sec(200)), 1.0);
}

TEST(LoadProfile, DiurnalOscillatesAroundBase)
{
    wl::LoadProfileSpec p;
    p.diurnal.period = sec(100);
    p.diurnal.amplitude = 0.5;

    double lo = 10, hi = 0, sum = 0;
    int nsamples = 100;
    for (int i = 0; i < nsamples; ++i) {
        double m = wl::rateMultiplierAt(p, sec(i));
        lo = std::min(lo, m);
        hi = std::max(hi, m);
        sum += m;
    }
    EXPECT_NEAR(lo, 0.5, 0.05);
    EXPECT_NEAR(hi, 1.5, 0.05);
    EXPECT_NEAR(sum / nsamples, 1.0, 0.05);
}

TEST(LoadProfile, ParetoSizesDeterministicHeavyTailedClamped)
{
    wl::ParetoSizes spec;
    spec.enabled = true;

    // A property of the file set: independent of any RNG.
    EXPECT_EQ(wl::paretoFileBytes(spec, 17),
              wl::paretoFileBytes(spec, 17));

    double sum = 0;
    std::uint64_t maxSeen = 0;
    const int n = 20000;
    for (int f = 0; f < n; ++f) {
        std::uint64_t b = wl::paretoFileBytes(spec, f);
        EXPECT_GE(b, 1u);
        EXPECT_LE(b, spec.maxBytes);
        sum += static_cast<double>(b);
        maxSeen = std::max(maxSeen, b);
    }
    // Mean lands near the target (clipping pulls it slightly down).
    EXPECT_NEAR(sum / n, static_cast<double>(spec.meanBytes),
                0.25 * static_cast<double>(spec.meanBytes));
    // Heavy tail: some file is far beyond the mean.
    EXPECT_GT(maxSeen, 10 * spec.meanBytes);

    auto fn = wl::makeFileSizeFn(spec);
    ASSERT_TRUE(fn);
    EXPECT_EQ(fn(99), wl::paretoFileBytes(spec, 99));
    EXPECT_FALSE(wl::makeFileSizeFn(wl::ParetoSizes{}));
}

// ---------------------------------------------------------------------
// Split RNG contract
// ---------------------------------------------------------------------

TEST(SplitRng, SplitStreamDoesNotPerturbTheSharedStream)
{
    Simulation a(99), b(99);

    // b creates and drains a split stream; a never does.
    Rng split = b.splitRng(wl::kLoadgenRngSalt);
    for (int i = 0; i < 1000; ++i)
        (void)split.uniform();

    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.rng().uniform(), b.rng().uniform());
}

TEST(SplitRng, DistinctSaltsGiveDistinctStreams)
{
    Simulation s(99);
    Rng r1 = s.splitRng(1), r2 = s.splitRng(2), r1b = s.splitRng(1);
    bool anyDiff = false;
    for (int i = 0; i < 32; ++i) {
        std::uint64_t a = r1.uniformInt(0, 1u << 30);
        std::uint64_t b = r2.uniformInt(0, 1u << 30);
        EXPECT_EQ(a, r1b.uniformInt(0, 1u << 30)); // same salt reproduces
        anyDiff = anyDiff || a != b;
    }
    EXPECT_TRUE(anyDiff);
}

// ---------------------------------------------------------------------
// Latency stamp decoding
// ---------------------------------------------------------------------

TEST(RecordResponseLatency, SplitsStagesFromStamps)
{
    StageLatencyTimeline tl;
    press::ClientResponseBody body;
    body.sentAt = msec(100);
    body.acceptedAt = msec(102);
    body.serviceStartAt = msec(110);
    Tick now = msec(125);

    wl::recordResponseLatency(tl, now, body);
    EXPECT_EQ(tl.cumulative(LatencyStage::Total).count(), 1u);
    EXPECT_DOUBLE_EQ(tl.cumulative(LatencyStage::Total).quantile(1.0),
                     static_cast<double>(msec(25)));
    EXPECT_DOUBLE_EQ(
        tl.cumulative(LatencyStage::Connect).quantile(1.0),
        static_cast<double>(msec(2)));
    EXPECT_DOUBLE_EQ(tl.cumulative(LatencyStage::Queue).quantile(1.0),
                     static_cast<double>(msec(8)));
    EXPECT_DOUBLE_EQ(
        tl.cumulative(LatencyStage::Service).quantile(1.0),
        static_cast<double>(msec(15)));
}

TEST(RecordResponseLatency, UnstampedResponsesRecordNothing)
{
    StageLatencyTimeline tl;
    press::ClientResponseBody body; // sentAt == 0
    wl::recordResponseLatency(tl, msec(50), body);
    EXPECT_EQ(tl.cumulative(LatencyStage::Total).count(), 0u);
}

TEST(RecordResponseLatency, ConnectSkippedOnReusedConnections)
{
    StageLatencyTimeline tl;
    press::ClientResponseBody body;
    body.sentAt = msec(10);
    body.acceptedAt = msec(11);
    wl::recordResponseLatency(tl, msec(20), body,
                              /*record_connect=*/false);
    EXPECT_EQ(tl.cumulative(LatencyStage::Total).count(), 1u);
    EXPECT_EQ(tl.cumulative(LatencyStage::Connect).count(), 0u);
}

// ---------------------------------------------------------------------
// ClientFarm latency recording
// ---------------------------------------------------------------------

TEST(ClientFarmLatency, EveryServedRequestLandsInTheTimeline)
{
    StampWorld w;
    wl::ClientFarm farm(w.s, w.n, w.servers, w.clients, smallConfig());
    farm.start();
    w.s.runUntil(sec(10));
    farm.stop();
    w.s.runUntil(sec(12));

    EXPECT_GT(farm.totalServed(), 0u);
    const auto &tl = farm.timeline();
    EXPECT_EQ(tl.cumulative(LatencyStage::Total).count(),
              farm.totalServed());
    EXPECT_EQ(tl.cumulative(LatencyStage::Connect).count(),
              farm.totalServed());
}

// ---------------------------------------------------------------------
// SessionFarm
// ---------------------------------------------------------------------

TEST(SessionFarm, ServesAndChurnsSessions)
{
    StampWorld w;
    auto profile = *wl::profileByName("sessions");
    wl::SessionFarm farm(w.s, w.n, w.servers, w.clients, smallConfig(),
                         profile);
    EXPECT_GT(farm.sessionCount(), 0u);
    farm.start();
    w.s.runUntil(sec(30));
    farm.stop();
    w.s.runUntil(sec(32));

    EXPECT_GT(farm.totalServed(), 0u);
    EXPECT_EQ(farm.totalServed(), farm.totalOffered());
    EXPECT_EQ(farm.totalFailed(), 0u);
    EXPECT_GT(farm.completedSessions(), 0u);

    // Each request records a total; only connection-opening requests
    // record a connect.
    const auto &tl = farm.timeline();
    EXPECT_EQ(tl.cumulative(LatencyStage::Total).count(),
              farm.totalServed());
    EXPECT_GT(tl.cumulative(LatencyStage::Connect).count(), 0u);
    EXPECT_LT(tl.cumulative(LatencyStage::Connect).count(),
              tl.cumulative(LatencyStage::Total).count());
}

TEST(SessionFarm, DeterministicForSameSeed)
{
    auto run = [] {
        StampWorld w;
        auto profile = *wl::profileByName("sessions");
        wl::SessionFarm farm(w.s, w.n, w.servers, w.clients,
                             smallConfig(), profile);
        farm.start();
        w.s.runUntil(sec(20));
        farm.stop();
        return std::tuple(farm.totalServed(), farm.totalOffered(),
                          farm.completedSessions());
    };
    EXPECT_EQ(run(), run());
}

TEST(SessionFarm, TimeoutsAbandonTheSessionAndReconnect)
{
    StampWorld w;
    w.respond = false;
    auto profile = *wl::profileByName("sessions");
    wl::WorkloadConfig cfg = smallConfig();
    cfg.requestRate = 50;
    wl::SessionFarm farm(w.s, w.n, w.servers, w.clients, cfg, profile);
    farm.start();
    w.s.runUntil(sec(30));
    farm.stop();
    w.s.runUntil(sec(40));

    EXPECT_GT(farm.totalFailed(), 0u);
    EXPECT_EQ(farm.totalServed(), 0u);
    // Abandoned sessions count as completed: the seat was re-used.
    EXPECT_GT(farm.completedSessions(), 0u);
}

// ---------------------------------------------------------------------
// makeLoadGenerator
// ---------------------------------------------------------------------

TEST(MakeLoadGenerator, PicksTheGeneratorForTheProfile)
{
    StampWorld w;
    auto open = wl::makeLoadGenerator(w.s, w.n, w.servers, w.clients,
                                      smallConfig(),
                                      *wl::profileByName("steady"));
    auto sess = wl::makeLoadGenerator(w.s, w.n, w.servers, w.clients,
                                      smallConfig(),
                                      *wl::profileByName("sessions"));
    EXPECT_NE(dynamic_cast<wl::ClientFarm *>(open.get()), nullptr);
    EXPECT_NE(dynamic_cast<wl::SessionFarm *>(sess.get()), nullptr);
}

TEST(MakeLoadGenerator, FlashCrowdRaisesOfferedRateDuringBurst)
{
    StampWorld w;
    auto profile = *wl::profileByName("flashcrowd");
    auto gen = wl::makeLoadGenerator(w.s, w.n, w.servers, w.clients,
                                     smallConfig(), profile);
    gen->start();
    w.s.runUntil(sec(80));
    gen->stop();

    // Base (scaled) rate before the burst at t=50s; peak inside it.
    double base = gen->offered().meanRate(sec(10), sec(40));
    double burst = gen->offered().meanRate(sec(62), sec(78));
    EXPECT_GT(burst, base * 1.5);
}
