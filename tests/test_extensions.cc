/**
 * @file
 * Tests for the two paper-suggested extensions: the robust membership
 * protocol (Section 6.2: repair incorrect splintering) and static
 * cache pinning (Section 7: pre-allocate all resources).
 */

#include <gtest/gtest.h>

#include "faults/injector.hh"
#include "press/cluster.hh"
#include "sim/simulation.hh"
#include "loadgen/client_farm.hh"

using namespace performa;
using namespace performa::sim;

namespace {

struct Deployment
{
    Simulation s{17};
    press::Cluster cluster;
    wl::ClientFarm farm;
    fault::Injector injector;

    Deployment(press::Version v, bool robust, bool static_pin)
        : cluster(s, makeCfg(v, robust, static_pin)),
          farm(s, cluster.clientNet(), cluster.serverClientPorts(),
               cluster.clientMachinePorts(), makeWl()),
          injector(s, cluster)
    {
        cluster.startAll();
        s.runUntil(sec(1));
        // Leave a cold tail of the file set so cache inserts keep
        // happening during the run (pin pressure needs inserts).
        cluster.prewarm(20000);
        farm.start();
    }

    static press::ClusterConfig
    makeCfg(press::Version v, bool robust, bool static_pin)
    {
        press::ClusterConfig cfg;
        cfg.press.version = v;
        cfg.press.robustMembership = robust;
        cfg.press.staticPinning = static_pin;
        return cfg;
    }

    static wl::WorkloadConfig
    makeWl()
    {
        wl::WorkloadConfig cfg;
        cfg.requestRate = 1500;
        cfg.numFiles = 26000;
        return cfg;
    }

    void
    injectLinkFault(Tick at, Tick duration)
    {
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::LinkDown;
        spec.target = 3;
        spec.injectAt = at;
        spec.duration = duration;
        injector.schedule(spec);
    }
};

} // namespace

TEST(RobustMembership, RemergesViaClusterAfterLinkFault)
{
    Deployment d(press::Version::ViaPress0, /*robust=*/true,
                 /*static_pin=*/false);
    d.injectLinkFault(sec(5), sec(20));
    d.s.runUntil(sec(10));
    EXPECT_TRUE(d.cluster.splintered()); // fault still active
    // Link back at 25 s; the next probe (10 s period) re-merges.
    d.s.runUntil(sec(45));
    EXPECT_FALSE(d.cluster.splintered());
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(d.cluster.server(i).members().size(), 4u);
}

TEST(RobustMembership, PaperFaithfulClusterStaysSplintered)
{
    Deployment d(press::Version::ViaPress0, /*robust=*/false,
                 /*static_pin=*/false);
    d.injectLinkFault(sec(5), sec(20));
    d.s.runUntil(sec(60));
    EXPECT_TRUE(d.cluster.splintered()); // no re-merge, ever
}

TEST(RobustMembership, RemergesHeartbeatFalsePositive)
{
    Deployment d(press::Version::TcpPressHb, /*robust=*/true,
                 /*static_pin=*/false);
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::AppHang;
    spec.target = 3;
    spec.injectAt = sec(5);
    spec.duration = sec(25);
    d.injector.schedule(spec);
    d.s.runUntil(sec(25)); // HB false positive splinters
    EXPECT_EQ(d.cluster.server(0).members().size(), 3u);
    d.s.runUntil(sec(70)); // hang over at 30 s; probes re-merge
    EXPECT_FALSE(d.cluster.splintered());
}

TEST(RobustMembership, HealsTcpRejoinRace)
{
    Deployment d(press::Version::TcpPress, /*robust=*/true,
                 /*static_pin=*/false);
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::NodeCrash;
    spec.target = 3;
    spec.injectAt = sec(5);
    spec.duration = sec(120);
    d.injector.schedule(spec);
    // Rejoin race: the restarted node gives up around +20 s, peers
    // only exclude it on the first post-reboot retransmission; the
    // probe ticks then reconnect everyone.
    d.s.runUntil(sec(260));
    EXPECT_FALSE(d.cluster.splintered());
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(d.cluster.server(i).members().size(), 4u);
}

TEST(StaticPinning, CacheUnaffectedByPinExhaustion)
{
    Deployment dynamic(press::Version::ViaPress5, false, false);
    Deployment static_pin(press::Version::ViaPress5, false, true);

    for (Deployment *d : {&dynamic, &static_pin}) {
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::PinExhaustion;
        spec.target = 3;
        spec.injectAt = sec(5);
        spec.duration = sec(30);
        spec.pinLimitBytes = 32ull << 20;
        d->injector.schedule(spec);
    }
    std::size_t before_dyn = dynamic.cluster.server(3).cachedFiles();
    std::size_t before_sta = static_pin.cluster.server(3).cachedFiles();
    dynamic.s.runUntil(sec(30));
    static_pin.s.runUntil(sec(30));

    // The per-file pinning cache shed entries; the pre-pinned cache
    // did not.
    EXPECT_LT(dynamic.cluster.server(3).cachedFiles(), before_dyn);
    EXPECT_GE(static_pin.cluster.server(3).cachedFiles(), before_sta);
}

TEST(StaticPinning, ServesNormally)
{
    Deployment d(press::Version::ViaPress5, false, true);
    d.s.runUntil(sec(20));
    double tput = d.farm.served().meanRate(sec(5), sec(20));
    EXPECT_NEAR(tput, 1500, 100);
}

TEST(StaticPinning, PinsWholeCacheRegionUpFront)
{
    Deployment d(press::Version::ViaPress5, false, true);
    // 128 MB cache + communication buffers, on every node.
    EXPECT_GE(d.cluster.node(3).pins().pinned(), 128ull << 20);
}
