/**
 * @file
 * Unit and property tests for the LRU file cache, including the
 * dynamic-pinning behaviour that exposes VIA-PRESS-5 to the
 * pin-exhaustion fault.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "press/cache.hh"

using namespace performa;
using press::FileCache;

TEST(FileCache, InsertAndContains)
{
    FileCache c(4 * 100, 100); // 4 files
    EXPECT_TRUE(c.insert(1, nullptr));
    EXPECT_TRUE(c.contains(1));
    EXPECT_FALSE(c.contains(2));
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c.capacityFiles(), 4u);
}

TEST(FileCache, EvictsLeastRecentlyUsed)
{
    FileCache c(3 * 100, 100);
    std::vector<sim::FileId> evicted;
    auto cb = [&](sim::FileId f) { evicted.push_back(f); };
    c.insert(1, cb);
    c.insert(2, cb);
    c.insert(3, cb);
    c.insert(4, cb); // evicts 1
    EXPECT_EQ(evicted, (std::vector<sim::FileId>{1}));
    EXPECT_FALSE(c.contains(1));
    EXPECT_TRUE(c.contains(4));
}

TEST(FileCache, TouchProtectsFromEviction)
{
    FileCache c(3 * 100, 100);
    std::vector<sim::FileId> evicted;
    auto cb = [&](sim::FileId f) { evicted.push_back(f); };
    c.insert(1, cb);
    c.insert(2, cb);
    c.insert(3, cb);
    c.touch(1); // 2 is now LRU
    c.insert(4, cb);
    EXPECT_EQ(evicted, (std::vector<sim::FileId>{2}));
    EXPECT_TRUE(c.contains(1));
}

TEST(FileCache, ReinsertTouches)
{
    FileCache c(2 * 100, 100);
    c.insert(1, nullptr);
    c.insert(2, nullptr);
    EXPECT_TRUE(c.insert(1, nullptr)); // bumps 1
    std::vector<sim::FileId> evicted;
    c.insert(3, [&](sim::FileId f) { evicted.push_back(f); });
    EXPECT_EQ(evicted, (std::vector<sim::FileId>{2}));
}

TEST(FileCache, PinHooksGateInsertion)
{
    std::uint64_t pinned = 0;
    const std::uint64_t limit = 250;
    FileCache c(10 * 100, 100);
    c.setPinHooks(
        [&](std::uint64_t b) {
            if (pinned + b > limit)
                return false;
            pinned += b;
            return true;
        },
        [&](std::uint64_t b) { pinned -= b; });

    EXPECT_TRUE(c.insert(1, nullptr));
    EXPECT_TRUE(c.insert(2, nullptr));
    // Third pin would exceed 250: the cache sheds LRU file 1 first.
    std::vector<sim::FileId> evicted;
    EXPECT_TRUE(c.insert(3, [&](sim::FileId f) { evicted.push_back(f); }));
    EXPECT_EQ(evicted, (std::vector<sim::FileId>{1}));
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(pinned, 200u);
}

TEST(FileCache, PinImpossibleReturnsFalse)
{
    FileCache c(10 * 100, 100);
    c.setPinHooks([](std::uint64_t) { return false; },
                  [](std::uint64_t) {});
    EXPECT_FALSE(c.insert(1, nullptr));
    EXPECT_EQ(c.size(), 0u);
}

TEST(FileCache, ClearUnpinsEverything)
{
    std::uint64_t pinned = 0;
    FileCache c(10 * 100, 100);
    c.setPinHooks(
        [&](std::uint64_t b) {
            pinned += b;
            return true;
        },
        [&](std::uint64_t b) { pinned -= b; });
    c.insert(1, nullptr);
    c.insert(2, nullptr);
    EXPECT_EQ(pinned, 200u);
    c.clear();
    EXPECT_EQ(pinned, 0u);
    EXPECT_EQ(c.size(), 0u);
}

TEST(FileCache, ZeroCapacityRejectsEverything)
{
    FileCache c(0, 100);
    EXPECT_FALSE(c.insert(1, nullptr));
}

TEST(FileCache, FilesIteratesMruFirst)
{
    FileCache c(3 * 100, 100);
    c.insert(1, nullptr);
    c.insert(2, nullptr);
    c.touch(1);
    std::vector<sim::FileId> order(c.files().begin(), c.files().end());
    EXPECT_EQ(order, (std::vector<sim::FileId>{1, 2}));
}

/** Property sweep: size never exceeds capacity for any access mix. */
class CacheCapacitySweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(CacheCapacitySweep, SizeBounded)
{
    std::size_t cap = GetParam();
    FileCache c(cap * 10, 10);
    std::mt19937_64 rng(7);
    for (int i = 0; i < 2000; ++i) {
        c.insert(static_cast<sim::FileId>(rng() % 200), nullptr);
        ASSERT_LE(c.size(), cap);
        if (i % 3 == 0)
            c.touch(static_cast<sim::FileId>(rng() % 200));
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacitySweep,
                         ::testing::Values(1, 7, 64, 199, 400));
