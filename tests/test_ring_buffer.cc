/**
 * @file
 * Unit tests for sim::RingBuffer: FIFO order across wrap-around,
 * growth, indexing, move-only elements, and destruction accounting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "sim/ring_buffer.hh"

using performa::sim::RingBuffer;

TEST(RingBuffer, PushPopIsFifo)
{
    RingBuffer<int> rb;
    EXPECT_TRUE(rb.empty());
    for (int i = 0; i < 5; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.size(), 5u);
    EXPECT_EQ(rb.front(), 0);
    EXPECT_EQ(rb.back(), 4);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(rb.front(), i);
        rb.pop_front();
    }
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, SteadyStreamWrapsWithoutGrowing)
{
    RingBuffer<int> rb;
    rb.reserve(8);
    std::size_t cap = rb.capacity();
    // A push/pop stream many times the capacity must wrap in place.
    int next_out = 0;
    for (int i = 0; i < 1000; ++i) {
        rb.push_back(i);
        if (rb.size() == 4) {
            EXPECT_EQ(rb.front(), next_out++);
            rb.pop_front();
        }
    }
    EXPECT_EQ(rb.capacity(), cap);
    while (!rb.empty()) {
        EXPECT_EQ(rb.front(), next_out++);
        rb.pop_front();
    }
    EXPECT_EQ(next_out, 1000);
}

TEST(RingBuffer, GrowthPreservesOrderAcrossTheSeam)
{
    RingBuffer<int> rb;
    rb.reserve(8);
    // Rotate so the live window straddles the physical end, then force
    // a relocation and check nothing got reordered.
    for (int i = 0; i < 6; ++i)
        rb.push_back(-1);
    for (int i = 0; i < 6; ++i)
        rb.pop_front();
    for (int i = 0; i < 20; ++i)
        rb.push_back(i);
    EXPECT_GE(rb.capacity(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rb[static_cast<std::size_t>(i)], i);
}

TEST(RingBuffer, ReserveRoundsUpAndNeverShrinks)
{
    RingBuffer<int> rb;
    rb.reserve(100);
    std::size_t cap = rb.capacity();
    EXPECT_GE(cap, 100u);
    EXPECT_EQ(cap & (cap - 1), 0u); // power of two
    rb.reserve(10);
    EXPECT_EQ(rb.capacity(), cap);
}

TEST(RingBuffer, HoldsMoveOnlyElements)
{
    RingBuffer<std::unique_ptr<int>> rb;
    for (int i = 0; i < 12; ++i)
        rb.push_back(std::make_unique<int>(i));
    for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(rb.front());
        EXPECT_EQ(*rb.front(), i);
        rb.pop_front();
    }
}

TEST(RingBuffer, ClearAndDestructorReleaseElements)
{
    auto counter = std::make_shared<int>(0);
    struct Probe
    {
        std::shared_ptr<int> c;
        ~Probe()
        {
            if (c)
                ++*c;
        }
        Probe(std::shared_ptr<int> c) : c(std::move(c)) {}
        Probe(Probe &&) = default;
    };
    {
        RingBuffer<Probe> rb;
        for (int i = 0; i < 3; ++i)
            rb.push_back(Probe(counter));
        rb.clear();
        EXPECT_EQ(*counter, 3);
        EXPECT_TRUE(rb.empty());
        for (int i = 0; i < 2; ++i)
            rb.push_back(Probe(counter));
    }
    EXPECT_EQ(*counter, 5); // destructor drains what clear() didn't
}

TEST(RingBuffer, MoveTransfersOwnership)
{
    RingBuffer<int> a;
    a.push_back(7);
    a.push_back(8);
    RingBuffer<int> b = std::move(a);
    EXPECT_TRUE(a.empty());
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b.front(), 7);
    a = std::move(b);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a.back(), 8);
}
