/**
 * @file
 * Tests for the campaign subsystem: thread pool, runner exception
 * capture, deterministic per-job seeding, and the phase-1 grid
 * campaign's worker-count-independent results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <stdexcept>

#include "campaign/phase1.hh"
#include "campaign/runner.hh"
#include "campaign/seed.hh"
#include "campaign/thread_pool.hh"
#include "exp/stages.hh"

using namespace performa;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

/** A deterministic fake behaviour derived purely from the job seed. */
model::MeasuredBehavior
fakeBehavior(std::uint64_t seed)
{
    model::MeasuredBehavior mb;
    std::uint64_t h = seed;
    auto next = [&h] {
        h = campaign::mix64(h);
        return double(h % 100000) / 7.0;
    };
    mb.normalTput = next();
    mb.detected = (campaign::mix64(h) & 1) != 0;
    mb.healed = (campaign::mix64(h) & 2) != 0;
    for (int s = 0; s < model::numStages; ++s) {
        mb.tput[static_cast<std::size_t>(s)] = next();
        mb.dur[static_cast<std::size_t>(s)] = next();
    }
    return mb;
}

/** Full default grid as ensurePhase1 builds it. */
std::vector<exp::BehaviorDb::Key>
fullGrid()
{
    std::vector<exp::BehaviorDb::Key> grid;
    for (press::Version v : press::allVersions)
        for (fault::FaultKind k : fault::allFaultKinds)
            grid.push_back({v, k});
    return grid;
}

} // namespace

TEST(ThreadPool, RunsEverySubmittedTask)
{
    campaign::ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&ran] { ++ran; });
    pool.drain();
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, CancelDropsQueuedTasks)
{
    campaign::ThreadPool pool(1);
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i)
        pool.submit([&ran] { ++ran; });
    pool.cancel();
    pool.drain();
    EXPECT_TRUE(pool.cancelled());
    EXPECT_LE(ran.load(), 32);
    int after = ran.load();
    pool.submit([&ran] { ++ran; }); // dropped: pool is cancelled
    pool.drain();
    EXPECT_EQ(ran.load(), after);
}

TEST(Runner, ThrowingJobIsReportedOthersComplete)
{
    std::atomic<int> ran{0};
    std::vector<campaign::Job> jobs;
    for (int i = 0; i < 8; ++i) {
        campaign::Job j;
        j.label = "job" + std::to_string(i);
        j.work = [i, &ran](const campaign::Job &) {
            if (i == 3)
                throw std::runtime_error("deliberate failure");
            ++ran;
        };
        jobs.push_back(std::move(j));
    }
    campaign::RunnerConfig rc;
    rc.workers = 4;
    campaign::CampaignReport rep = campaign::runCampaign(jobs, rc);
    EXPECT_EQ(rep.failed, 1u);
    EXPECT_EQ(rep.skipped, 0u);
    EXPECT_EQ(ran.load(), 7);
    EXPECT_FALSE(rep.jobs[3].ok);
    EXPECT_EQ(rep.jobs[3].error, "deliberate failure");
    for (int i = 0; i < 8; ++i)
        if (i != 3)
            EXPECT_TRUE(rep.jobs[static_cast<std::size_t>(i)].ok);
}

TEST(Runner, CancelOnFailureSkipsRemainingJobs)
{
    std::vector<campaign::Job> jobs;
    for (int i = 0; i < 4; ++i) {
        campaign::Job j;
        j.label = "job" + std::to_string(i);
        j.work = [i](const campaign::Job &) {
            if (i == 0)
                throw std::runtime_error("fail fast");
        };
        jobs.push_back(std::move(j));
    }
    campaign::RunnerConfig rc;
    rc.workers = 1; // deterministic: job0 fails before job1 starts
    rc.cancelOnFailure = true;
    campaign::CampaignReport rep = campaign::runCampaign(jobs, rc);
    EXPECT_EQ(rep.failed, 1u);
    EXPECT_EQ(rep.skipped, 3u);
    EXPECT_FALSE(rep.allOk());
}

TEST(Runner, ProgressStreamsDoneTotalAndLabels)
{
    std::vector<campaign::Job> jobs(5);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].label = "j" + std::to_string(i);
        jobs[i].work = [](const campaign::Job &) {};
    }
    std::vector<std::size_t> dones;
    std::vector<std::string> labels;
    campaign::RunnerConfig rc;
    rc.workers = 2;
    rc.progress = [&](const campaign::Progress &p) {
        dones.push_back(p.done);
        labels.push_back(p.last->label);
        EXPECT_EQ(p.total, 5u);
    };
    campaign::runCampaign(jobs, rc);
    ASSERT_EQ(dones.size(), 5u);
    // Calls are serialized: done counts 1..5 in order.
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(dones[i], i + 1);
    std::sort(labels.begin(), labels.end());
    EXPECT_EQ(labels, (std::vector<std::string>{"j0", "j1", "j2",
                                                "j3", "j4"}));
}

TEST(Seeds, PureFunctionOfIdentityNotOrder)
{
    auto grid = fullGrid();
    // Canonical seeds, derived in grid order. Since scheme v2 the
    // fault kind does not participate: every fault of a combination
    // shares the seed (and thus the warm-up phase).
    std::map<exp::BehaviorDb::Key, std::uint64_t> canonical;
    for (auto [v, k] : grid)
        canonical[{v, k}] = campaign::phase1Seed(42, v);

    // Re-derive after shuffling the evaluation order: identical.
    std::mt19937 shuffler(7);
    std::shuffle(grid.begin(), grid.end(), shuffler);
    for (auto [v, k] : grid)
        EXPECT_EQ(campaign::phase1Seed(42, v), (canonical[{v, k}]));

    // Distinct seeds per version; identical across a version's faults.
    std::set<std::uint64_t> uniq;
    for (auto &[key, seed] : canonical)
        uniq.insert(seed);
    EXPECT_EQ(uniq.size(), std::size(press::allVersions));

    // Campaign seed, cluster size and load scale all separate seeds.
    press::Version v0 = grid.front().first;
    std::uint64_t base = campaign::phase1Seed(42, v0);
    EXPECT_NE(base, campaign::phase1Seed(43, v0));
    EXPECT_NE(base, campaign::phase1Seed(42, v0, 8));
    EXPECT_NE(base, campaign::phase1Seed(42, v0, 4, 1.25));
    // A named non-default profile separates too; "steady" doesn't.
    EXPECT_NE(base, campaign::phase1Seed(42, v0, 4, 1.0, "flashcrowd"));
    EXPECT_EQ(base, campaign::phase1Seed(42, v0, 4, 1.0, "steady"));
}

TEST(Seeds, StableAcrossShuffledSubmissionOrder)
{
    // Jobs record the seed they actually ran with; shuffling the
    // submission order must not change any job's seed.
    auto grid = fullGrid();
    std::mt19937 shuffler(11);
    std::shuffle(grid.begin(), grid.end(), shuffler);

    std::mutex mu;
    std::map<std::uint64_t, std::uint64_t> seenByTag;
    std::vector<campaign::Job> jobs;
    for (auto [v, k] : grid) {
        campaign::Job j;
        j.label = "x";
        j.seed = campaign::phase1Seed(42, v);
        j.tag = campaign::phase1Tag(v, k);
        j.work = [&mu, &seenByTag](const campaign::Job &self) {
            std::lock_guard<std::mutex> lk(mu);
            seenByTag[self.tag] = self.seed;
        };
        jobs.push_back(std::move(j));
    }
    campaign::RunnerConfig rc;
    rc.workers = 4;
    campaign::runCampaign(jobs, rc);
    ASSERT_EQ(seenByTag.size(), grid.size());
    for (auto &[tag, seed] : seenByTag) {
        auto [v, k] = campaign::phase1TagKey(tag);
        (void)k; // seeds are per-version since scheme v2
        EXPECT_EQ(seed, campaign::phase1Seed(42, v));
    }
}

TEST(Phase1, ParallelRunIsByteIdenticalToSerialRun)
{
    auto runWith = [](unsigned workers, const std::string &path) {
        std::remove(path.c_str());
        exp::BehaviorDb db;
        campaign::Phase1Options opts;
        opts.workers = workers;
        opts.measureFn = [](const exp::ExperimentConfig &cfg) {
            return fakeBehavior(cfg.seed);
        };
        campaign::Phase1Result res =
            campaign::ensurePhase1(db, path, opts);
        EXPECT_EQ(res.failed, 0u);
        EXPECT_EQ(res.measured, fullGrid().size());
        return db;
    };
    std::string p1 = tmpPath("campaign_serial.csv");
    std::string p4 = tmpPath("campaign_parallel.csv");
    runWith(1, p1);
    runWith(4, p4);
    std::string serial = slurp(p1);
    std::string parallel = slurp(p4);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel); // byte-identical cache
    std::remove(p1.c_str());
    std::remove(p4.c_str());
}

TEST(Phase1, FailedJobReportedWhileRestOfCampaignCompletes)
{
    exp::BehaviorDb db;
    campaign::Phase1Options opts;
    opts.workers = 4;
    press::Version badV = press::Version::ViaPress3;
    fault::FaultKind badK = fault::FaultKind::NodeCrash;
    opts.measureFn = [badV, badK](const exp::ExperimentConfig &cfg) {
        // The seed no longer identifies the grid point (it is shared
        // across a version's faults), so match on the config itself.
        if (cfg.cluster.press.version == badV &&
            cfg.fault && cfg.fault->kind == badK)
            throw std::runtime_error("simulated job crash");
        return fakeBehavior(cfg.seed);
    };
    campaign::Phase1Result res = campaign::ensurePhase1(db, "", opts);
    EXPECT_EQ(res.failed, 1u);
    EXPECT_FALSE(res.ok());
    ASSERT_EQ(res.failures.size(), 1u);
    EXPECT_EQ(res.failures[0].error, "simulated job crash");
    EXPECT_EQ(res.failures[0].label,
              std::string(press::versionName(badV)) + " x " +
                  fault::faultName(badK));
    EXPECT_EQ(res.measured, fullGrid().size() - 1);
    EXPECT_FALSE(db.has(badV, badK));
    for (auto [v, k] : fullGrid())
        if (!(v == badV && k == badK))
            EXPECT_TRUE(db.has(v, k));
}

TEST(Phase1, SecondRunUsesCacheAndMeasuresNothing)
{
    std::string path = tmpPath("campaign_cache.csv");
    std::remove(path.c_str());
    campaign::Phase1Options opts;
    opts.measureFn = [](const exp::ExperimentConfig &cfg) {
        return fakeBehavior(cfg.seed);
    };
    exp::BehaviorDb first;
    campaign::Phase1Result r1 =
        campaign::ensurePhase1(first, path, opts);
    EXPECT_EQ(r1.measured, fullGrid().size());

    opts.measureFn = [](const exp::ExperimentConfig &) {
        throw std::runtime_error("must not re-measure");
        return model::MeasuredBehavior{};
    };
    exp::BehaviorDb second;
    campaign::Phase1Result r2 =
        campaign::ensurePhase1(second, path, opts);
    EXPECT_EQ(r2.measured, 0u);
    EXPECT_EQ(r2.failed, 0u);
    EXPECT_EQ(r2.cached, fullGrid().size());
    EXPECT_EQ(second.size(), first.size());
    // No temp file left behind by the atomic save.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST(Phase1, CacheWithDifferentFingerprintIsRejectedAndRemeasured)
{
    // A cache written for one grid geometry must not satisfy a
    // campaign over another: the fingerprint header names the
    // seed-scheme version and the (nodes, scale, profile, slo) axes,
    // and a mismatch re-measures everything.
    std::string path = tmpPath("campaign_fingerprint.csv");
    std::remove(path.c_str());
    campaign::Phase1Options opts;
    opts.measureFn = [](const exp::ExperimentConfig &cfg) {
        return fakeBehavior(cfg.seed);
    };
    exp::BehaviorDb seeded;
    campaign::ensurePhase1(seeded, path, opts);
    EXPECT_NE(slurp(path).find("# fingerprint: "), std::string::npos);

    campaign::Phase1Options scaled = opts;
    scaled.loadScale = 2.0;
    ASSERT_NE(campaign::phase1Fingerprint(scaled),
              campaign::phase1Fingerprint(opts));
    exp::BehaviorDb db;
    campaign::Phase1Result res =
        campaign::ensurePhase1(db, path, scaled);
    EXPECT_EQ(res.cached, 0u);
    EXPECT_EQ(res.measured, fullGrid().size());

    // The re-save stamped the new fingerprint: a second scaled run is
    // now fully cached.
    exp::BehaviorDb again;
    campaign::Phase1Result r2 =
        campaign::ensurePhase1(again, path, scaled);
    EXPECT_EQ(r2.cached, fullGrid().size());
    EXPECT_EQ(r2.measured, 0u);
    std::remove(path.c_str());
}

TEST(Phase1, LegacyCacheWithoutFingerprintIsRejected)
{
    // Pre-fingerprint cache files (no header comment) predate seed
    // scheme v2 and must be re-measured, not trusted.
    std::string path = tmpPath("campaign_legacy.csv");
    std::remove(path.c_str());
    campaign::Phase1Options opts;
    opts.measureFn = [](const exp::ExperimentConfig &cfg) {
        return fakeBehavior(cfg.seed);
    };
    exp::BehaviorDb seeded;
    campaign::ensurePhase1(seeded, path, opts);

    // Strip the fingerprint line, leaving a valid legacy-format CSV.
    std::string body = slurp(path);
    std::size_t eol = body.find('\n');
    ASSERT_NE(eol, std::string::npos);
    ASSERT_EQ(body.rfind("# fingerprint: ", 0), 0u);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << body.substr(eol + 1);
    }

    exp::BehaviorDb db;
    campaign::Phase1Result res = campaign::ensurePhase1(db, path, opts);
    EXPECT_EQ(res.cached, 0u);
    EXPECT_EQ(res.measured, fullGrid().size());
    std::remove(path.c_str());
}

TEST(Phase1, EnsureAllRoutesThroughTheCampaign)
{
    // Pre-populate the cache via a fake campaign, then check the
    // legacy BehaviorDb::ensureAll entry point loads it and reports
    // every pair as cached (measuring nothing).
    std::string path = tmpPath("campaign_ensureall.csv");
    std::remove(path.c_str());
    campaign::Phase1Options opts;
    opts.measureFn = [](const exp::ExperimentConfig &cfg) {
        return fakeBehavior(cfg.seed);
    };
    exp::BehaviorDb seeded;
    campaign::ensurePhase1(seeded, path, opts);

    exp::BehaviorDb db;
    std::size_t cachedCalls = 0, measuredCalls = 0;
    db.ensureAll(path, [&](press::Version, fault::FaultKind,
                           bool cached) {
        (cached ? cachedCalls : measuredCalls)++;
    });
    EXPECT_EQ(cachedCalls, fullGrid().size());
    EXPECT_EQ(measuredCalls, 0u);
    EXPECT_EQ(db.size(), fullGrid().size());
    std::remove(path.c_str());
}

TEST(Phase1, ConcurrentRealSimulationsAreRaceFreeAndDeterministic)
{
    // Real discrete-event simulations on 4 workers: the guard test
    // for shared mutable state across concurrent Simulation
    // instances (run under TSan in CI). Small grid + light load to
    // keep it fast; results must match a serial run byte-for-byte.
    auto runWith = [](unsigned workers, const std::string &path) {
        std::remove(path.c_str());
        exp::BehaviorDb db;
        campaign::Phase1Options opts;
        opts.workers = workers;
        opts.versions = {press::Version::TcpPress,
                         press::Version::ViaPress0};
        opts.faults = {fault::FaultKind::LinkDown,
                       fault::FaultKind::AppCrash};
        opts.measureFn = [](const exp::ExperimentConfig &cfg) {
            exp::ExperimentConfig fast = cfg;
            fast.workload.requestRate = 900;
            fast.workload.numFiles = 20000;
            fast.duration = fast.injectAt + sim::sec(45);
            exp::ExperimentResult res = exp::runExperiment(fast);
            return exp::extractBehavior(res, *fast.fault);
        };
        campaign::Phase1Result res =
            campaign::ensurePhase1(db, path, opts);
        EXPECT_EQ(res.failed, 0u);
        EXPECT_EQ(res.measured, 4u);
    };
    std::string p1 = tmpPath("campaign_real_serial.csv");
    std::string p4 = tmpPath("campaign_real_parallel.csv");
    runWith(1, p1);
    runWith(4, p4);
    std::string serial = slurp(p1);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, slurp(p4));
    std::remove(p1.c_str());
    std::remove(p4.c_str());
}
