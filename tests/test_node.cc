/**
 * @file
 * Unit tests for the node lifecycle (crash/reboot/freeze) and the
 * monitor-daemon restart policies.
 */

#include <gtest/gtest.h>

#include "os/node.hh"
#include "sim/simulation.hh"

using namespace performa;
using namespace performa::sim;

namespace {

/** Scripted service recording lifecycle calls. */
struct StubService : osim::Service
{
    int starts = 0, stops = 0, conts = 0, terms = 0;
    bool silentLast = false;
    bool alive_ = false;

    void start() override
    {
        ++starts;
        alive_ = true;
    }
    void sigStop() override { ++stops; }
    void sigCont() override { ++conts; }
    void terminate(bool silent) override
    {
        ++terms;
        silentLast = silent;
        alive_ = false;
    }
    bool alive() const override { return alive_; }
};

struct World
{
    Simulation s{1};
    net::Network intra{s}, client{s};
    net::PortId ip, cp;
    osim::NodeConfig cfg;
    std::unique_ptr<osim::Node> node;
    StubService svc;

    World()
    {
        ip = intra.addPort();
        cp = client.addPort();
        cfg.serviceStartDelay = sec(5);
        cfg.serviceRestartDelay = sec(10);
        node = std::make_unique<osim::Node>(s, 0, intra, ip, client, cp,
                                            cfg);
        node->attachService(&svc);
    }
};

} // namespace

TEST(Node, StartsUp)
{
    World w;
    EXPECT_TRUE(w.node->up());
    EXPECT_EQ(w.node->incarnation(), 1u);
    w.node->startServiceNow();
    EXPECT_EQ(w.svc.starts, 1);
}

TEST(Node, CrashKillsServiceSilentlyAndDropsPorts)
{
    World w;
    w.node->startServiceNow();
    w.node->crash(sec(30));
    EXPECT_FALSE(w.node->up());
    EXPECT_EQ(w.svc.terms, 1);
    EXPECT_TRUE(w.svc.silentLast);
    EXPECT_FALSE(w.intra.portUp(w.ip));
    EXPECT_FALSE(w.client.portUp(w.cp));
}

TEST(Node, RebootRestoresAndRestartsService)
{
    World w;
    w.node->startServiceNow();
    w.node->crash(sec(30));
    w.s.runUntil(sec(31));
    EXPECT_TRUE(w.node->up());
    EXPECT_EQ(w.node->incarnation(), 2u);
    EXPECT_TRUE(w.intra.portUp(w.ip));
    EXPECT_EQ(w.svc.starts, 1); // start delay not elapsed yet
    w.s.runUntil(sec(36));
    EXPECT_EQ(w.svc.starts, 2); // daemon relaunched the process
}

TEST(Node, CrashResetsMemoryManagers)
{
    World w;
    w.node->kernelMem().alloc(1000);
    w.node->pins().pin(1000);
    w.node->crash(sec(10));
    EXPECT_EQ(w.node->kernelMem().used(), 0u);
    EXPECT_EQ(w.node->pins().pinned(), 0u);
}

TEST(Node, FreezeAndUnfreeze)
{
    World w;
    int ran = 0;
    w.node->cpu().exec(usec(10), [&] { ++ran; });
    w.s.runUntil(sec(1));
    EXPECT_EQ(ran, 1);

    w.node->freeze(sec(10));
    EXPECT_TRUE(w.node->frozen());
    w.node->cpu().exec(usec(10), [&] { ++ran; });
    w.s.runUntil(sec(5));
    EXPECT_EQ(ran, 1); // CPU paused
    w.s.runUntil(sec(12));
    EXPECT_TRUE(w.node->up());
    EXPECT_EQ(ran, 2);
}

TEST(Node, FreezeKeepsPortsUp)
{
    World w;
    w.node->freeze(sec(10));
    EXPECT_TRUE(w.intra.portUp(w.ip)); // NIC hardware still alive
}

TEST(Node, KillServiceTriggersDaemonRestart)
{
    World w;
    w.node->startServiceNow();
    w.node->killService();
    EXPECT_EQ(w.svc.terms, 1);
    EXPECT_FALSE(w.svc.silentLast);
    w.s.runUntil(sec(9));
    EXPECT_EQ(w.svc.starts, 1);
    w.s.runUntil(sec(11));
    EXPECT_EQ(w.svc.starts, 2);
}

TEST(Node, FailFastExitRestarts)
{
    World w;
    w.node->startServiceNow();
    w.svc.alive_ = false; // the process exited on its own
    w.node->serviceSelfExited(osim::ExitReason::FailFast);
    w.s.runUntil(sec(11));
    EXPECT_EQ(w.svc.starts, 2);
}

TEST(Node, GaveUpExitWaitsForOperator)
{
    World w;
    w.node->startServiceNow();
    w.svc.alive_ = false;
    w.node->serviceSelfExited(osim::ExitReason::GaveUp);
    w.s.runUntil(sec(60));
    EXPECT_EQ(w.svc.starts, 1); // no automatic restart
    w.node->operatorRestartService();
    EXPECT_EQ(w.svc.starts, 2);
}

TEST(Node, SignalsReachService)
{
    World w;
    w.node->startServiceNow();
    w.node->stopService();
    EXPECT_EQ(w.svc.stops, 1);
    w.node->contService();
    EXPECT_EQ(w.svc.conts, 1);
}

TEST(Node, LifecycleCallbacksFire)
{
    World w;
    int crashes = 0, reboots = 0, freezes = 0, unfreezes = 0;
    w.node->onCrash([&] { ++crashes; });
    w.node->onReboot([&] { ++reboots; });
    w.node->onFreeze([&] { ++freezes; });
    w.node->onUnfreeze([&] { ++unfreezes; });
    w.node->crash(sec(5));
    w.s.runUntil(sec(6));
    w.node->freeze(sec(5));
    w.s.runUntil(sec(20));
    EXPECT_EQ(crashes, 1);
    EXPECT_EQ(reboots, 1);
    EXPECT_EQ(freezes, 1);
    EXPECT_EQ(unfreezes, 1);
}

TEST(Node, DoubleCrashIgnored)
{
    World w;
    w.node->crash(sec(10));
    w.node->crash(sec(10)); // no effect
    w.s.runUntil(sec(11));
    EXPECT_TRUE(w.node->up());
    EXPECT_EQ(w.node->incarnation(), 2u);
}

TEST(Node, CrashWhileFrozenDoesNotLeakCpuPause)
{
    World w;
    w.node->freeze(sec(30)); // unfreeze would be due at t=30
    w.node->crash(sec(10));  // crash while frozen; reboot at t=10
    w.s.runUntil(sec(60));   // past the stale unfreeze event
    EXPECT_TRUE(w.node->up());
    int ran = 0;
    w.node->cpu().exec(usec(10), [&] { ++ran; });
    w.s.runUntil(sec(61));
    EXPECT_EQ(ran, 1) << "CPU still paused after reboot";
}
