/**
 * @file
 * Unit tests for the VIA model: fail-stop connections, credit-based
 * flow control, RDMA error reporting at both endpoints, memory
 * registration/pinning, and immunity to kernel-memory exhaustion.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hh"
#include "os/node.hh"
#include "proto/via.hh"
#include "sim/simulation.hh"

using namespace performa;
using namespace performa::sim;
using proto::AppMessage;
using proto::SendStatus;
using proto::ViaMode;

namespace {

struct Endpoint
{
    std::unique_ptr<osim::Node> node;
    std::unique_ptr<proto::ViaComm> via;
    std::vector<AppMessage> received;
    std::vector<NodeId> broken;
    std::vector<NodeId> connected;
    std::vector<NodeId> connectFailed;
    std::vector<std::string> fatal;
    int sendReady = 0;
    bool autoCredit = true;
};

struct ViaWorld
{
    Simulation s{1};
    net::Network intra{s};
    net::Network client{s};
    std::vector<Endpoint> eps;

    explicit ViaWorld(int n = 2, proto::ViaConfig cfg = {},
                      osim::NodeConfig node_cfg = {})
    {
        std::unordered_map<NodeId, net::PortId> ports;
        std::vector<net::PortId> cports;
        for (int i = 0; i < n; ++i) {
            ports[static_cast<NodeId>(i)] = intra.addPort();
            cports.push_back(client.addPort());
        }
        eps.resize(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            auto id = static_cast<NodeId>(i);
            auto &e = eps[static_cast<std::size_t>(i)];
            e.node = std::make_unique<osim::Node>(
                s, id, intra, ports[id], client,
                cports[static_cast<std::size_t>(i)], node_cfg);
            e.via = std::make_unique<proto::ViaComm>(*e.node, cfg, ports);
            proto::CommCallbacks cbs;
            cbs.onMessage = [&e](NodeId peer, AppMessage &&m) {
                e.received.push_back(std::move(m));
                if (e.autoCredit)
                    e.via->consumed(peer);
            };
            cbs.onPeerBroken = [&e](NodeId p, proto::BreakReason) {
                e.broken.push_back(p);
            };
            cbs.onPeerConnected = [&e](NodeId p) {
                e.connected.push_back(p);
            };
            cbs.onConnectFailed = [&e](NodeId p) {
                e.connectFailed.push_back(p);
            };
            cbs.onSendReady = [&e] { ++e.sendReady; };
            cbs.onFatalError = [&e](const std::string &r) {
                e.fatal.push_back(r);
            };
            e.via->setCallbacks(std::move(cbs));
            e.via->start();
        }
    }

    AppMessage
    msg(std::uint64_t bytes, std::uint32_t type = 1)
    {
        AppMessage m;
        m.type = type;
        m.bytes = bytes;
        return m;
    }
};

} // namespace

TEST(Via, ConnectAndDeliver)
{
    ViaWorld w;
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    EXPECT_TRUE(w.eps[0].via->connected(1));
    EXPECT_TRUE(w.eps[1].via->connected(0));
    w.eps[0].via->send(1, w.msg(4096), {});
    w.s.runUntil(sec(2));
    ASSERT_EQ(w.eps[1].received.size(), 1u);
}

TEST(Via, ConnectRefusedWhenNotListening)
{
    ViaWorld w;
    w.eps[1].via->shutdown();
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(10));
    EXPECT_EQ(w.eps[0].connectFailed.size(), 1u);
}

TEST(Via, PacketLossBreaksConnectionImmediately)
{
    ViaWorld w;
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    w.intra.setLinkUp(1, false);
    w.eps[0].via->send(1, w.msg(1000), {});
    w.s.runUntil(sec(2)); // SAN fail-stop: no retry, instant break
    ASSERT_EQ(w.eps[0].broken.size(), 1u);
    EXPECT_FALSE(w.eps[0].via->connected(1));
}

TEST(Via, BreakNotifyReachesPeerOnGracefulExit)
{
    ViaWorld w;
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    w.eps[0].via->shutdown();
    w.s.runUntil(sec(2));
    ASSERT_EQ(w.eps[1].broken.size(), 1u);
}

TEST(Via, CreditsExhaustThenBlock)
{
    proto::ViaConfig cfg;
    cfg.credits = 4;
    ViaWorld w(2, cfg);
    w.eps[1].autoCredit = false; // receiver never consumes
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    int ok = 0;
    SendStatus st = SendStatus::Ok;
    while (st == SendStatus::Ok && ok < 50) {
        st = w.eps[0].via->send(1, w.msg(512), {});
        if (st == SendStatus::Ok)
            ++ok;
    }
    EXPECT_EQ(ok, 4);
    EXPECT_EQ(st, SendStatus::WouldBlock);
}

TEST(Via, CreditReturnUnblocksSender)
{
    proto::ViaConfig cfg;
    cfg.credits = 2;
    ViaWorld w(2, cfg);
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    for (int i = 0; i < 2; ++i)
        EXPECT_EQ(w.eps[0].via->send(1, w.msg(512), {}), SendStatus::Ok);
    // autoCredit consumes on delivery, returning credits.
    w.s.runUntil(sec(2));
    EXPECT_EQ(w.eps[0].via->send(1, w.msg(512), {}), SendStatus::Ok);
    w.s.runUntil(sec(3));
    EXPECT_EQ(w.eps[1].received.size(), 3u);
}

TEST(Via, SendReadyFiresWhenBlockedSenderGetsCredit)
{
    proto::ViaConfig cfg;
    cfg.credits = 1;
    ViaWorld w(2, cfg);
    w.eps[1].autoCredit = false;
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    EXPECT_EQ(w.eps[0].via->send(1, w.msg(512), {}), SendStatus::Ok);
    EXPECT_EQ(w.eps[0].via->send(1, w.msg(512), {}),
              SendStatus::WouldBlock);
    w.s.runUntil(sec(2));
    w.eps[1].via->consumed(0); // explicit flow-control message
    w.s.runUntil(sec(3));
    EXPECT_EQ(w.eps[0].sendReady, 1);
    EXPECT_EQ(w.eps[0].via->send(1, w.msg(512), {}), SendStatus::Ok);
}

TEST(Via, BadParamsFatalAtSenderForSendRecvMode)
{
    ViaWorld w;
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    proto::SendParams p;
    p.nullPointer = true;
    EXPECT_EQ(w.eps[0].via->send(1, w.msg(512), p), SendStatus::Fatal);
    w.s.runUntil(sec(2));
    EXPECT_TRUE(w.eps[1].fatal.empty()); // one-node effect
}

TEST(Via, BadParamsFatalAtBothEndsForRemoteWrite)
{
    proto::ViaConfig cfg;
    cfg.mode = ViaMode::RemoteWrite;
    ViaWorld w(2, cfg);
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    proto::SendParams p;
    p.ptrOffset = 32;
    EXPECT_EQ(w.eps[0].via->send(1, w.msg(512), p), SendStatus::Fatal);
    w.s.runUntil(sec(2));
    ASSERT_EQ(w.eps[1].fatal.size(), 1u); // remote DMA error surfaced
}

TEST(Via, PolledModesDelayDelivery)
{
    proto::ViaConfig fast;
    proto::ViaConfig polled;
    polled.mode = ViaMode::RemoteWrite;
    polled.pollDelay = msec(5);

    Tick t_fast = 0, t_polled = 0;
    {
        ViaWorld w(2, fast);
        w.eps[0].via->connect(1);
        w.s.runUntil(sec(1));
        w.eps[0].via->send(1, w.msg(512), {});
        w.s.events().runAll();
        t_fast = w.s.now();
    }
    {
        ViaWorld w(2, polled);
        w.eps[0].via->connect(1);
        w.s.runUntil(sec(1));
        w.eps[0].via->send(1, w.msg(512), {});
        w.s.events().runAll();
        t_polled = w.s.now();
    }
    EXPECT_GE(t_polled, t_fast + msec(4));
}

TEST(Via, StartPinsCommunicationBuffers)
{
    ViaWorld w;
    EXPECT_GT(w.eps[0].node->pins().pinned(), 0u);
    w.eps[0].via->shutdown();
    EXPECT_EQ(w.eps[0].node->pins().pinned(), 0u);
}

TEST(Via, StartFailsWhenPinBudgetExhausted)
{
    osim::NodeConfig node_cfg;
    node_cfg.pinLimitBytes = 1024; // less than the registered buffers
    ViaWorld w(2, {}, node_cfg);
    EXPECT_FALSE(w.eps[0].via->started());
    EXPECT_EQ(w.eps[0].fatal.size(), 1u);
}

TEST(Via, RegisterMemoryTracksPinBudget)
{
    ViaWorld w;
    auto before = w.eps[0].node->pins().pinned();
    EXPECT_TRUE(w.eps[0].via->registerMemory(1 << 20));
    EXPECT_EQ(w.eps[0].node->pins().pinned(), before + (1 << 20));
    w.eps[0].via->deregisterMemory(1 << 20);
    EXPECT_EQ(w.eps[0].node->pins().pinned(), before);
}

TEST(Via, RegisterMemoryFailsAtInjectedLimit)
{
    ViaWorld w;
    w.eps[0].node->pins().setInjectedLimit(
        w.eps[0].node->pins().pinned() + 100);
    EXPECT_FALSE(w.eps[0].via->registerMemory(1 << 20));
}

TEST(Via, ImmuneToKernelMemoryExhaustion)
{
    ViaWorld w;
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    w.eps[0].node->kernelMem().setFailInjected(true);
    w.eps[1].node->kernelMem().setFailInjected(true);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(w.eps[0].via->send(1, w.msg(1000), {}), SendStatus::Ok);
    w.s.runUntil(sec(2));
    EXPECT_EQ(w.eps[1].received.size(), 5u); // pre-allocated resources
}

TEST(Via, FrozenNodeNicStillAcksButAppStalls)
{
    proto::ViaConfig cfg;
    cfg.credits = 3;
    ViaWorld w(2, cfg);
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    w.eps[1].node->freeze(sec(30));
    // Connection survives the freeze (NIC-level hardware ack)...
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(w.eps[0].via->send(1, w.msg(512), {}), SendStatus::Ok);
    w.s.runUntil(sec(5));
    EXPECT_TRUE(w.eps[0].broken.empty());
    // ...but credits stop coming back: the sender now blocks.
    EXPECT_EQ(w.eps[0].via->send(1, w.msg(512), {}),
              SendStatus::WouldBlock);
    EXPECT_TRUE(w.eps[1].received.empty());
    w.s.runUntil(sec(40)); // unfreeze: deliveries drain
    EXPECT_EQ(w.eps[1].received.size(), 3u);
}

TEST(Via, CrashedPeerDetectedOnNextSend)
{
    ViaWorld w;
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    w.eps[1].node->crash(sec(60));
    w.eps[0].via->send(1, w.msg(512), {});
    w.s.runUntil(sec(2));
    ASSERT_EQ(w.eps[0].broken.size(), 1u);
}

TEST(Via, DisconnectBreaksPeerSilentlyLocally)
{
    ViaWorld w;
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    w.eps[0].via->disconnect(1);
    w.s.runUntil(sec(2));
    EXPECT_TRUE(w.eps[0].broken.empty());
    ASSERT_EQ(w.eps[1].broken.size(), 1u);
}

TEST(Via, ZeroCopySendCostLowerThanCopyMode)
{
    proto::ViaConfig copy_cfg;
    copy_cfg.costs.sendPerKb = 9.0;
    copy_cfg.costs.sendFixed = usec(12);
    proto::ViaConfig zc_cfg = copy_cfg;
    zc_cfg.costs.sendPerKb = 3.0;
    ViaWorld a(2, copy_cfg);
    ViaWorld b(2, zc_cfg);
    EXPECT_GT(a.eps[0].via->sendCost(8192), b.eps[0].via->sendCost(8192));
}

TEST(Via, SimultaneousConnectsConvergeOnOneVi)
{
    ViaWorld w;
    // Both ends connect at the same instant (rejoin race).
    w.eps[0].via->connect(1);
    w.eps[1].via->connect(0);
    w.s.runUntil(sec(3));
    ASSERT_TRUE(w.eps[0].via->connected(1));
    ASSERT_TRUE(w.eps[1].via->connected(0));
    // The agreed VI must actually carry data in both directions.
    w.eps[0].via->send(1, w.msg(512), {});
    w.eps[1].via->send(0, w.msg(512), {});
    w.s.runUntil(sec(4));
    EXPECT_EQ(w.eps[1].received.size(), 1u);
    EXPECT_EQ(w.eps[0].received.size(), 1u);
    EXPECT_TRUE(w.eps[0].broken.empty());
    EXPECT_TRUE(w.eps[1].broken.empty());
}

TEST(Via, QuietViReplacementWakesBlockedSender)
{
    proto::ViaConfig cfg;
    cfg.credits = 1;
    ViaWorld w(2, cfg);
    w.eps[1].autoCredit = false;
    w.eps[0].via->connect(1);
    w.s.runUntil(sec(1));
    EXPECT_EQ(w.eps[0].via->send(1, w.msg(512), {}), SendStatus::Ok);
    EXPECT_EQ(w.eps[0].via->send(1, w.msg(512), {}),
              SendStatus::WouldBlock);
    // Peer's process bounces and reconnects: the old VI is replaced
    // quietly; the blocked sender must get a send-ready wakeup.
    w.eps[1].via->shutdown();
    w.s.runUntil(sec(2));
    w.eps[1].via->start();
    w.eps[1].via->connect(0);
    w.s.runUntil(sec(3));
    EXPECT_GE(w.eps[0].sendReady, 1);
}
