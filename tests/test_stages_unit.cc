/**
 * @file
 * Unit tests for the stage extractor on hand-built series and marker
 * logs — every branch of the 7-stage mapping, without running a
 * simulation.
 */

#include <gtest/gtest.h>

#include "exp/report.hh"
#include <cstdio>
#include <fstream>

#include "exp/stages.hh"

using namespace performa;
using namespace performa::sim;

namespace {

/** Fill [from, to) seconds of the served series at @p rate per sec. */
void
fill(exp::ExperimentResult &res, std::uint64_t from, std::uint64_t to,
     std::uint64_t rate)
{
    for (std::uint64_t t = from; t < to; ++t)
        res.served.record(sec(t), rate);
}

exp::ExperimentResult
baseResult()
{
    exp::ExperimentResult res;
    res.injectAt = sec(60);
    res.runLength = sec(300);
    res.normalThroughput = 1000.0;
    return res;
}

fault::FaultSpec
linkSpec()
{
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::LinkDown;
    spec.injectAt = sec(60);
    spec.duration = sec(120); // repair at t=180
    return spec;
}

} // namespace

TEST(StageExtractorUnit, UndetectedStallThatHeals)
{
    exp::ExperimentResult res = baseResult();
    fill(res, 0, 60, 1000);
    fill(res, 60, 180, 0);    // stall through the fault
    fill(res, 180, 300, 1000); // instant resume

    auto mb = exp::extractBehavior(res, linkSpec());
    EXPECT_FALSE(mb.detected);
    EXPECT_NEAR(mb.dur[model::StageA], 120.0, 0.1);
    EXPECT_NEAR(mb.tput[model::StageA], 0.0, 1.0);
    EXPECT_TRUE(mb.healed);
    EXPECT_DOUBLE_EQ(mb.tput[model::StageE], 1000.0);
}

TEST(StageExtractorUnit, DetectedSplinterNeedsOperator)
{
    exp::ExperimentResult res = baseResult();
    fill(res, 0, 60, 1000);
    fill(res, 60, 75, 0);     // detection window
    fill(res, 75, 300, 800);  // splintered forever
    res.markers.add(sec(75), exp::MarkerKind::Exclude, 0, 3);
    res.endSplintered = true;

    auto mb = exp::extractBehavior(res, linkSpec());
    EXPECT_TRUE(mb.detected);
    EXPECT_NEAR(mb.dur[model::StageA], 15.0, 0.1);
    EXPECT_NEAR(mb.tput[model::StageC], 800.0, 20.0);
    EXPECT_FALSE(mb.healed);
    EXPECT_NEAR(mb.tput[model::StageE], 800.0, 20.0);
}

TEST(StageExtractorUnit, HighThroughputButSplinteredIsNotHealed)
{
    exp::ExperimentResult res = baseResult();
    fill(res, 0, 60, 1000);
    fill(res, 60, 300, 990); // barely degraded...
    res.markers.add(sec(60), exp::MarkerKind::Exclude, 0, 3);
    res.endSplintered = true; // ...but structurally split

    auto mb = exp::extractBehavior(res, linkSpec());
    EXPECT_FALSE(mb.healed);
}

TEST(StageExtractorUnit, FailFastCountsAsDetection)
{
    exp::ExperimentResult res = baseResult();
    fill(res, 0, 60, 1000);
    fill(res, 60, 90, 700);
    fill(res, 90, 300, 1000);
    res.markers.add(sec(60), exp::MarkerKind::FailFast, 3);
    res.markers.add(sec(90), exp::MarkerKind::Started, 3);

    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::BadParamNull; // no duration
    spec.injectAt = sec(60);
    auto mb = exp::extractBehavior(res, spec);
    EXPECT_TRUE(mb.detected);
    EXPECT_LT(mb.dur[model::StageA], 1.0);
    EXPECT_TRUE(mb.healed);
}

TEST(StageExtractorUnit, RecoveryTransientEndsAtStabilization)
{
    exp::ExperimentResult res = baseResult();
    fill(res, 0, 60, 1000);
    fill(res, 60, 180, 0);
    fill(res, 180, 230, 0);    // backoff keeps it dark post-repair
    fill(res, 230, 300, 1000); // then snaps back

    auto mb = exp::extractBehavior(res, linkSpec());
    EXPECT_FALSE(mb.detected);
    // Stage D covers the post-repair dead time (~50s), not just a
    // fixed window.
    EXPECT_GE(mb.dur[model::StageD], 45.0);
    EXPECT_TRUE(mb.healed);
}

TEST(StageExtractorUnit, BenignFaultIsInvisible)
{
    exp::ExperimentResult res = baseResult();
    fill(res, 0, 300, 1000);
    auto mb = exp::extractBehavior(res, linkSpec());
    EXPECT_FALSE(mb.detected);
    EXPECT_NEAR(mb.tput[model::StageA], 1000.0, 5.0);
    EXPECT_TRUE(mb.healed);
}

TEST(StageExtractorUnit, WriteSeriesCsvRoundTrips)
{
    exp::ExperimentResult res = baseResult();
    fill(res, 0, 10, 123);
    std::string path = ::testing::TempDir() + "/series.csv";
    ASSERT_TRUE(exp::writeSeriesCsv(res, path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header, row;
    std::getline(in, header);
    EXPECT_EQ(header, "t_sec,served,failed,offered");
    std::getline(in, row);
    EXPECT_EQ(row, "0,123,0,0");
    std::remove(path.c_str());
}
