/**
 * @file
 * Tests for the synthetic trace generator and the paper's
 * file-size-flattening step.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "loadgen/client_farm.hh"
#include "loadgen/trace.hh"

using namespace performa;
using namespace performa::wl;

TEST(SyntheticTrace, GeneratesRequestedPopulation)
{
    TraceParams p;
    p.numFiles = 5000;
    SyntheticTrace t = SyntheticTrace::generate(p);
    EXPECT_EQ(t.numFiles(), 5000u);
    EXPECT_GT(t.meanBytes(), 0.0);
}

TEST(SyntheticTrace, DeterministicForSeed)
{
    TraceParams p;
    p.numFiles = 1000;
    SyntheticTrace a = SyntheticTrace::generate(p, 3);
    SyntheticTrace b = SyntheticTrace::generate(p, 3);
    EXPECT_EQ(a.sizes(), b.sizes());
    SyntheticTrace c = SyntheticTrace::generate(p, 4);
    EXPECT_NE(a.sizes(), c.sizes());
}

TEST(SyntheticTrace, SizesAreHeavyTailed)
{
    TraceParams p;
    p.numFiles = 20000;
    SyntheticTrace t = SyntheticTrace::generate(p);
    double mean = t.meanBytes();
    auto sizes = t.sizes();
    std::sort(sizes.begin(), sizes.end());
    double median = static_cast<double>(sizes[sizes.size() / 2]);
    // Heavy tail: mean well above median.
    EXPECT_GT(mean, 1.5 * median);
    // And the max is clipped.
    EXPECT_LE(sizes.back(), p.maxFileBytes);
    EXPECT_GE(sizes.front(), 64u);
}

TEST(SyntheticTrace, MeanInWebRange)
{
    TraceParams p;
    SyntheticTrace t = SyntheticTrace::generate(p);
    // Late-90s web file populations: single-digit to tens of KB mean.
    EXPECT_GT(t.meanBytes(), 3000.0);
    EXPECT_LT(t.meanBytes(), 40000.0);
}

TEST(SyntheticTrace, FlattenPreservesCountAndMean)
{
    TraceParams p;
    p.numFiles = 8000;
    SyntheticTrace t = SyntheticTrace::generate(p);
    FlatFileSet f = t.flatten();
    EXPECT_EQ(f.numFiles, 8000u);
    EXPECT_NEAR(static_cast<double>(f.fileBytes), t.meanBytes(), 1.0);
    EXPECT_DOUBLE_EQ(f.zipfAlpha, t.zipfAlpha());
    // The flattened set's footprint matches the raw total closely.
    double raw = static_cast<double>(t.totalBytes());
    double flat = static_cast<double>(f.totalBytes());
    EXPECT_NEAR(flat / raw, 1.0, 0.01);
}

TEST(SyntheticTrace, ApplyFileSetWiresBothSides)
{
    TraceParams p;
    p.numFiles = 12345;
    p.zipfAlpha = 0.9;
    FlatFileSet fs = SyntheticTrace::generate(p).flatten();
    press::ClusterConfig cluster;
    WorkloadConfig workload;
    applyFileSet(fs, cluster, workload);
    EXPECT_EQ(cluster.press.fileBytes, fs.fileBytes);
    EXPECT_EQ(workload.numFiles, 12345u);
    EXPECT_DOUBLE_EQ(workload.zipfAlpha, 0.9);
}
