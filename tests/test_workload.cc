/**
 * @file
 * Tests for the client farm: Poisson arrival rate, round-robin DNS,
 * timeout accounting, and interaction with unresponsive servers.
 */

#include <gtest/gtest.h>

#include <map>

#include "press/messages.hh"
#include "sim/simulation.hh"
#include "loadgen/client_farm.hh"

using namespace performa;
using namespace performa::sim;

namespace {

/** A bare network with scripted "server" ports. */
struct FarmWorld
{
    Simulation s{3};
    net::Network n{s};
    std::vector<net::PortId> servers;
    std::vector<net::PortId> clients;
    std::map<net::PortId, int> requestsPerServer;
    bool respond = true;

    FarmWorld()
    {
        for (int i = 0; i < 4; ++i) {
            net::PortId p = n.addPort();
            servers.push_back(p);
            n.setHandler(p, [this, p](net::Frame &&f) {
                ++requestsPerServer[p];
                if (!respond)
                    return;
                auto *req = f.payload.get<press::ClientRequestBody>();
                net::Frame r;
                r.srcPort = p;
                r.dstPort = req->replyPort;
                r.proto = net::Proto::Client;
                r.kind = press::ClientResponse;
                r.bytes = 8192;
                auto body = s.makePayload<press::ClientResponseBody>();
                body->req = req->req;
                r.payload = std::move(body);
                n.send(std::move(r));
            });
        }
        for (int i = 0; i < 2; ++i)
            clients.push_back(n.addPort());
    }
};

} // namespace

TEST(ClientFarm, OfferedRateTracksTarget)
{
    FarmWorld w;
    wl::WorkloadConfig cfg;
    cfg.requestRate = 2000;
    cfg.numFiles = 1000;
    wl::ClientFarm farm(w.s, w.n, w.servers, w.clients, cfg);
    farm.start();
    w.s.runUntil(sec(20));
    double rate = farm.offered().meanRate(sec(0), sec(20));
    EXPECT_NEAR(rate, 2000, 100);
}

TEST(ClientFarm, AllServedWhenServersRespond)
{
    FarmWorld w;
    wl::WorkloadConfig cfg;
    cfg.requestRate = 500;
    cfg.numFiles = 100;
    wl::ClientFarm farm(w.s, w.n, w.servers, w.clients, cfg);
    farm.start();
    w.s.runUntil(sec(10));
    farm.stop();
    w.s.runUntil(sec(20));
    EXPECT_EQ(farm.totalServed(), farm.totalOffered());
    EXPECT_EQ(farm.totalFailed(), 0u);
    EXPECT_EQ(farm.pendingCount(), 0u);
}

TEST(ClientFarm, RoundRobinSpreadsAcrossServers)
{
    FarmWorld w;
    wl::WorkloadConfig cfg;
    cfg.requestRate = 1000;
    cfg.numFiles = 100;
    wl::ClientFarm farm(w.s, w.n, w.servers, w.clients, cfg);
    farm.start();
    w.s.runUntil(sec(8));
    int min = 1 << 30, max = 0;
    for (auto p : w.servers) {
        min = std::min(min, w.requestsPerServer[p]);
        max = std::max(max, w.requestsPerServer[p]);
    }
    EXPECT_GT(min, 0);
    EXPECT_LE(max - min, 1); // strict round robin
}

TEST(ClientFarm, SilentServerMeansTimeoutFailures)
{
    FarmWorld w;
    w.respond = false;
    wl::WorkloadConfig cfg;
    cfg.requestRate = 500;
    cfg.numFiles = 100;
    cfg.requestTimeout = sec(6);
    wl::ClientFarm farm(w.s, w.n, w.servers, w.clients, cfg);
    farm.start();
    w.s.runUntil(sec(5));
    EXPECT_EQ(farm.totalFailed(), 0u); // nothing expired yet
    w.s.runUntil(sec(30));
    farm.stop();
    w.s.runUntil(sec(40));
    EXPECT_EQ(farm.totalServed(), 0u);
    EXPECT_EQ(farm.totalFailed(), farm.totalOffered());
}

TEST(ClientFarm, LateResponseCountsAsFailure)
{
    FarmWorld w;
    w.respond = false;
    wl::WorkloadConfig cfg;
    cfg.requestRate = 100;
    cfg.numFiles = 10;
    cfg.requestTimeout = sec(2);
    wl::ClientFarm farm(w.s, w.n, w.servers, w.clients, cfg);

    // Respond manually after the deadline.
    std::vector<net::Frame> pending;
    for (auto p : w.servers) {
        w.n.setHandler(p, [&pending](net::Frame &&f) {
            pending.push_back(std::move(f));
        });
    }
    farm.start();
    w.s.runUntil(sec(1));
    farm.stop();
    w.s.runUntil(sec(5)); // everything expired
    std::uint64_t failed = farm.totalFailed();
    EXPECT_GT(failed, 0u);
    for (auto &f : pending) {
        auto *req = f.payload.get<press::ClientRequestBody>();
        net::Frame r;
        r.srcPort = f.dstPort;
        r.dstPort = req->replyPort;
        r.proto = net::Proto::Client;
        r.kind = press::ClientResponse;
        r.bytes = 100;
        auto body = w.s.makePayload<press::ClientResponseBody>();
        body->req = req->req;
        r.payload = std::move(body);
        w.n.send(std::move(r));
    }
    w.s.runUntil(sec(10));
    EXPECT_EQ(farm.totalServed(), 0u); // late data is ignored
    EXPECT_EQ(farm.totalFailed(), failed);
}

TEST(ClientFarm, PopularityFollowsZipf)
{
    FarmWorld w;
    wl::WorkloadConfig cfg;
    cfg.requestRate = 4000;
    cfg.numFiles = 1000;
    cfg.zipfAlpha = 0.8;
    wl::ClientFarm farm(w.s, w.n, w.servers, w.clients, cfg);

    std::map<sim::FileId, int> hits;
    for (auto p : w.servers) {
        w.n.setHandler(p, [&hits](net::Frame &&f) {
            auto *req = f.payload.get<press::ClientRequestBody>();
            ++hits[req->file];
        });
    }
    farm.start();
    w.s.runUntil(sec(10));
    // File 0 should dominate: compare to a mid-rank file.
    EXPECT_GT(hits[0], 5 * std::max(1, hits[500]));
}

TEST(ClientFarm, LatencyStatsTrackServedRequests)
{
    FarmWorld w;
    wl::WorkloadConfig cfg;
    cfg.requestRate = 500;
    cfg.numFiles = 100;
    wl::ClientFarm farm(w.s, w.n, w.servers, w.clients, cfg);
    farm.start();
    w.s.runUntil(sec(5));
    farm.stop();
    w.s.runUntil(sec(10));
    EXPECT_EQ(farm.latency().count(), farm.totalServed());
    // Round trip over the ideal network: sub-millisecond.
    EXPECT_GT(farm.latency().mean(), 0.0);
    EXPECT_LT(farm.latency().mean(), 1000.0);
    EXPECT_LE(farm.latency().min(), farm.latency().mean());
}
