/**
 * @file
 * Determinism guard: re-measures one grid point of the committed
 * phase-1 behaviour database with the default workload and checks the
 * freshly serialized CSV row is byte-identical to the committed one.
 *
 * This pins down the contract the loadgen subsystem must honour: with
 * the default (steady) profile linked in, the generators draw from the
 * simulation RNG in the historical order, the seeds derive to the
 * historical values, and the CSV serialization stays stable. Any
 * accidental perturbation — an extra RNG draw, a profile leaking into
 * the default path, a changed float format — shows up here as a one
 * byte diff instead of as a silently invalidated results/ directory.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/phase1.hh"
#include "exp/behavior_db.hh"
#include "exp/experiment.hh"
#include "exp/stages.hh"

using namespace performa;

namespace {

/** First line of @p path starting with @p prefix, or empty. */
std::string
findRow(const std::string &path, const std::string &prefix)
{
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        if (line.rfind(prefix, 0) == 0)
            return line;
    return {};
}

} // namespace

TEST(DeterminismGuard, DefaultWorkloadReproducesTheCommittedRow)
{
    const std::string committed = std::string(PERFORMA_SOURCE_DIR) +
                                  "/results/phase1_behaviors.csv";
    // (version=0, fault=6) = (TcpPress, AppCrash): a cheap grid point
    // with detection, healing, and a non-trivial stage profile.
    const std::string want = findRow(committed, "0,6,");
    ASSERT_FALSE(want.empty())
        << "committed behaviour DB lost its (TcpPress, AppCrash) row";

    campaign::Phase1Options opts; // all defaults: steady profile, no SLO
    exp::ExperimentConfig cfg = campaign::phase1Config(
        press::Version::TcpPress, fault::FaultKind::AppCrash, opts);
    exp::ExperimentResult res = exp::runExperiment(cfg);
    model::MeasuredBehavior mb = exp::extractBehavior(res, *cfg.fault);

    exp::BehaviorDb db;
    db.set(press::Version::TcpPress, fault::FaultKind::AppCrash, mb);
    const std::string tmp = ::testing::TempDir() + "/guard_row.csv";
    db.save(tmp);
    const std::string got = findRow(tmp, "0,6,");
    std::remove(tmp.c_str());

    EXPECT_EQ(got, want)
        << "default-workload behaviour drifted from the committed DB;\n"
        << "if the change is intentional, regenerate results/ and "
        << "explain why in the commit message";
}

TEST(DeterminismGuard, ForkPathReproducesTheCommittedRow)
{
    // The committed database is produced by the campaign's
    // warm-once/fork-per-fault pipeline; this re-measures the same
    // grid point through an explicit snapshot + fork (the way
    // ensurePhase1 does) and pins the row to the committed bytes.
    const std::string committed = std::string(PERFORMA_SOURCE_DIR) +
                                  "/results/phase1_behaviors.csv";
    const std::string want = findRow(committed, "0,6,");
    ASSERT_FALSE(want.empty())
        << "committed behaviour DB lost its (TcpPress, AppCrash) row";

    campaign::Phase1Options opts;
    exp::ExperimentConfig warmCfg = campaign::phase1WarmConfig(
        press::Version::TcpPress, {fault::FaultKind::AppCrash}, opts);
    exp::ExperimentConfig cfg = campaign::phase1Config(
        press::Version::TcpPress, fault::FaultKind::AppCrash, opts);

    exp::Experiment e(warmCfg);
    e.warmUp();
    sim::Snapshot snap = e.snapshot();
    e.forkFrom(snap);
    exp::ExperimentResult res =
        e.injectAndMeasure(cfg.fault, cfg.duration);
    model::MeasuredBehavior mb = exp::extractBehavior(res, *cfg.fault);

    exp::BehaviorDb db;
    db.set(press::Version::TcpPress, fault::FaultKind::AppCrash, mb);
    const std::string tmp = ::testing::TempDir() + "/guard_fork_row.csv";
    db.save(tmp);
    const std::string got = findRow(tmp, "0,6,");
    std::remove(tmp.c_str());

    EXPECT_EQ(got, want)
        << "fork-path behaviour drifted from the committed DB — the "
        << "snapshot restore is no longer faithful to a fresh warm-up";
}
