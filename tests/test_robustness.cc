/**
 * @file
 * Robustness/failure-injection hardening: overlapping and compounding
 * faults must never wedge or crash the simulation, and the cluster
 * must keep serving (possibly degraded) or recover once the faults
 * clear. These are the cases the single-fault methodology does not
 * cover but a production harness must survive.
 */

#include <gtest/gtest.h>

#include "exp/report.hh"
#include "faults/injector.hh"
#include "press/cluster.hh"
#include "sim/simulation.hh"
#include "loadgen/client_farm.hh"

using namespace performa;
using namespace performa::sim;

namespace {

struct Storm
{
    Simulation s{23};
    press::Cluster cluster;
    wl::ClientFarm farm;
    fault::Injector injector;

    explicit Storm(press::Version v, bool robust = false)
        : cluster(s, makeCfg(v, robust)),
          farm(s, cluster.clientNet(), cluster.serverClientPorts(),
               cluster.clientMachinePorts(), makeWl()),
          injector(s, cluster)
    {
        cluster.startAll();
        s.runUntil(sec(1));
        cluster.prewarm(20000);
        farm.start();
    }

    static press::ClusterConfig
    makeCfg(press::Version v, bool robust)
    {
        press::ClusterConfig cfg;
        cfg.press.version = v;
        cfg.press.robustMembership = robust;
        return cfg;
    }

    static wl::WorkloadConfig
    makeWl()
    {
        wl::WorkloadConfig cfg;
        cfg.requestRate = 1500;
        cfg.numFiles = 24000;
        return cfg;
    }

    void
    inject(fault::FaultKind k, NodeId target, Tick at, Tick dur)
    {
        fault::FaultSpec spec;
        spec.kind = k;
        spec.target = target;
        spec.injectAt = at;
        spec.duration = dur;
        injector.schedule(spec);
    }

    /** The cluster serves at a healthy clip over [from, to). */
    void
    expectServing(Tick from, Tick to, double min_rate)
    {
        double r = farm.served().meanRate(from, to);
        EXPECT_GT(r, min_rate) << "cluster not serving";
    }
};

} // namespace

TEST(Robustness, CrashWhileFrozen)
{
    Storm w(press::Version::ViaPress0);
    w.inject(fault::FaultKind::NodeFreeze, 3, sec(5), sec(60));
    w.inject(fault::FaultKind::NodeCrash, 3, sec(15), sec(20));
    w.s.runUntil(sec(120));
    EXPECT_TRUE(w.cluster.node(3).up());
    w.expectServing(sec(90), sec(120), 1200);
}

TEST(Robustness, KillDuringHang)
{
    Storm w(press::Version::TcpPress);
    w.inject(fault::FaultKind::AppHang, 2, sec(5), sec(40));
    w.inject(fault::FaultKind::AppCrash, 2, sec(10), 0);
    w.s.runUntil(sec(120));
    EXPECT_TRUE(w.cluster.server(2).alive());
    w.expectServing(sec(90), sec(120), 1200);
}

TEST(Robustness, TwoSimultaneousNodeCrashes)
{
    Storm w(press::Version::ViaPress5);
    w.inject(fault::FaultKind::NodeCrash, 2, sec(5), sec(30));
    w.inject(fault::FaultKind::NodeCrash, 3, sec(5), sec(30));
    w.s.runUntil(sec(20));
    // Two survivors keep cooperating.
    EXPECT_EQ(w.cluster.server(0).members().size(), 2u);
    w.s.runUntil(sec(120));
    EXPECT_FALSE(w.cluster.splintered());
    w.expectServing(sec(90), sec(120), 1200);
}

TEST(Robustness, FaultOnTheLowestIdNodeNeedsOperator)
{
    // Node 0 answers rejoin requests. Crashing it while another node
    // restarts leaves the member views diverged (the joiner's
    // requests go unanswered while node 0 is still believed to be the
    // lowest active member) — the paper's point that heartbeats need
    // a rigorous membership algorithm. The operator reset must always
    // put the cluster back together.
    Storm w(press::Version::TcpPressHb);
    w.inject(fault::FaultKind::NodeCrash, 0, sec(5), sec(30));
    w.inject(fault::FaultKind::AppCrash, 3, sec(20), 0);
    w.s.runUntil(sec(150));
    w.cluster.operatorReset();
    w.s.runUntil(sec(200));
    EXPECT_FALSE(w.cluster.splintered());
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(w.cluster.server(i).members().size(), 4u) << i;
    w.expectServing(sec(170), sec(200), 1200);
}

TEST(Robustness, FaultOnTheLowestIdNodeSelfHealsWithRobustMembership)
{
    // Same compound fault, but with the Section 6.2 extension the
    // diverged views repair themselves without an operator.
    Storm w(press::Version::TcpPressHb, /*robust=*/true);
    w.inject(fault::FaultKind::NodeCrash, 0, sec(5), sec(30));
    w.inject(fault::FaultKind::AppCrash, 3, sec(20), 0);
    w.s.runUntil(sec(150));
    EXPECT_FALSE(w.cluster.splintered());
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(w.cluster.server(i).members().size(), 4u) << i;
    w.expectServing(sec(120), sec(150), 1200);
}

TEST(Robustness, LinkFaultDuringKernelMemoryFault)
{
    Storm w(press::Version::TcpPress);
    w.inject(fault::FaultKind::KernelMemAlloc, 1, sec(5), sec(40));
    w.inject(fault::FaultKind::LinkDown, 3, sec(10), sec(20));
    w.s.runUntil(sec(150));
    // Both faults cleared; plain TCP rides both out.
    EXPECT_FALSE(w.cluster.splintered());
    w.expectServing(sec(120), sec(150), 1200);
}

TEST(Robustness, RepeatedBadParamsKeepRestarting)
{
    Storm w(press::Version::ViaPress3);
    for (int i = 0; i < 4; ++i) {
        w.inject(fault::FaultKind::BadParamNull,
                 static_cast<NodeId>(1 + (i % 3)),
                 sec(static_cast<std::uint64_t>(5 + 25 * i)), 0);
    }
    w.s.runUntil(sec(180));
    EXPECT_FALSE(w.cluster.splintered());
    w.expectServing(sec(150), sec(180), 1200);
}

TEST(Robustness, SwitchFlapDuringNodeDowntime)
{
    Storm w(press::Version::ViaPress0);
    w.inject(fault::FaultKind::NodeCrash, 3, sec(5), sec(60));
    w.inject(fault::FaultKind::SwitchDown, 0, sec(20), sec(10));
    w.s.runUntil(sec(40));
    // Switch flap splintered the survivors into singletons.
    EXPECT_TRUE(w.cluster.splintered());
    // Operator puts it back together; the rebooted node rejoins too.
    w.cluster.operatorReset();
    w.s.runUntil(sec(160));
    EXPECT_FALSE(w.cluster.splintered());
    w.expectServing(sec(130), sec(160), 1200);
}

/** Property sweep: random fault storms never wedge the service. */
class StormSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(StormSweep, ClusterAlwaysRecovers)
{
    Storm w(press::Version::ViaPress0);
    Rng rng(GetParam());
    const fault::FaultKind kinds[] = {
        fault::FaultKind::NodeCrash,      fault::FaultKind::NodeFreeze,
        fault::FaultKind::KernelMemAlloc, fault::FaultKind::AppCrash,
        fault::FaultKind::AppHang,        fault::FaultKind::BadParamNull,
    };
    for (int i = 0; i < 8; ++i) {
        // Draw into locals: argument evaluation order is unspecified.
        fault::FaultKind kind = kinds[rng.uniformInt(0, 5)];
        auto target = static_cast<NodeId>(rng.uniformInt(0, 3));
        Tick at = sec(5 + rng.uniformInt(0, 60));
        Tick dur = sec(5 + rng.uniformInt(0, 30));
        w.inject(kind, target, at, dur);
    }
    w.s.runUntil(sec(130));
    // An operator pass heals whatever is left splintered.
    w.cluster.operatorReset();
    w.s.runUntil(sec(220));
    EXPECT_FALSE(w.cluster.splintered());
    w.expectServing(sec(190), sec(220), 1100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StormSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));
