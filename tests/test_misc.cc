/**
 * @file
 * Coverage for the small public helpers: version metadata, substrate
 * config factories, and the marker log.
 */

#include <gtest/gtest.h>

#include "exp/markers.hh"
#include "press/config.hh"

using namespace performa;
using namespace performa::sim;

TEST(PressConfig, VersionNamesMatchThePaper)
{
    EXPECT_STREQ(press::versionName(press::Version::TcpPress),
                 "TCP-PRESS");
    EXPECT_STREQ(press::versionName(press::Version::TcpPressHb),
                 "TCP-PRESS-HB");
    EXPECT_STREQ(press::versionName(press::Version::ViaPress0),
                 "VIA-PRESS-0");
    EXPECT_STREQ(press::versionName(press::Version::ViaPress3),
                 "VIA-PRESS-3");
    EXPECT_STREQ(press::versionName(press::Version::ViaPress5),
                 "VIA-PRESS-5");
}

TEST(PressConfig, VersionPredicates)
{
    EXPECT_FALSE(press::isVia(press::Version::TcpPress));
    EXPECT_FALSE(press::isVia(press::Version::TcpPressHb));
    EXPECT_TRUE(press::isVia(press::Version::ViaPress0));
    EXPECT_TRUE(press::isVia(press::Version::ViaPress5));

    EXPECT_TRUE(press::usesHeartbeats(press::Version::TcpPressHb));
    EXPECT_FALSE(press::usesHeartbeats(press::Version::TcpPress));
    EXPECT_FALSE(press::usesHeartbeats(press::Version::ViaPress3));

    EXPECT_TRUE(press::usesDynamicPinning(press::Version::ViaPress5));
    EXPECT_FALSE(press::usesDynamicPinning(press::Version::ViaPress3));
}

TEST(PressConfig, PaperThroughputsOrdered)
{
    double prev = 0;
    for (press::Version v : press::allVersions) {
        double t = press::paperThroughput(v);
        EXPECT_GE(t, prev);
        prev = t;
    }
    EXPECT_DOUBLE_EQ(press::paperThroughput(press::Version::ViaPress5),
                     7058.0);
}

TEST(PressConfig, SubstrateFactoriesMatchVersions)
{
    auto tcp = press::tcpConfigFor(press::Version::TcpPress);
    EXPECT_GT(tcp.costs.sendFixed, 0u);
    EXPECT_EQ(tcp.abortTimeout, minutes(15));

    auto v0 = press::viaConfigFor(press::Version::ViaPress0);
    EXPECT_EQ(v0.mode, proto::ViaMode::SendRecv);
    auto v3 = press::viaConfigFor(press::Version::ViaPress3);
    EXPECT_EQ(v3.mode, proto::ViaMode::RemoteWrite);
    auto v5 = press::viaConfigFor(press::Version::ViaPress5);
    EXPECT_EQ(v5.mode, proto::ViaMode::RemoteWriteZeroCopy);
    // Zero copy must actually be cheaper per KB.
    EXPECT_LT(v5.costs.sendPerKb, v3.costs.sendPerKb);
    // Polled modes skip the receive interrupt.
    EXPECT_LT(v3.costs.recvFixed, v0.costs.recvFixed);
}

TEST(PressConfigDeath, FactoriesRejectWrongFamily)
{
    EXPECT_DEATH((void)press::tcpConfigFor(press::Version::ViaPress0),
                 "VIA");
    EXPECT_DEATH((void)press::viaConfigFor(press::Version::TcpPress),
                 "TCP");
}

TEST(MarkerLog, QueriesWork)
{
    exp::MarkerLog log;
    log.add(sec(10), exp::MarkerKind::Inject);
    log.add(sec(20), exp::MarkerKind::Exclude, 0, 3);
    log.add(sec(25), exp::MarkerKind::Exclude, 1, 3);
    log.add(sec(90), exp::MarkerKind::Recover);

    auto first = log.firstAfter(exp::MarkerKind::Exclude, sec(15));
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->t, sec(20));
    EXPECT_EQ(first->node, 0u);
    EXPECT_EQ(first->other, 3u);

    EXPECT_FALSE(
        log.firstAfter(exp::MarkerKind::FailFast, 0).has_value());

    auto last = log.last(exp::MarkerKind::Exclude);
    ASSERT_TRUE(last.has_value());
    EXPECT_EQ(last->t, sec(25));

    EXPECT_EQ(log.count(exp::MarkerKind::Exclude), 2u);
    EXPECT_EQ(log.count(exp::MarkerKind::Exclude, sec(21)), 1u);
    EXPECT_EQ(log.count(exp::MarkerKind::Exclude, 0, sec(21)), 1u);
}

TEST(MarkerLog, NamesAreStable)
{
    EXPECT_STREQ(exp::markerName(exp::MarkerKind::Inject), "inject");
    EXPECT_STREQ(exp::markerName(exp::MarkerKind::OperatorReset),
                 "operator-reset");
}
