/**
 * @file
 * Warm-state snapshot/fork contract: a fault run forked from a warmed
 * snapshot must be byte-identical to a fresh run that warmed up on its
 * own, repeated forks from one snapshot must not contaminate each
 * other, and forked steady-state traffic must stay allocation-free
 * (restore preserves every ring, slab and reserve capacity).
 *
 * This file must stay its own test binary: the operator-new counting
 * hook for the zero-alloc check is global.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <unordered_map>

#include "campaign/phase1.hh"
#include "exp/experiment.hh"
#include "exp/stages.hh"
#include "net/network.hh"
#include "os/node.hh"
#include "proto/tcp.hh"
#include "sim/simulation.hh"
#include "sim/snapshot.hh"

namespace {

bool g_counting = false;
std::uint64_t g_news = 0;

void *
countedAlloc(std::size_t n)
{
    if (g_counting)
        ++g_news;
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
countedAllocAligned(std::size_t n, std::size_t align)
{
    if (g_counting)
        ++g_news;
    void *p = nullptr;
    if (posix_memalign(&p, align < sizeof(void *) ? sizeof(void *) : align,
                       n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new(std::size_t n, std::align_val_t a)
{
    return countedAllocAligned(n, static_cast<std::size_t>(a));
}

void *
operator new[](std::size_t n, std::align_val_t a)
{
    return countedAllocAligned(n, static_cast<std::size_t>(a));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

using namespace performa;

namespace {

/** A cheap grid point: light load, short post-fault tail. */
exp::ExperimentConfig
fastConfig(press::Version v, fault::FaultKind k)
{
    exp::ExperimentConfig cfg = exp::experimentFor(v, k);
    cfg.workload.requestRate = 900;
    cfg.workload.numFiles = 20000;
    cfg.duration = cfg.injectAt + sim::sec(45);
    return cfg;
}

/**
 * Full-surface equality of two experiment results. Slice *counts* of
 * the latency timeline are excluded on purpose: they reflect the
 * reserve sizing (which may legitimately differ between a fresh run
 * and a fork from a longer warm config), not behaviour.
 */
void
expectIdentical(const exp::ExperimentResult &a,
                const exp::ExperimentResult &b, const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.normalThroughput, b.normalThroughput);
    EXPECT_EQ(a.availability, b.availability);
    EXPECT_EQ(a.finalMembers, b.finalMembers);
    EXPECT_EQ(a.endSplintered, b.endSplintered);
    EXPECT_EQ(a.runLength, b.runLength);

    ASSERT_EQ(a.markers.all().size(), b.markers.all().size());
    for (std::size_t i = 0; i < a.markers.all().size(); ++i) {
        const exp::Marker &ma = a.markers.all()[i];
        const exp::Marker &mb = b.markers.all()[i];
        EXPECT_EQ(ma.t, mb.t);
        EXPECT_EQ(ma.kind, mb.kind);
        EXPECT_EQ(ma.node, mb.node);
        EXPECT_EQ(ma.other, mb.other);
        EXPECT_EQ(ma.detail, mb.detail);
    }

    auto expectSeriesEq = [](const sim::TimeSeries &sa,
                             const sim::TimeSeries &sb) {
        ASSERT_EQ(sa.size(), sb.size());
        for (std::size_t i = 0; i < sa.size(); ++i)
            EXPECT_EQ(sa.count(i), sb.count(i)) << "bucket " << i;
    };
    expectSeriesEq(a.served, b.served);
    expectSeriesEq(a.failed, b.failed);
    expectSeriesEq(a.offered, b.offered);

    for (int s = 0; s < sim::numLatencyStages; ++s) {
        auto stage = static_cast<sim::LatencyStage>(s);
        const sim::LatencyHistogram &ha = a.latency.cumulative(stage);
        const sim::LatencyHistogram &hb = b.latency.cumulative(stage);
        EXPECT_EQ(ha.count(), hb.count());
        if (ha.count()) {
            EXPECT_EQ(ha.quantile(0.5), hb.quantile(0.5));
            EXPECT_EQ(ha.quantile(0.99), hb.quantile(0.99));
        }
    }

    ASSERT_EQ(a.intraPortStats.size(), b.intraPortStats.size());
    for (std::size_t p = 0; p < a.intraPortStats.size(); ++p) {
        const net::PortStats &pa = a.intraPortStats[p];
        const net::PortStats &pb = b.intraPortStats[p];
        EXPECT_EQ(pa.framesSent, pb.framesSent);
        EXPECT_EQ(pa.bytesSent, pb.bytesSent);
        EXPECT_EQ(pa.framesReceived, pb.framesReceived);
        EXPECT_EQ(pa.bytesReceived, pb.bytesReceived);
        EXPECT_EQ(pa.dropPortDown, pb.dropPortDown);
        EXPECT_EQ(pa.dropLinkDown, pb.dropLinkDown);
        EXPECT_EQ(pa.dropSwitchDown, pb.dropSwitchDown);
        EXPECT_EQ(pa.dropDiedInFlight, pb.dropDiedInFlight);
    }
}

} // namespace

TEST(Snapshot, ForkMatchesFreshRunByteForByte)
{
    const std::pair<press::Version, fault::FaultKind> points[] = {
        {press::Version::TcpPress, fault::FaultKind::AppCrash},
        {press::Version::ViaPress0, fault::FaultKind::LinkDown},
        {press::Version::ViaPress3, fault::FaultKind::NodeCrash},
    };
    for (auto [v, k] : points) {
        exp::ExperimentConfig cfg = fastConfig(v, k);

        // Fresh path: warm up and measure in one world, no snapshot.
        exp::ExperimentResult fresh = exp::runExperiment(cfg);

        // Fork path: warm a fault-free world sized like the campaign's
        // shared warm config, capture, rewind, then inject.
        exp::ExperimentConfig warmCfg = cfg;
        warmCfg.fault.reset();
        warmCfg.duration = cfg.duration + sim::sec(30);
        exp::Experiment e(warmCfg);
        e.warmUp();
        sim::Snapshot snap = e.snapshot();
        e.forkFrom(snap);
        exp::ExperimentResult forked =
            e.injectAndMeasure(cfg.fault, cfg.duration);

        expectIdentical(fresh, forked,
                        std::string(press::versionName(v)) + " x " +
                            fault::faultName(k));
    }
}

TEST(Snapshot, RepeatedForksFromOneSnapshotStayIndependent)
{
    press::Version v = press::Version::TcpPress;
    exp::ExperimentConfig cfgA =
        fastConfig(v, fault::FaultKind::AppCrash);
    exp::ExperimentConfig cfgB =
        fastConfig(v, fault::FaultKind::LinkDown);

    exp::ExperimentConfig warmCfg = cfgA;
    warmCfg.fault.reset();
    if (cfgB.duration > warmCfg.duration)
        warmCfg.duration = cfgB.duration;

    exp::Experiment e(warmCfg);
    e.warmUp();
    sim::Snapshot snap = e.snapshot();

    e.forkFrom(snap);
    exp::ExperimentResult a1 =
        e.injectAndMeasure(cfgA.fault, cfgA.duration);

    // A divergent fault schedule in between must leave no trace.
    e.forkFrom(snap);
    exp::ExperimentResult b =
        e.injectAndMeasure(cfgB.fault, cfgB.duration);

    e.forkFrom(snap);
    exp::ExperimentResult a2 =
        e.injectAndMeasure(cfgA.fault, cfgA.duration);

    expectIdentical(a1, a2, "same fault, before/after divergent fork");

    // And the divergent run really did diverge (different fault, so
    // the runs cannot coincide on every observable).
    EXPECT_TRUE(a1.availability != b.availability ||
                a1.markers.all().size() != b.markers.all().size())
        << "fault A and fault B produced indistinguishable runs";
}

TEST(Snapshot, ForkedSteadyStateTrafficAllocatesNothing)
{
    // A TCP echo flood (the canonical zero-alloc workload), but run
    // through capture + restore first: the fork must hand back every
    // pre-sized ring, slab and pool, so the steady state after a fork
    // is as allocation-free as before it.
    sim::Simulation sim{7};
    net::Network intra{sim};
    net::Network client{sim};
    net::PortId p0 = intra.addPort();
    net::PortId p1 = intra.addPort();
    net::PortId c0 = client.addPort();
    net::PortId c1 = client.addPort();
    osim::Node n0(sim, 0, intra, p0, client, c0);
    osim::Node n1(sim, 1, intra, p1, client, c1);
    std::unordered_map<sim::NodeId, net::PortId> ports{{0, p0},
                                                       {1, p1}};

    proto::TcpComm a(n0, proto::TcpConfig{}, ports);
    proto::TcpComm b(n1, proto::TcpConfig{}, ports);
    std::uint64_t echoed = 0;
    proto::CommCallbacks bcbs;
    bcbs.onMessage = [&](sim::NodeId peer, proto::AppMessage &&m) {
        b.send(peer, std::move(m), {});
    };
    b.setCallbacks(bcbs);
    proto::CommCallbacks acbs;
    acbs.onMessage = [&](sim::NodeId, proto::AppMessage &&) { ++echoed; };
    a.setCallbacks(acbs);
    a.start();
    b.start();
    a.connect(1);
    sim.runUntil(sim::sec(1));
    ASSERT_TRUE(a.connected(1));

    constexpr int kWindow = 16;
    auto pumpWindow = [&] {
        for (int i = 0; i < kWindow; ++i) {
            proto::AppMessage m;
            m.type = 1;
            m.bytes = 1024;
            a.send(1, std::move(m), {});
        }
        sim.events().runAll();
    };

    // Reach steady-state capacity everywhere, then snapshot and fork.
    for (int r = 0; r < 50; ++r)
        pumpWindow();

    sim::SnapshotRegistry reg;
    reg.attach(sim);
    reg.attach(intra);
    reg.attach(client);
    reg.attach(n0);
    reg.attach(n1);
    reg.attach(a);
    reg.attach(b);
    sim::Snapshot snap = reg.capture();
    reg.forkFrom(snap);

    std::uint64_t fresh_before = sim.pool().freshAllocs();
    std::uint64_t echoed_before = echoed;
    g_news = 0;
    g_counting = true;
    for (int r = 0; r < 200; ++r)
        pumpWindow();
    g_counting = false;

    EXPECT_EQ(echoed - echoed_before, 200u * kWindow);
    EXPECT_EQ(g_news, 0u)
        << "heap allocations in the forked steady state";
    EXPECT_EQ(sim.pool().freshAllocs(), fresh_before)
        << "payload pool carved fresh blocks after the fork";
}
