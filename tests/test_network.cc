/**
 * @file
 * Unit tests for the star-topology fabric: delivery timing,
 * serialization, component-fault drops, and outcome callbacks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hh"
#include "sim/simulation.hh"

using namespace performa;
using namespace performa::sim;

namespace {

struct World
{
    Simulation s{1};
    net::NetworkConfig cfg;
    net::Network n;
    net::PortId a, b;
    std::vector<net::Frame> delivered;

    World() : n(s, makeCfg())
    {
        a = n.addPort();
        b = n.addPort();
        n.setHandler(b, [this](net::Frame &&f) {
            delivered.push_back(std::move(f));
        });
    }

    static net::NetworkConfig
    makeCfg()
    {
        net::NetworkConfig c;
        c.linkLatency = usec(3);
        c.switchLatency = usec(1);
        c.bytesPerUsec = 100.0;
        return c;
    }

    net::Frame
    frame(std::uint64_t bytes)
    {
        net::Frame f;
        f.srcPort = a;
        f.dstPort = b;
        f.bytes = bytes;
        return f;
    }
};

} // namespace

TEST(Network, DeliversWithLatencyAndSerialization)
{
    World w;
    w.n.send(w.frame(1000)); // 10 us serialization per link
    w.s.runUntil(sec(1));
    ASSERT_EQ(w.delivered.size(), 1u);
    // tx 10 + link 3 + switch 1 + rx 10 + link 3 = 27 us
    EXPECT_EQ(w.n.delivered(), 1u);
}

TEST(Network, DeliveryTimeMatchesModel)
{
    World w;
    Tick at = 0;
    w.n.setHandler(w.b, [&](net::Frame &&) { at = w.s.now(); });
    w.n.send(w.frame(1000));
    w.s.runUntil(sec(1));
    EXPECT_EQ(at, usec(27));
}

TEST(Network, SerializationChargesPartialMicroseconds)
{
    // 150 bytes at 100 B/us occupies the wire for 2 us, not 1: the
    // fractional final microsecond must round up, not truncate.
    World w;
    Tick at = 0;
    w.n.setHandler(w.b, [&](net::Frame &&) { at = w.s.now(); });
    w.n.send(w.frame(150));
    w.s.runUntil(sec(1));
    // tx 2 + link 3 + switch 1 + rx 2 + link 3 = 11 us
    EXPECT_EQ(at, usec(11));

    // Exact multiples are unaffected, and a sub-microsecond frame still
    // costs the 1-tick minimum.
    at = 0;
    w.n.send(w.frame(100));
    w.s.runUntil(sec(2));
    EXPECT_EQ(at, sec(1) + usec(9));
    at = 0;
    w.n.send(w.frame(1));
    w.s.runUntil(sec(3));
    EXPECT_EQ(at, sec(2) + usec(9));
}

TEST(Network, BackToBackFramesSerialize)
{
    World w;
    std::vector<Tick> at;
    w.n.setHandler(w.b, [&](net::Frame &&) { at.push_back(w.s.now()); });
    w.n.send(w.frame(1000));
    w.n.send(w.frame(1000));
    w.s.runUntil(sec(1));
    ASSERT_EQ(at.size(), 2u);
    // Second frame waits for the first on both links.
    EXPECT_GE(at[1], at[0] + usec(10));
}

TEST(Network, OutcomeTrueOnDelivery)
{
    World w;
    int outcome = -1;
    w.n.send(w.frame(100), [&](bool ok) { outcome = ok ? 1 : 0; });
    w.s.runUntil(sec(1));
    EXPECT_EQ(outcome, 1);
}

TEST(Network, DropsWhenSrcLinkDown)
{
    World w;
    int outcome = -1;
    w.n.setLinkUp(w.a, false);
    w.n.send(w.frame(100), [&](bool ok) { outcome = ok ? 1 : 0; });
    w.s.runUntil(sec(1));
    EXPECT_EQ(outcome, 0);
    EXPECT_TRUE(w.delivered.empty());
    EXPECT_EQ(w.n.dropped(), 1u);
}

TEST(Network, DropsWhenDstLinkDown)
{
    World w;
    w.n.setLinkUp(w.b, false);
    w.n.send(w.frame(100));
    w.s.runUntil(sec(1));
    EXPECT_TRUE(w.delivered.empty());
}

TEST(Network, DropsWhenSwitchDown)
{
    World w;
    w.n.setSwitchUp(false);
    w.n.send(w.frame(100));
    w.s.runUntil(sec(1));
    EXPECT_TRUE(w.delivered.empty());
    w.n.setSwitchUp(true);
    w.n.send(w.frame(100));
    w.s.runUntil(sec(2));
    EXPECT_EQ(w.delivered.size(), 1u);
}

TEST(Network, DropsWhenDstPortDown)
{
    World w;
    w.n.setPortUp(w.b, false);
    w.n.send(w.frame(100));
    w.s.runUntil(sec(1));
    EXPECT_TRUE(w.delivered.empty());
}

TEST(Network, DropsFrameInFlightWhenComponentDies)
{
    World w;
    int outcome = -1;
    w.n.send(w.frame(100), [&](bool ok) { outcome = ok ? 1 : 0; });
    // Take the switch down before the frame arrives.
    w.s.scheduleIn(usec(1), [&] { w.n.setSwitchUp(false); });
    w.s.runUntil(sec(1));
    EXPECT_EQ(outcome, 0);
    EXPECT_TRUE(w.delivered.empty());
}

TEST(Network, DropOutcomeArrivesQuickly)
{
    World w;
    Tick at = 0;
    w.n.setSwitchUp(false);
    w.n.send(w.frame(100), [&](bool) { at = w.s.now(); });
    w.s.runUntil(sec(1));
    // Hardware-ack timeout is RTT-scale, far below protocol timers.
    EXPECT_LE(at, msec(1));
    EXPECT_GT(at, 0u);
}

TEST(Network, PortStatsCountTrafficAndDropCauses)
{
    World w;
    w.n.send(w.frame(1000)); // delivered
    w.s.runUntil(msec(1));

    w.n.setPortUp(w.b, false); // dead destination host
    w.n.send(w.frame(100));
    w.n.setPortUp(w.b, true);

    w.n.setLinkUp(w.a, false); // cut uplink
    w.n.send(w.frame(100));
    w.n.setLinkUp(w.a, true);

    w.n.setSwitchUp(false); // dead switch
    w.n.send(w.frame(100));
    w.n.setSwitchUp(true);

    // Accepted onto the wire, then the switch dies mid-flight.
    w.n.send(w.frame(100));
    w.s.scheduleIn(usec(1), [&] { w.n.setSwitchUp(false); });
    w.s.runUntil(sec(1));

    const net::PortStats &sa = w.n.portStats(w.a);
    EXPECT_EQ(sa.framesSent, 2u); // the delivery and the in-flight death
    EXPECT_EQ(sa.bytesSent, 1100u);
    EXPECT_EQ(sa.framesReceived, 0u);
    EXPECT_EQ(sa.dropPortDown, 1u);
    EXPECT_EQ(sa.dropLinkDown, 1u);
    EXPECT_EQ(sa.dropSwitchDown, 1u);
    EXPECT_EQ(sa.dropDiedInFlight, 1u);
    EXPECT_EQ(sa.drops(), 4u);

    const net::PortStats &sb = w.n.portStats(w.b);
    EXPECT_EQ(sb.framesSent, 0u);
    EXPECT_EQ(sb.framesReceived, 1u);
    EXPECT_EQ(sb.bytesReceived, 1000u);
    EXPECT_EQ(sb.drops(), 0u); // drops charge the sender, not the target
}

TEST(Network, PayloadSurvivesTransit)
{
    World w;
    auto body = w.s.makePayload<int>(1234);
    net::Frame f = w.frame(64);
    f.payload = body;
    f.kind = 9;
    f.conn = 77;
    w.n.send(std::move(f));
    w.s.runUntil(sec(1));
    ASSERT_EQ(w.delivered.size(), 1u);
    EXPECT_EQ(w.delivered[0].kind, 9u);
    EXPECT_EQ(w.delivered[0].conn, 77u);
    EXPECT_EQ(*w.delivered[0].payload.get<int>(), 1234);
}
