/**
 * @file
 * Unit tests for the TCP model: connection lifecycle, reliable
 * delivery across faults, back-pressure, abort timeouts, RST
 * semantics, stream desync, and kernel-memory coupling.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hh"
#include "os/node.hh"
#include "proto/tcp.hh"
#include "sim/simulation.hh"

using namespace performa;
using namespace performa::sim;
using proto::AppMessage;
using proto::SendStatus;

namespace {

struct Endpoint
{
    std::unique_ptr<osim::Node> node;
    std::unique_ptr<proto::TcpComm> tcp;
    std::vector<AppMessage> received;
    std::vector<NodeId> broken;
    std::vector<NodeId> connected;
    std::vector<NodeId> connectFailed;
    std::vector<std::string> fatal;
    int sendReady = 0;
    std::vector<std::uint32_t> datagrams;
};

struct TcpWorld
{
    Simulation s{1};
    net::Network intra{s};
    net::Network client{s};
    std::vector<Endpoint> eps;

    explicit TcpWorld(int n = 2, proto::TcpConfig cfg = {})
    {
        std::unordered_map<NodeId, net::PortId> ports;
        std::vector<net::PortId> cports;
        for (int i = 0; i < n; ++i) {
            ports[static_cast<NodeId>(i)] = intra.addPort();
            cports.push_back(client.addPort());
        }
        eps.resize(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            auto id = static_cast<NodeId>(i);
            auto &e = eps[static_cast<std::size_t>(i)];
            e.node = std::make_unique<osim::Node>(
                s, id, intra, ports[id], client,
                cports[static_cast<std::size_t>(i)]);
            e.tcp = std::make_unique<proto::TcpComm>(*e.node, cfg, ports);
            proto::CommCallbacks cbs;
            cbs.onMessage = [&e](NodeId peer, AppMessage &&m) {
                (void)peer;
                e.received.push_back(std::move(m));
            };
            cbs.onPeerBroken = [&e](NodeId p, proto::BreakReason) {
                e.broken.push_back(p);
            };
            cbs.onPeerConnected = [&e](NodeId p) {
                e.connected.push_back(p);
            };
            cbs.onConnectFailed = [&e](NodeId p) {
                e.connectFailed.push_back(p);
            };
            cbs.onSendReady = [&e] { ++e.sendReady; };
            cbs.onFatalError = [&e](const std::string &r) {
                e.fatal.push_back(r);
            };
            cbs.onDatagram = [&e](NodeId, std::uint32_t kind,
                                  sim::RcAny) {
                e.datagrams.push_back(kind);
            };
            e.tcp->setCallbacks(std::move(cbs));
            e.tcp->start();
        }
    }

    AppMessage
    msg(std::uint64_t bytes, std::uint32_t type = 1)
    {
        AppMessage m;
        m.type = type;
        m.bytes = bytes;
        return m;
    }
};

} // namespace

TEST(Tcp, ConnectEstablishesBothEnds)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    EXPECT_TRUE(w.eps[0].tcp->connected(1));
    EXPECT_TRUE(w.eps[1].tcp->connected(0));
    ASSERT_EQ(w.eps[0].connected.size(), 1u);
    ASSERT_EQ(w.eps[1].connected.size(), 1u);
}

TEST(Tcp, ConnectToDeadListenerFails)
{
    TcpWorld w;
    w.eps[1].tcp->shutdown(); // not listening
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(5));
    EXPECT_FALSE(w.eps[0].tcp->connected(1));
    EXPECT_EQ(w.eps[0].connectFailed.size(), 1u);
}

TEST(Tcp, ConnectToDownNodeTimesOut)
{
    TcpWorld w;
    w.eps[1].node->crash(sec(60));
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(30));
    EXPECT_EQ(w.eps[0].connectFailed.size(), 1u);
}

TEST(Tcp, SendWithoutConnectionIsRejected)
{
    TcpWorld w;
    EXPECT_EQ(w.eps[0].tcp->send(1, w.msg(100), {}),
              SendStatus::NotConnected);
}

TEST(Tcp, DeliversMessagesInOrder)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(w.eps[0].tcp->send(1, w.msg(1000, i), {}),
                  SendStatus::Ok);
    w.s.runUntil(sec(2));
    ASSERT_EQ(w.eps[1].received.size(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(w.eps[1].received[i].type, i);
}

TEST(Tcp, NullPointerFailsSynchronouslyWithEfault)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    proto::SendParams params;
    params.nullPointer = true;
    EXPECT_EQ(w.eps[0].tcp->send(1, w.msg(100), params),
              SendStatus::Efault);
    w.s.runUntil(sec(2));
    EXPECT_TRUE(w.eps[1].received.empty());
    EXPECT_TRUE(w.eps[1].fatal.empty());
}

TEST(Tcp, OffByNDesyncIsFatalAtReceiverOnly)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    proto::SendParams params;
    params.sizeDelta = 16;
    EXPECT_EQ(w.eps[0].tcp->send(1, w.msg(1000), params),
              SendStatus::Ok);
    w.s.runUntil(sec(2));
    EXPECT_EQ(w.eps[1].fatal.size(), 1u);
    EXPECT_TRUE(w.eps[0].fatal.empty());
    EXPECT_TRUE(w.eps[1].received.empty());
}

TEST(Tcp, SurvivesShortLinkFlapViaRetransmission)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    w.intra.setLinkUp(1, false);
    EXPECT_EQ(w.eps[0].tcp->send(1, w.msg(1000), {}), SendStatus::Ok);
    w.s.runUntil(sec(5));
    EXPECT_TRUE(w.eps[1].received.empty());
    w.intra.setLinkUp(1, true);
    w.s.runUntil(sec(80)); // within backoff reach
    EXPECT_EQ(w.eps[1].received.size(), 1u);
    EXPECT_TRUE(w.eps[0].broken.empty()); // no false positive
}

TEST(Tcp, AbortsAfterRetransmissionTimeout)
{
    proto::TcpConfig cfg;
    cfg.abortTimeout = sec(30); // shortened for the test
    TcpWorld w(2, cfg);
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    w.intra.setLinkUp(1, false);
    w.eps[0].tcp->send(1, w.msg(1000), {});
    w.s.runUntil(sec(120));
    ASSERT_EQ(w.eps[0].broken.size(), 1u);
    EXPECT_EQ(w.eps[0].broken[0], 1u);
    EXPECT_FALSE(w.eps[0].tcp->connected(1));
}

TEST(Tcp, PeerProcessExitSendsRst)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    w.eps[1].tcp->shutdown(); // graceful exit closes sockets
    w.s.runUntil(sec(2));
    ASSERT_EQ(w.eps[0].broken.size(), 1u);
}

TEST(Tcp, RebootedPeerAnswersStaleTrafficWithRst)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    w.eps[1].node->crash(sec(20));
    w.eps[0].tcp->send(1, w.msg(1000), {});
    w.s.runUntil(sec(10));
    EXPECT_TRUE(w.eps[0].broken.empty()); // silence, still retrying
    w.s.runUntil(sec(120)); // reboot + next retransmission -> RST
    ASSERT_EQ(w.eps[0].broken.size(), 1u);
}

TEST(Tcp, SenderBlocksWhenBufferFullAndUnblocksOnDrain)
{
    proto::TcpConfig cfg;
    cfg.sndBufBytes = 4 * 1024;
    TcpWorld w(2, cfg);
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    w.intra.setLinkUp(1, false); // nothing drains
    int ok = 0;
    SendStatus st = SendStatus::Ok;
    while (st == SendStatus::Ok && ok < 100) {
        st = w.eps[0].tcp->send(1, w.msg(1024), {});
        if (st == SendStatus::Ok)
            ++ok;
    }
    EXPECT_EQ(st, SendStatus::WouldBlock);
    EXPECT_GT(ok, 0);
    EXPECT_LT(ok, 10);
    w.intra.setLinkUp(1, true);
    w.s.runUntil(sec(120));
    EXPECT_GE(w.eps[0].sendReady, 1);
    EXPECT_EQ(w.eps[1].received.size(),
              static_cast<std::size_t>(ok));
}

TEST(Tcp, ReceiverStopsAckingWhenAppStopsReceiving)
{
    proto::TcpConfig cfg;
    cfg.rcvQueueMsgs = 4;
    cfg.sndBufBytes = 6 * 1024;
    TcpWorld w(2, cfg);
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    w.eps[1].tcp->setAppReceiving(false); // SIGSTOP
    SendStatus st = SendStatus::Ok;
    int sent = 0;
    while (st == SendStatus::Ok && sent < 100) {
        st = w.eps[0].tcp->send(1, w.msg(1024), {});
        if (st == SendStatus::Ok)
            ++sent;
        w.s.runUntil(w.s.now() + sec(1));
    }
    // Receiver queue (4) filled, then the sender's buffer backed up.
    EXPECT_EQ(st, SendStatus::WouldBlock);
    EXPECT_TRUE(w.eps[1].received.empty());
    w.eps[1].tcp->setAppReceiving(true); // SIGCONT
    w.s.runUntil(w.s.now() + sec(200));
    EXPECT_EQ(w.eps[1].received.size(), static_cast<std::size_t>(sent));
}

TEST(Tcp, FrozenNodeNeitherAcksNorProcesses)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    w.eps[1].node->freeze(sec(30));
    w.eps[0].tcp->send(1, w.msg(1000), {});
    w.s.runUntil(sec(20));
    EXPECT_TRUE(w.eps[1].received.empty());
    EXPECT_TRUE(w.eps[0].broken.empty());
    w.s.runUntil(sec(120)); // unfreeze + retransmission delivers
    EXPECT_EQ(w.eps[1].received.size(), 1u);
}

TEST(Tcp, DatagramsDelivered)
{
    TcpWorld w;
    w.eps[0].tcp->sendDatagram(1, 42);
    w.s.runUntil(sec(1));
    ASSERT_EQ(w.eps[1].datagrams.size(), 1u);
    EXPECT_EQ(w.eps[1].datagrams[0], 42u);
}

TEST(Tcp, DatagramsBlockedByKernelMemoryFault)
{
    TcpWorld w;
    w.eps[0].node->kernelMem().setFailInjected(true);
    w.eps[0].tcp->sendDatagram(1, 42);
    w.s.runUntil(sec(1));
    EXPECT_TRUE(w.eps[1].datagrams.empty());
}

TEST(Tcp, KernelMemoryFaultStallsOutboundUntilCleared)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    w.eps[0].node->kernelMem().setFailInjected(true);
    EXPECT_EQ(w.eps[0].tcp->send(1, w.msg(1000), {}), SendStatus::Ok);
    w.s.runUntil(sec(10));
    EXPECT_TRUE(w.eps[1].received.empty()); // queued in the OS
    w.eps[0].node->kernelMem().setFailInjected(false);
    w.s.runUntil(sec(20));
    EXPECT_EQ(w.eps[1].received.size(), 1u);
}

TEST(Tcp, InboundDroppedDuringKernelMemoryFault)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    w.eps[1].node->kernelMem().setFailInjected(true);
    w.eps[0].tcp->send(1, w.msg(1000), {});
    w.s.runUntil(sec(5));
    EXPECT_TRUE(w.eps[1].received.empty());
    w.eps[1].node->kernelMem().setFailInjected(false);
    w.s.runUntil(sec(80)); // retransmission gets through
    EXPECT_EQ(w.eps[1].received.size(), 1u);
}

TEST(Tcp, DisconnectResetsPeerWithoutLocalCallback)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    w.eps[0].tcp->disconnect(1);
    w.s.runUntil(sec(2));
    EXPECT_FALSE(w.eps[0].tcp->connected(1));
    EXPECT_TRUE(w.eps[0].broken.empty());   // app-initiated
    ASSERT_EQ(w.eps[1].broken.size(), 1u);  // peer saw the RST
}

TEST(Tcp, SendCostScalesWithSize)
{
    TcpWorld w;
    auto &tcp = *w.eps[0].tcp;
    EXPECT_GT(tcp.sendCost(8192), tcp.sendCost(256));
}

TEST(Tcp, VanishLeavesNoState)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(sec(1));
    w.eps[0].tcp->vanish();
    EXPECT_FALSE(w.eps[0].tcp->connected(1));
    // Peer discovers only via its own traffic (RST for unknown conn).
    w.eps[1].tcp->send(0, w.msg(100), {});
    w.s.runUntil(sec(2));
    EXPECT_EQ(w.eps[1].broken.size(), 1u);
}

TEST(Tcp, SimultaneousConnectsConvergeOnOneConnection)
{
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.eps[1].tcp->connect(0);
    w.s.runUntil(sec(5));
    ASSERT_TRUE(w.eps[0].tcp->connected(1));
    ASSERT_TRUE(w.eps[1].tcp->connected(0));
    w.eps[0].tcp->send(1, w.msg(512), {});
    w.eps[1].tcp->send(0, w.msg(512), {});
    w.s.runUntil(sec(6));
    EXPECT_EQ(w.eps[1].received.size(), 1u);
    EXPECT_EQ(w.eps[0].received.size(), 1u);
    EXPECT_TRUE(w.eps[0].broken.empty());
    EXPECT_TRUE(w.eps[1].broken.empty());
}

TEST(Tcp, RetransmitSharesPooledPayloadWithoutUseAfterFree)
{
    // The ABA/use-after-free trap of the payload pool: one pooled body
    // is created at send() time and every retransmission attaches the
    // SAME handle to its wire frame. Each dropped frame releases a
    // reference; if any release wrongly freed the block, the churn
    // below would recycle and scribble over it (and ASan would bite).
    TcpWorld w;
    w.eps[0].tcp->connect(1);
    w.s.runUntil(msec(100));
    ASSERT_TRUE(w.eps[0].tcp->connected(1));

    auto body = w.s.makePayload<std::vector<std::uint64_t>>(
        std::vector<std::uint64_t>(64, 0xA11CE));
    sim::RcAny watch = body; // observer reference on the body block

    AppMessage m = w.msg(4096, 7);
    m.body = std::move(body);

    w.intra.setSwitchUp(false);
    ASSERT_EQ(w.eps[0].tcp->send(1, std::move(m), {}), SendStatus::Ok);

    std::uint64_t drops0 = w.intra.dropped();
    // Churn the pool while the RTO clock doubles through ~5 s of
    // drops, so a wrongly recycled block would get reused.
    for (int i = 1; i <= 5; ++i) {
        w.s.scheduleIn(sec(static_cast<sim::Tick>(i)), [&w] {
            for (int j = 0; j < 32; ++j)
                w.s.makePayload<std::vector<std::uint64_t>>(
                    std::vector<std::uint64_t>(64, 0xDEAD));
        });
    }
    w.s.runUntil(w.s.now() + sec(5));
    EXPECT_GT(w.intra.dropped(), drops0 + 2); // original + retransmits
    EXPECT_TRUE(w.eps[1].received.empty());
    // Queued OutMsg still owns the payload: us + the sender's message.
    EXPECT_EQ(watch.refCount(), 2u);

    w.intra.setSwitchUp(true);
    w.s.runUntil(w.s.now() + sec(30)); // next RTO delivers; ack returns

    ASSERT_EQ(w.eps[1].received.size(), 1u);
    const AppMessage &got = w.eps[1].received[0];
    EXPECT_EQ(got.type, 7u);
    auto *v = got.body.get<std::vector<std::uint64_t>>();
    ASSERT_NE(v, nullptr);
    ASSERT_EQ(v->size(), 64u);
    EXPECT_EQ(v->front(), 0xA11CEull);
    EXPECT_EQ(v->back(), 0xA11CEull);
    // Sender side released at ack: the observer and the delivered copy.
    EXPECT_EQ(watch.refCount(), 2u);
    w.eps[1].received.clear();
    EXPECT_EQ(watch.refCount(), 1u);
}
