/**
 * @file
 * Tests for the phase-1 experiment runner, stage extraction, and the
 * behaviour database round-trip.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "exp/behavior_db.hh"
#include "exp/replicate.hh"
#include "exp/stages.hh"

using namespace performa;
using namespace performa::sim;

namespace {

/** A fast, small experiment (low load, short run). */
exp::ExperimentConfig
fastConfig(press::Version v, fault::FaultKind k)
{
    exp::ExperimentConfig cfg;
    cfg.cluster.press.version = v;
    cfg.workload.requestRate = 1200;
    cfg.workload.numFiles = 20000;
    cfg.injectAt = sec(20);
    fault::FaultSpec spec;
    spec.kind = k;
    spec.target = 3;
    spec.duration = sec(30);
    cfg.fault = spec;
    cfg.duration = sec(110);
    return cfg;
}

} // namespace

TEST(Experiment, FaultFreeRunIsCleanAndStable)
{
    exp::ExperimentConfig cfg;
    cfg.cluster.press.version = press::Version::TcpPress;
    cfg.workload.requestRate = 1200;
    cfg.workload.numFiles = 20000;
    cfg.fault.reset();
    cfg.duration = sec(60);
    exp::ExperimentResult res = exp::runExperiment(cfg);
    EXPECT_GT(res.normalThroughput, 1000);
    EXPECT_GT(res.availability, 0.99);
    EXPECT_FALSE(res.endSplintered);
    EXPECT_EQ(res.markers.count(exp::MarkerKind::Inject), 0u);
    EXPECT_EQ(res.markers.count(exp::MarkerKind::Started), 4u);
}

TEST(Experiment, MarkersRecordInjectAndRecover)
{
    auto cfg = fastConfig(press::Version::ViaPress0,
                          fault::FaultKind::KernelMemAlloc);
    exp::ExperimentResult res = exp::runExperiment(cfg);
    EXPECT_EQ(res.markers.count(exp::MarkerKind::Inject), 1u);
    EXPECT_EQ(res.markers.count(exp::MarkerKind::Recover), 1u);
    auto inj = res.markers.firstAfter(exp::MarkerKind::Inject, 0);
    ASSERT_TRUE(inj.has_value());
    EXPECT_EQ(inj->t, sec(20));
}

TEST(Experiment, IntraPortStatsAccountForClusterTraffic)
{
    auto cfg = fastConfig(press::Version::TcpPress,
                          fault::FaultKind::NodeCrash);
    exp::ExperimentResult res = exp::runExperiment(cfg);
    ASSERT_EQ(res.intraPortStats.size(),
              static_cast<std::size_t>(cfg.cluster.press.numNodes));
    std::uint64_t sent = 0, rcvd = 0, died = 0, drops = 0;
    for (const net::PortStats &st : res.intraPortStats) {
        EXPECT_GT(st.framesSent, 0u); // every node talks
        sent += st.framesSent;
        rcvd += st.framesReceived;
        died += st.dropDiedInFlight;
        drops += st.drops();
    }
    // Conservation: every accepted frame was delivered or died in
    // flight, except the few still on the wire when the run ends.
    EXPECT_GE(sent, rcvd + died);
    EXPECT_LE(sent - (rcvd + died), 64u);
    EXPECT_GT(drops, 0u); // the crash must have cost some frames

}

TEST(Experiment, DeterministicForSameSeed)
{
    auto cfg = fastConfig(press::Version::TcpPress,
                          fault::FaultKind::AppCrash);
    auto r1 = exp::runExperiment(cfg);
    auto r2 = exp::runExperiment(cfg);
    EXPECT_EQ(r1.served.total(0, cfg.duration),
              r2.served.total(0, cfg.duration));
    EXPECT_EQ(r1.markers.all().size(), r2.markers.all().size());
}

TEST(Experiment, SeedChangesJitterButNotShape)
{
    auto cfg = fastConfig(press::Version::TcpPress,
                          fault::FaultKind::AppCrash);
    auto r1 = exp::runExperiment(cfg);
    cfg.seed = 1234;
    auto r2 = exp::runExperiment(cfg);
    EXPECT_NEAR(r1.normalThroughput, r2.normalThroughput,
                0.1 * r1.normalThroughput);
}

TEST(Experiment, OperatorResetRestoresCluster)
{
    auto cfg = fastConfig(press::Version::ViaPress0,
                          fault::FaultKind::LinkDown);
    cfg.operatorResetAt = sec(70);
    exp::ExperimentResult res = exp::runExperiment(cfg);
    EXPECT_EQ(res.markers.count(exp::MarkerKind::OperatorReset), 1u);
    EXPECT_FALSE(res.endSplintered);
    // Post-reset throughput back near normal.
    double tail = res.served.meanRate(sec(90), sec(110));
    EXPECT_GT(tail, 0.9 * res.normalThroughput);
}

TEST(StageExtraction, DetectedFaultHasShortStageA)
{
    auto cfg = fastConfig(press::Version::ViaPress0,
                          fault::FaultKind::LinkDown);
    auto res = exp::runExperiment(cfg);
    auto mb = exp::extractBehavior(res, *cfg.fault);
    EXPECT_TRUE(mb.detected);
    EXPECT_LT(mb.dur[model::StageA], 1.0); // connection break: instant
    EXPECT_FALSE(mb.healed);               // splintered
}

TEST(StageExtraction, UndetectedStallCoversFault)
{
    auto cfg = fastConfig(press::Version::TcpPress,
                          fault::FaultKind::KernelMemAlloc);
    auto res = exp::runExperiment(cfg);
    auto mb = exp::extractBehavior(res, *cfg.fault);
    EXPECT_FALSE(mb.detected);
    EXPECT_NEAR(mb.dur[model::StageA], 30.0, 0.5);
    EXPECT_LT(mb.tput[model::StageA], 0.2 * mb.normalTput);
    EXPECT_TRUE(mb.healed);
    EXPECT_DOUBLE_EQ(mb.tput[model::StageE], mb.normalTput);
}

TEST(StageExtraction, BenignFaultLooksLikeNormalOperation)
{
    auto cfg = fastConfig(press::Version::ViaPress0,
                          fault::FaultKind::KernelMemAlloc);
    auto res = exp::runExperiment(cfg);
    auto mb = exp::extractBehavior(res, *cfg.fault);
    EXPECT_TRUE(mb.healed);
    EXPECT_GT(mb.tput[model::StageA], 0.95 * mb.normalTput);
}

TEST(BehaviorDb, SetGetHas)
{
    exp::BehaviorDb db;
    EXPECT_FALSE(db.has(press::Version::TcpPress,
                        fault::FaultKind::LinkDown));
    model::MeasuredBehavior mb;
    mb.normalTput = 4242;
    db.set(press::Version::TcpPress, fault::FaultKind::LinkDown, mb);
    EXPECT_TRUE(db.has(press::Version::TcpPress,
                       fault::FaultKind::LinkDown));
    EXPECT_DOUBLE_EQ(db.get(press::Version::TcpPress,
                            fault::FaultKind::LinkDown)
                         .normalTput,
                     4242);
}

TEST(BehaviorDb, CsvRoundTrip)
{
    exp::BehaviorDb db;
    model::MeasuredBehavior mb;
    mb.normalTput = 5000.5;
    mb.detected = true;
    mb.healed = false;
    for (int s = 0; s < model::numStages; ++s) {
        mb.tput[static_cast<std::size_t>(s)] = 100.0 * s;
        mb.dur[static_cast<std::size_t>(s)] = 1.5 * s;
    }
    db.set(press::Version::ViaPress3, fault::FaultKind::NodeFreeze, mb);

    std::string path = ::testing::TempDir() + "/behaviors.csv";
    db.save(path);

    exp::BehaviorDb loaded;
    ASSERT_TRUE(loaded.load(path));
    const auto &got = loaded.get(press::Version::ViaPress3,
                                 fault::FaultKind::NodeFreeze);
    EXPECT_DOUBLE_EQ(got.normalTput, 5000.5);
    EXPECT_TRUE(got.detected);
    EXPECT_FALSE(got.healed);
    for (int s = 0; s < model::numStages; ++s) {
        EXPECT_DOUBLE_EQ(got.tput[static_cast<std::size_t>(s)],
                         100.0 * s);
        EXPECT_DOUBLE_EQ(got.dur[static_cast<std::size_t>(s)], 1.5 * s);
    }
    std::remove(path.c_str());
}

TEST(BehaviorDb, LoadMissingFileReturnsFalse)
{
    exp::BehaviorDb db;
    EXPECT_FALSE(db.load("/nonexistent/behaviors.csv"));
}

TEST(BehaviorDb, LookupAdapterFetchesRows)
{
    exp::BehaviorDb db;
    model::MeasuredBehavior mb;
    mb.normalTput = 7;
    db.set(press::Version::TcpPress, fault::FaultKind::AppCrash, mb);
    auto lookup = db.lookup();
    EXPECT_DOUBLE_EQ(
        lookup(press::Version::TcpPress, fault::FaultKind::AppCrash)
            .normalTput,
        7);
}

TEST(Replication, AggregatesAcrossSeeds)
{
    auto cfg = fastConfig(press::Version::ViaPress0,
                          fault::FaultKind::LinkDown);
    exp::BehaviorEnsemble e =
        exp::replicateBehavior(cfg, {1, 2, 3});
    EXPECT_EQ(e.runs, 3);
    EXPECT_TRUE(e.mean.detected);
    EXPECT_FALSE(e.mean.healed);
    EXPECT_TRUE(e.unanimous());
    EXPECT_GT(e.mean.normalTput, 1000);
    // Seeds jitter throughput by a couple percent at most.
    EXPECT_LT(e.tnStddev, 0.05 * e.mean.normalTput);
}

TEST(ServerStats, CountersExplainTheWorkload)
{
    exp::ExperimentConfig cfg;
    cfg.cluster.press.version = press::Version::TcpPress;
    cfg.workload.requestRate = 1200;
    cfg.workload.numFiles = 20000;
    cfg.fault.reset();
    cfg.duration = sec(30);

    sim::Simulation sim(cfg.seed);
    press::Cluster cluster(sim, cfg.cluster);
    wl::ClientFarm farm(sim, cluster.clientNet(),
                        cluster.serverClientPorts(),
                        cluster.clientMachinePorts(), cfg.workload);
    cluster.startAll();
    sim.runUntil(sec(2));
    cluster.prewarm(cfg.workload.numFiles);
    farm.start();
    sim.runUntil(sec(30));

    std::uint64_t accepted = 0, responses = 0, hits = 0, fwd = 0;
    for (std::uint32_t i = 0; i < 4; ++i) {
        const auto &st = cluster.server(i).stats();
        accepted += st.accepted;
        responses += st.responses;
        hits += st.localHits;
        fwd += st.forwarded;
        // Dispatch outcomes partition the accepted requests.
        EXPECT_EQ(st.accepted,
                  st.localHits + st.forwarded + st.localMisses);
        EXPECT_EQ(st.refused, 0u);
    }
    EXPECT_EQ(responses, farm.totalServed());
    EXPECT_GT(accepted, 0u);
    // Round-robin DNS over a striped cache: ~25% local, ~75% forwarded.
    double fwd_rate = double(fwd) / double(hits + fwd);
    EXPECT_NEAR(fwd_rate, 0.75, 0.05);
}
