/**
 * @file
 * Unit tests for the kernel memory allocator and the pinnable-page
 * accountant — the two resource-exhaustion fault targets.
 */

#include <gtest/gtest.h>

#include "os/memory.hh"

using namespace performa::osim;

TEST(KernelMemory, AllocatesWithinCapacity)
{
    KernelMemory km(1000);
    EXPECT_TRUE(km.alloc(400));
    EXPECT_TRUE(km.alloc(600));
    EXPECT_EQ(km.used(), 1000u);
    EXPECT_FALSE(km.alloc(1));
}

TEST(KernelMemory, FreeReturnsCapacity)
{
    KernelMemory km(1000);
    EXPECT_TRUE(km.alloc(800));
    km.free(300);
    EXPECT_EQ(km.used(), 500u);
    EXPECT_TRUE(km.alloc(500));
}

TEST(KernelMemory, FreeClampsAtZero)
{
    KernelMemory km(1000);
    km.free(50);
    EXPECT_EQ(km.used(), 0u);
}

TEST(KernelMemory, InjectedFaultFailsAllAllocations)
{
    KernelMemory km(1000);
    km.setFailInjected(true);
    EXPECT_FALSE(km.alloc(1));
    EXPECT_TRUE(km.failInjected());
    km.setFailInjected(false);
    EXPECT_TRUE(km.alloc(1));
}

TEST(KernelMemory, ResetClearsEverything)
{
    KernelMemory km(1000);
    km.alloc(999);
    km.setFailInjected(true);
    km.reset();
    EXPECT_EQ(km.used(), 0u);
    EXPECT_FALSE(km.failInjected());
    EXPECT_TRUE(km.alloc(1000));
}

TEST(PinManager, PinsUpToLimit)
{
    PinManager pm(100);
    EXPECT_TRUE(pm.pin(60));
    EXPECT_TRUE(pm.pin(40));
    EXPECT_FALSE(pm.pin(1));
    EXPECT_EQ(pm.pinned(), 100u);
}

TEST(PinManager, UnpinFreesBudget)
{
    PinManager pm(100);
    pm.pin(100);
    pm.unpin(30);
    EXPECT_TRUE(pm.pin(30));
    pm.unpin(1000); // clamps
    EXPECT_EQ(pm.pinned(), 0u);
}

TEST(PinManager, InjectedLimitLowersThreshold)
{
    PinManager pm(1000);
    EXPECT_TRUE(pm.pin(500));
    pm.setInjectedLimit(400);
    // Already above the new threshold: every new pin fails.
    EXPECT_FALSE(pm.pin(1));
    pm.unpin(200); // 300 pinned now, below 400
    EXPECT_TRUE(pm.pin(100));
    EXPECT_FALSE(pm.pin(1));
    pm.setInjectedLimit(~std::uint64_t(0));
    EXPECT_TRUE(pm.pin(600));
}

TEST(PinManager, InjectedLimitAboveRealLimitHasNoEffect)
{
    PinManager pm(100);
    pm.setInjectedLimit(500);
    EXPECT_EQ(pm.effectiveLimit(), 100u);
}

TEST(PinManager, ResetRestoresCleanState)
{
    PinManager pm(100);
    pm.pin(80);
    pm.setInjectedLimit(10);
    pm.reset();
    EXPECT_EQ(pm.pinned(), 0u);
    EXPECT_EQ(pm.effectiveLimit(), 100u);
}

/** Property sweep: pinned never exceeds the effective limit. */
class PinSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(PinSweep, NeverExceedsEffectiveLimit)
{
    PinManager pm(1 << 20);
    pm.setInjectedLimit(GetParam());
    std::uint64_t sizes[] = {4096, 8192, 65536, 1 << 18};
    for (int i = 0; i < 200; ++i) {
        pm.pin(sizes[i % 4]);
        EXPECT_LE(pm.pinned(), pm.effectiveLimit());
        if (i % 7 == 0)
            pm.unpin(sizes[(i + 1) % 4]);
    }
}

INSTANTIATE_TEST_SUITE_P(Limits, PinSweep,
                         ::testing::Values(16384, 262144, 1u << 20));
