/**
 * @file
 * Unit tests for the bad-parameter interposition layer: one-shot
 * corruption of send parameters, receive-side descriptor corruption,
 * and transparent pass-through otherwise.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hh"
#include "os/node.hh"
#include "proto/interpose.hh"
#include "proto/tcp.hh"
#include "sim/simulation.hh"

using namespace performa;
using namespace performa::sim;
using proto::AppMessage;
using proto::Corruption;
using proto::SendStatus;

namespace {

struct InterposeWorld
{
    Simulation s{1};
    net::Network intra{s};
    net::Network client{s};
    std::unique_ptr<osim::Node> n0, n1;
    std::unique_ptr<proto::FaultInterposer> a;
    std::unique_ptr<proto::TcpComm> b;
    std::vector<AppMessage> received;
    std::vector<std::string> fatalA, fatalB;

    InterposeWorld()
    {
        std::unordered_map<NodeId, net::PortId> ports;
        ports[0] = intra.addPort();
        ports[1] = intra.addPort();
        net::PortId c0 = client.addPort(), c1 = client.addPort();
        n0 = std::make_unique<osim::Node>(s, 0, intra, ports[0], client,
                                          c0);
        n1 = std::make_unique<osim::Node>(s, 1, intra, ports[1], client,
                                          c1);
        a = std::make_unique<proto::FaultInterposer>(
            std::make_unique<proto::TcpComm>(*n0, proto::TcpConfig{},
                                             ports));
        b = std::make_unique<proto::TcpComm>(*n1, proto::TcpConfig{},
                                             ports);

        proto::CommCallbacks cbs_a;
        cbs_a.onFatalError = [this](const std::string &r) {
            fatalA.push_back(r);
        };
        a->setCallbacks(std::move(cbs_a));

        proto::CommCallbacks cbs_b;
        cbs_b.onMessage = [this](NodeId, AppMessage &&m) {
            received.push_back(std::move(m));
        };
        cbs_b.onFatalError = [this](const std::string &r) {
            fatalB.push_back(r);
        };
        b->setCallbacks(std::move(cbs_b));

        a->start();
        b->start();
        a->connect(1);
        s.runUntil(sec(1));
    }

    AppMessage
    msg(std::uint64_t bytes)
    {
        AppMessage m;
        m.type = 1;
        m.bytes = bytes;
        return m;
    }
};

} // namespace

TEST(Interpose, PassThroughWhenUnarmed)
{
    InterposeWorld w;
    EXPECT_EQ(w.a->send(1, w.msg(512), {}), SendStatus::Ok);
    w.s.runUntil(sec(2));
    EXPECT_EQ(w.received.size(), 1u);
    EXPECT_TRUE(w.fatalA.empty());
    EXPECT_TRUE(w.fatalB.empty());
}

TEST(Interpose, ArmedNullPointerHitsNextSendOnly)
{
    InterposeWorld w;
    w.a->armSend(Corruption::NullPointer);
    EXPECT_TRUE(w.a->sendArmed());
    EXPECT_EQ(w.a->send(1, w.msg(512), {}), SendStatus::Efault);
    EXPECT_FALSE(w.a->sendArmed());
    // Next send is clean again.
    EXPECT_EQ(w.a->send(1, w.msg(512), {}), SendStatus::Ok);
    w.s.runUntil(sec(2));
    EXPECT_EQ(w.received.size(), 1u);
}

TEST(Interpose, ArmedOffByNSizeDesyncsStream)
{
    InterposeWorld w;
    w.a->armSend(Corruption::OffByNSize, 24);
    EXPECT_EQ(w.a->send(1, w.msg(512), {}), SendStatus::Ok);
    w.s.runUntil(sec(2));
    EXPECT_TRUE(w.received.empty());
    ASSERT_EQ(w.fatalB.size(), 1u); // receiver-side framing error
}

TEST(Interpose, ArmedOffByNPtrDesyncsStream)
{
    InterposeWorld w;
    w.a->armSend(Corruption::OffByNPtr, 8);
    EXPECT_EQ(w.a->send(1, w.msg(512), {}), SendStatus::Ok);
    w.s.runUntil(sec(2));
    EXPECT_EQ(w.fatalB.size(), 1u);
}

TEST(Interpose, ArmedRecvCorruptsNextDelivery)
{
    InterposeWorld w;
    // Arm the receive side of endpoint A; B sends to A.
    w.b->connect(0);
    w.s.runUntil(sec(2));
    w.a->armRecv(Corruption::NullPointer);
    EXPECT_TRUE(w.a->recvArmed());
    w.b->send(0, w.msg(512), {});
    w.s.runUntil(sec(3));
    ASSERT_EQ(w.fatalA.size(), 1u);
    EXPECT_FALSE(w.a->recvArmed());
}

TEST(Interpose, ForwardsCostsAndState)
{
    InterposeWorld w;
    EXPECT_EQ(w.a->sendCost(4096), w.a->inner().sendCost(4096));
    EXPECT_TRUE(w.a->connected(1));
    w.a->disconnect(1);
    EXPECT_FALSE(w.a->connected(1));
}
