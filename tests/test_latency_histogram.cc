/**
 * @file
 * Unit tests for the log-linear latency histogram and the per-stage
 * slice timeline: empty-histogram semantics, bucket boundaries,
 * relative quantile error, merge associativity, overflow saturation,
 * and window slicing against wall-clock boundaries.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/latency_histogram.hh"

using namespace performa::sim;

TEST(LatencyHistogram, EmptyHistogramHasNaNQuantiles)
{
    LatencyHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
    EXPECT_TRUE(std::isnan(h.quantile(0.99)));
    EXPECT_EQ(h.countAtOrBelow(msec(100)), 0u);
    // An empty window carries no evidence of an SLO violation.
    EXPECT_DOUBLE_EQ(h.fractionAtOrBelow(msec(100)), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, LinearRegionIsExact)
{
    LatencyHistogram h;
    // Below 2^subBucketBits every value has its own bucket.
    for (std::uint64_t v = 0; v < 64; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 64u);
    EXPECT_EQ(h.countAtOrBelow(31), 32u);
    EXPECT_EQ(h.countAtOrBelow(63), 64u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 31.0);
}

TEST(LatencyHistogram, QuantileRelativeErrorIsBounded)
{
    LatencyHistogram h;
    const double maxRel = std::ldexp(1.0, 1 - 6); // 2^(1-S) = 3.125%
    for (std::uint64_t v : {100ull, 1000ull, 12345ull, 999999ull,
                            5000000ull, 30000000ull}) {
        h.clear();
        h.record(v);
        double q = h.quantile(1.0);
        EXPECT_GE(q, static_cast<double>(v));
        EXPECT_LE(q, static_cast<double>(v) * (1.0 + maxRel))
            << "value " << v;
    }
}

TEST(LatencyHistogram, QuantileClampsToMaxRecorded)
{
    LatencyHistogram h;
    h.record(1000);
    // The bucket's upper bound is >= 1000; the quantile must not
    // exceed the largest sample actually seen.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1000.0);
}

TEST(LatencyHistogram, CountAtOrBelowIsBucketGranular)
{
    LatencyHistogram h;
    h.record(10);
    h.record(msec(1));
    h.record(msec(100));
    EXPECT_EQ(h.countAtOrBelow(10), 1u);
    EXPECT_EQ(h.countAtOrBelow(msec(2)), 2u);
    EXPECT_EQ(h.countAtOrBelow(sec(1)), 3u);
    EXPECT_DOUBLE_EQ(h.fractionAtOrBelow(msec(2)), 2.0 / 3.0);
}

TEST(LatencyHistogram, OverflowSaturatesAtMaxValue)
{
    LatencyHistogramConfig cfg;
    cfg.maxValue = sec(1);
    LatencyHistogram h(cfg);
    h.record(sec(5));
    h.record(sec(500));
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.maxRecorded(), sec(500));
    // Overflowed samples only count as within-bound at the recorded
    // maximum and above.
    EXPECT_EQ(h.countAtOrBelow(sec(2)), 0u);
    EXPECT_EQ(h.countAtOrBelow(sec(500)), 2u);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), static_cast<double>(sec(500)));
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative)
{
    auto make = [](std::initializer_list<std::uint64_t> vals) {
        LatencyHistogram h;
        for (std::uint64_t v : vals)
            h.record(v);
        return h;
    };
    LatencyHistogram a = make({10, 200, msec(3)});
    LatencyHistogram b = make({55, msec(40)});
    LatencyHistogram c = make({msec(900), sec(2)});

    LatencyHistogram ab = a;
    ab.merge(b);
    LatencyHistogram ab_c = ab;
    ab_c.merge(c);

    LatencyHistogram bc = b;
    bc.merge(c);
    LatencyHistogram a_bc = a;
    a_bc.merge(bc);

    LatencyHistogram ba = b;
    ba.merge(a);

    EXPECT_EQ(ab_c.count(), a_bc.count());
    EXPECT_EQ(ab_c.maxRecorded(), a_bc.maxRecorded());
    EXPECT_DOUBLE_EQ(ab_c.mean(), a_bc.mean());
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(ab_c.quantile(q), a_bc.quantile(q));
    EXPECT_DOUBLE_EQ(ab.quantile(0.5), ba.quantile(0.5));
}

TEST(LatencyHistogram, WeightedRecordMatchesRepeatedRecord)
{
    LatencyHistogram a, b;
    a.record(msec(7), 10);
    for (int i = 0; i < 10; ++i)
        b.record(msec(7));
    EXPECT_EQ(a.count(), b.count());
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
    EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
}

TEST(LatencyHistogram, ClearResetsEverything)
{
    LatencyHistogram h;
    h.record(msec(5));
    h.clear();
    EXPECT_TRUE(h.empty());
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
    EXPECT_EQ(h.maxRecorded(), 0u);
}

TEST(StageLatencyTimeline, RecordsIntoCumulativeAndSlices)
{
    StageLatencyTimeline tl;
    tl.record(LatencyStage::Total, sec(1), msec(10));
    tl.record(LatencyStage::Total, sec(5), msec(50));
    tl.record(LatencyStage::Connect, sec(1), msec(1));

    EXPECT_EQ(tl.cumulative(LatencyStage::Total).count(), 2u);
    EXPECT_EQ(tl.cumulative(LatencyStage::Connect).count(), 1u);
    EXPECT_EQ(tl.cumulative(LatencyStage::Queue).count(), 0u);
}

TEST(StageLatencyTimeline, WindowSelectsOverlappingSlices)
{
    StageLatencyTimeline tl;
    tl.record(LatencyStage::Total, sec(1), msec(10));
    tl.record(LatencyStage::Total, sec(5), msec(50));
    tl.record(LatencyStage::Total, sec(9), msec(90));

    LatencyHistogram w = tl.window(LatencyStage::Total, sec(4), sec(6));
    EXPECT_EQ(w.count(), 1u);
    EXPECT_DOUBLE_EQ(w.quantile(1.0), static_cast<double>(msec(50)));

    LatencyHistogram all =
        tl.window(LatencyStage::Total, 0, sec(100));
    EXPECT_EQ(all.count(), 3u);

    LatencyHistogram none =
        tl.window(LatencyStage::Total, sec(2), sec(2));
    EXPECT_TRUE(none.empty());
}

TEST(StageLatencyTimeline, ReservedSlicesCoverRecording)
{
    StageLatencyTimeline::Config cfg;
    cfg.reserveSlices = 20;
    StageLatencyTimeline tl(cfg);
    EXPECT_EQ(tl.sliceCount(), 20u);
    tl.record(LatencyStage::Service, sec(19), msec(3));
    EXPECT_EQ(tl.sliceCount(), 20u); // no growth needed
    tl.record(LatencyStage::Service, sec(25), msec(4));
    EXPECT_GE(tl.sliceCount(), 26u); // grew past the reservation
    EXPECT_EQ(tl.cumulative(LatencyStage::Service).count(), 2u);
}
