/**
 * @file
 * Unit tests for the discrete-event engine: ordering, determinism,
 * cancellation, and time-advance semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>
#include <vector>

#include "sim/event_queue.hh"

using namespace performa::sim;

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&] {});
    q.runAll();
    q.scheduleIn(50, [&] { seen = q.now(); });
    q.runAll();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 10)
            q.scheduleIn(1, recurse);
    };
    q.scheduleIn(1, recurse);
    q.runAll();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventHandle h = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(h.pending());
    q.cancel(h);
    q.runAll();
    EXPECT_FALSE(ran);
    EXPECT_FALSE(h.pending());
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    int runs = 0;
    EventHandle h = q.schedule(10, [&] { ++runs; });
    q.runAll();
    EXPECT_FALSE(h.pending());
    q.cancel(h); // harmless
    EXPECT_EQ(runs, 1);
}

TEST(EventQueue, CancelDefaultHandleIsNoop)
{
    EventQueue q;
    EventHandle h;
    EXPECT_FALSE(h.pending());
    q.cancel(h); // must not crash
}

TEST(EventQueue, RunUntilAdvancesClockToLimit)
{
    EventQueue q;
    int runs = 0;
    q.schedule(10, [&] { ++runs; });
    q.schedule(100, [&] { ++runs; });
    q.runUntil(50);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(q.now(), 50u);
    q.runUntil(200);
    EXPECT_EQ(runs, 2);
    EXPECT_EQ(q.now(), 200u);
}

TEST(EventQueue, RunUntilIncludesEventsAtLimit)
{
    EventQueue q;
    bool ran = false;
    q.schedule(50, [&] { ran = true; });
    q.runUntil(50);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    EventQueue q;
    EXPECT_FALSE(q.runOne());
    q.schedule(5, [] {});
    EXPECT_TRUE(q.runOne());
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, ExecutedCounterCountsOnlyFired)
{
    EventQueue q;
    EventHandle h = q.schedule(1, [] {});
    q.schedule(2, [] {});
    q.cancel(h);
    q.runAll();
    EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueue, PendingCountsOnlyLiveEvents)
{
    EventQueue q;
    EventHandle a = q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.schedule(30, [] {});
    EXPECT_EQ(q.pending(), 3u);
    q.cancel(a);
    // Quiescence checks must not see the cancelled entry.
    EXPECT_EQ(q.pending(), 2u);
    q.runAll();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, RunAllLimitNotOvershotByCancelledHead)
{
    // Regression: runAll(limit) used to check the head's time and then
    // delegate to runOne(), which skips cancelled entries and executes
    // the next live event even if it lies beyond the limit.
    EventQueue q;
    bool late_ran = false;
    EventHandle head = q.schedule(10, [] {});
    q.schedule(100, [&] { late_ran = true; });
    q.cancel(head);
    q.runAll(50);
    EXPECT_FALSE(late_ran);
    EXPECT_LE(q.now(), 50u);
    q.runAll();
    EXPECT_TRUE(late_ran);
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, RunUntilLimitNotOvershotByCancelledHead)
{
    EventQueue q;
    bool late_ran = false;
    EventHandle head = q.schedule(10, [] {});
    q.schedule(100, [&] { late_ran = true; });
    q.cancel(head);
    q.runUntil(50);
    EXPECT_FALSE(late_ran);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RunAllBoundaryIncludesEventsAtLimit)
{
    EventQueue q;
    int runs = 0;
    q.schedule(50, [&] { ++runs; });
    q.schedule(51, [&] { ++runs; });
    q.runAll(50);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsInert)
{
    // ABA guard: cancelling frees the slot, which the next schedule
    // reuses; the generation bump must keep every old handle stale.
    EventQueue q;
    bool a_ran = false, b_ran = false;
    EventHandle a = q.schedule(10, [&] { a_ran = true; });
    EventHandle stale = a; // copy survives the cancel below
    q.cancel(a);
    EventHandle b = q.schedule(20, [&] { b_ran = true; });
    EXPECT_FALSE(stale.pending());
    EXPECT_TRUE(b.pending());
    q.cancel(stale); // must not cancel b's reused slot
    q.runAll();
    EXPECT_FALSE(a_ran);
    EXPECT_TRUE(b_ran);
}

TEST(EventQueue, HandleCopiesAllGoStaleOnCancel)
{
    EventQueue q;
    bool ran = false;
    EventHandle h = q.schedule(10, [&] { ran = true; });
    EventHandle copy = h;
    q.cancel(h);
    EXPECT_FALSE(copy.pending());
    q.cancel(copy);
    q.runAll();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, HandleGoesStaleAfterFire)
{
    EventQueue q;
    EventHandle h = q.schedule(10, [] {});
    // The slot is reused after the event fires; the old handle must
    // not cancel the newcomer.
    q.runAll();
    bool ran = false;
    EventHandle fresh = q.schedule(20, [&] { ran = true; });
    q.cancel(h);
    EXPECT_TRUE(fresh.pending());
    q.runAll();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, CancellationOrderPreservesFifoOfSurvivors)
{
    EventQueue q;
    std::vector<int> order;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 64; ++i)
        handles.push_back(
            q.schedule(5, [&order, i] { order.push_back(i); }));
    // Cancel the even ones in scattered order.
    for (int i = 62; i >= 0; i -= 2)
        q.cancel(handles[static_cast<std::size_t>(i)]);
    q.runAll();
    ASSERT_EQ(order.size(), 32u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], static_cast<int>(2 * i + 1));
}

TEST(EventQueue, CompactionBoundsHeapUnderCancelChurn)
{
    // Arm-and-cancel churn (the TCP RTO pattern) must not accumulate
    // dead entries until their distant due times: compaction keeps the
    // heap within a small constant of the live count.
    EventQueue q;
    bool sentinel_ran = false;
    q.schedule(2'000'000, [&] { sentinel_ran = true; });
    std::size_t peak = 0;
    for (int i = 0; i < 10000; ++i) {
        EventHandle h = q.scheduleIn(1'000'000, [] {});
        q.cancel(h);
        peak = std::max(peak, q.heapSize());
    }
    EXPECT_LT(peak, 128u);
    EXPECT_EQ(q.pending(), 1u);
    q.runAll();
    EXPECT_TRUE(sentinel_ran);
    EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueue, CompactionPreservesFifoOrder)
{
    // Trigger compaction mid-stream and verify the survivors still
    // fire in schedule order (the (when, seq) key must survive the
    // heap rebuild, or determinism breaks).
    EventQueue q;
    std::vector<int> order;
    std::vector<EventHandle> doomed;
    for (int i = 0; i < 200; ++i) {
        q.schedule(7, [&order, i] { order.push_back(i); });
        doomed.push_back(q.schedule(9, [] {}));
    }
    for (EventHandle &h : doomed)
        q.cancel(h);
    q.runAll();
    ASSERT_EQ(order.size(), 200u);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelFromWithinHandlerIsSafe)
{
    EventQueue q;
    bool victim_ran = false;
    EventHandle victim;
    q.schedule(10, [&] { q.cancel(victim); });
    victim = q.schedule(20, [&] { victim_ran = true; });
    q.schedule(30, [] {});
    q.runAll();
    EXPECT_FALSE(victim_ran);
    EXPECT_EQ(q.now(), 30u);
    EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, LargeCaptureHandlersStillWork)
{
    // Captures beyond SmallFn's inline buffer take the heap fallback;
    // behaviour must be identical.
    EventQueue q;
    std::array<std::uint64_t, 16> big{};
    big[15] = 42;
    std::uint64_t seen = 0;
    q.schedule(5, [big, &seen] { seen = big[15]; });
    q.runAll();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.runAll();
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}

/** Property sweep: N events at random times always run sorted. */
class EventQueueOrderSweep : public ::testing::TestWithParam<int>
{};

TEST_P(EventQueueOrderSweep, AlwaysSorted)
{
    EventQueue q;
    std::mt19937_64 rng(GetParam());
    std::vector<Tick> fired;
    for (int i = 0; i < 500; ++i) {
        Tick t = rng() % 10000;
        q.schedule(t, [&fired, &q] { fired.push_back(q.now()); });
    }
    q.runAll();
    ASSERT_EQ(fired.size(), 500u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOrderSweep,
                         ::testing::Values(1, 2, 3, 17, 99));
