/**
 * @file
 * Unit tests for the discrete-event engine: ordering, determinism,
 * cancellation, and time-advance semantics.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sim/event_queue.hh"

using namespace performa::sim;

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&] {});
    q.runAll();
    q.scheduleIn(50, [&] { seen = q.now(); });
    q.runAll();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 10)
            q.scheduleIn(1, recurse);
    };
    q.scheduleIn(1, recurse);
    q.runAll();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventHandle h = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(h.pending());
    q.cancel(h);
    q.runAll();
    EXPECT_FALSE(ran);
    EXPECT_FALSE(h.pending());
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    int runs = 0;
    EventHandle h = q.schedule(10, [&] { ++runs; });
    q.runAll();
    EXPECT_FALSE(h.pending());
    q.cancel(h); // harmless
    EXPECT_EQ(runs, 1);
}

TEST(EventQueue, CancelDefaultHandleIsNoop)
{
    EventQueue q;
    EventHandle h;
    EXPECT_FALSE(h.pending());
    q.cancel(h); // must not crash
}

TEST(EventQueue, RunUntilAdvancesClockToLimit)
{
    EventQueue q;
    int runs = 0;
    q.schedule(10, [&] { ++runs; });
    q.schedule(100, [&] { ++runs; });
    q.runUntil(50);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(q.now(), 50u);
    q.runUntil(200);
    EXPECT_EQ(runs, 2);
    EXPECT_EQ(q.now(), 200u);
}

TEST(EventQueue, RunUntilIncludesEventsAtLimit)
{
    EventQueue q;
    bool ran = false;
    q.schedule(50, [&] { ran = true; });
    q.runUntil(50);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    EventQueue q;
    EXPECT_FALSE(q.runOne());
    q.schedule(5, [] {});
    EXPECT_TRUE(q.runOne());
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, ExecutedCounterCountsOnlyFired)
{
    EventQueue q;
    EventHandle h = q.schedule(1, [] {});
    q.schedule(2, [] {});
    q.cancel(h);
    q.runAll();
    EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.runAll();
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}

/** Property sweep: N events at random times always run sorted. */
class EventQueueOrderSweep : public ::testing::TestWithParam<int>
{};

TEST_P(EventQueueOrderSweep, AlwaysSorted)
{
    EventQueue q;
    std::mt19937_64 rng(GetParam());
    std::vector<Tick> fired;
    for (int i = 0; i < 500; ++i) {
        Tick t = rng() % 10000;
        q.schedule(t, [&fired, &q] { fired.push_back(q.now()); });
    }
    q.runAll();
    ASSERT_EQ(fired.size(), 500u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOrderSweep,
                         ::testing::Values(1, 2, 3, 17, 99));
