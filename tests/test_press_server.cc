/**
 * @file
 * Integration tests for the PRESS server over both substrates:
 * cluster formation, locality-conscious dispatch, cooperative
 * caching, membership reconfiguration, rejoin protocols, heartbeats,
 * fail-fast, and the operator reset.
 *
 * These drive small, fast deployments (reduced load, short runs);
 * the full-scale behaviour matrix lives in test_fault_matrix.cc.
 */

#include <gtest/gtest.h>

#include "faults/injector.hh"
#include "press/cluster.hh"
#include "sim/simulation.hh"
#include "loadgen/client_farm.hh"

using namespace performa;
using namespace performa::sim;

namespace {

struct Deployment
{
    Simulation s{7};
    press::Cluster cluster;
    wl::ClientFarm farm;
    fault::Injector injector;

    explicit Deployment(press::Version v, double rate = 1500)
        : cluster(s, makeClusterCfg(v)),
          farm(s, cluster.clientNet(), cluster.serverClientPorts(),
               cluster.clientMachinePorts(), makeWorkloadCfg(rate)),
          injector(s, cluster)
    {
        cluster.startAll();
        s.runUntil(sec(1));
        cluster.prewarm(20000);
    }

    static press::ClusterConfig
    makeClusterCfg(press::Version v)
    {
        press::ClusterConfig cfg;
        cfg.press.version = v;
        return cfg;
    }

    static wl::WorkloadConfig
    makeWorkloadCfg(double rate)
    {
        wl::WorkloadConfig cfg;
        cfg.requestRate = rate;
        cfg.numFiles = 20000;
        return cfg;
    }

    double
    runAndMeasure(Tick from, Tick to)
    {
        farm.start();
        s.runUntil(to);
        return farm.served().meanRate(from, to);
    }
};

} // namespace

TEST(PressCluster, ColdStartFormsFullMembership)
{
    for (press::Version v : press::allVersions) {
        Deployment d(v);
        for (std::uint32_t i = 0; i < d.cluster.numNodes(); ++i)
            EXPECT_EQ(d.cluster.server(i).members().size(), 4u)
                << press::versionName(v) << " node " << i;
        EXPECT_FALSE(d.cluster.splintered());
    }
}

TEST(PressCluster, ServesRequestsUnderModestLoad)
{
    Deployment d(press::Version::TcpPress);
    double tput = d.runAndMeasure(sec(5), sec(20));
    // Open-loop 1500 req/s well below capacity: all served.
    EXPECT_NEAR(tput, 1500, 100);
    EXPECT_LT(d.farm.totalFailed(), 30u);
}

TEST(PressCluster, PrewarmPopulatesCachesAndDirectory)
{
    Deployment d(press::Version::ViaPress0);
    std::size_t total = 0;
    for (std::uint32_t i = 0; i < 4; ++i)
        total += d.cluster.server(i).cachedFiles();
    EXPECT_EQ(total, 20000u);
}

TEST(PressCluster, AppCrashExcludesAndRejoins)
{
    for (press::Version v :
         {press::Version::TcpPress, press::Version::ViaPress0}) {
        Deployment d(v);
        d.farm.start();
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::AppCrash;
        spec.target = 3;
        spec.injectAt = sec(5);
        d.injector.schedule(spec);
        d.s.runUntil(sec(8));
        // The three survivors excluded node 3.
        for (std::uint32_t i = 0; i < 3; ++i)
            EXPECT_EQ(d.cluster.server(i).members().size(), 3u)
                << press::versionName(v);
        // Daemon restarts it (10 s) and it rejoins.
        d.s.runUntil(sec(40));
        for (std::uint32_t i = 0; i < 4; ++i)
            EXPECT_EQ(d.cluster.server(i).members().size(), 4u)
                << press::versionName(v);
        EXPECT_FALSE(d.cluster.splintered());
    }
}

TEST(PressCluster, LinkFaultSplintersViaButNotTcp)
{
    {
        Deployment d(press::Version::ViaPress3);
        d.farm.start();
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::LinkDown;
        spec.target = 3;
        spec.injectAt = sec(5);
        spec.duration = sec(20);
        d.injector.schedule(spec);
        d.s.runUntil(sec(10));
        EXPECT_TRUE(d.cluster.splintered());
        EXPECT_EQ(d.cluster.server(3).members().size(), 1u);
        // After the link returns: NO re-merge.
        d.s.runUntil(sec(60));
        EXPECT_TRUE(d.cluster.splintered());
    }
    {
        Deployment d(press::Version::TcpPress);
        d.farm.start();
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::LinkDown;
        spec.target = 3;
        spec.injectAt = sec(5);
        spec.duration = sec(20);
        d.injector.schedule(spec);
        d.s.runUntil(sec(10));
        EXPECT_FALSE(d.cluster.splintered()); // still retransmitting
        d.s.runUntil(sec(120));
        EXPECT_FALSE(d.cluster.splintered()); // resumed, intact
    }
}

TEST(PressCluster, HeartbeatDetectsSilentFaultIn15s)
{
    Deployment d(press::Version::TcpPressHb);
    d.farm.start();
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::KernelMemAlloc;
    spec.target = 3;
    spec.injectAt = sec(5);
    spec.duration = sec(30);
    d.injector.schedule(spec);
    d.s.runUntil(sec(19)); // < inject + 15s
    EXPECT_FALSE(d.cluster.splintered());
    d.s.runUntil(sec(30)); // detection threshold passed
    EXPECT_TRUE(d.cluster.splintered());
}

TEST(PressCluster, PlainTcpRidesOutKernelMemFault)
{
    Deployment d(press::Version::TcpPress);
    d.farm.start();
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::KernelMemAlloc;
    spec.target = 3;
    spec.injectAt = sec(5);
    spec.duration = sec(20);
    d.injector.schedule(spec);
    d.s.runUntil(sec(90));
    EXPECT_FALSE(d.cluster.splintered());
    // Served requests resumed after the fault.
    double after = d.farm.served().meanRate(sec(60), sec(90));
    EXPECT_GT(after, 1200);
}

TEST(PressCluster, NullPointerFaultRestartsOneNodeOnTcp)
{
    Deployment d(press::Version::TcpPress);
    d.farm.start();
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::BadParamNull;
    spec.target = 3;
    spec.injectAt = sec(5);
    d.injector.schedule(spec);
    d.s.runUntil(sec(8));
    EXPECT_FALSE(d.cluster.server(3).alive());
    EXPECT_TRUE(d.cluster.server(2).alive());
    d.s.runUntil(sec(60));
    EXPECT_EQ(d.cluster.server(3).members().size(), 4u); // rejoined
}

TEST(PressCluster, NullPointerFaultRestartsTwoNodesOnRdma)
{
    Deployment d(press::Version::ViaPress5);
    d.farm.start();
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::BadParamNull;
    spec.target = 3;
    spec.injectAt = sec(5);
    d.injector.schedule(spec);
    d.s.runUntil(sec(8));
    // The sender and the remote end of the write both terminated.
    int dead = 0;
    for (std::uint32_t i = 0; i < 4; ++i)
        dead += d.cluster.server(i).alive() ? 0 : 1;
    EXPECT_EQ(dead, 2);
    d.s.runUntil(sec(60));
    EXPECT_FALSE(d.cluster.splintered()); // both rejoined
}

TEST(PressCluster, OperatorResetReformsSplinteredCluster)
{
    Deployment d(press::Version::ViaPress0);
    d.farm.start();
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::LinkDown;
    spec.target = 3;
    spec.injectAt = sec(5);
    spec.duration = sec(10);
    d.injector.schedule(spec);
    d.s.runUntil(sec(30));
    ASSERT_TRUE(d.cluster.splintered());
    d.cluster.operatorReset();
    d.s.runUntil(sec(40));
    EXPECT_FALSE(d.cluster.splintered());
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(d.cluster.server(i).members().size(), 4u);
}

TEST(PressCluster, AppHangStallsAndResumes)
{
    Deployment d(press::Version::ViaPress0);
    d.farm.start();
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::AppHang;
    spec.target = 3;
    spec.injectAt = sec(5);
    spec.duration = sec(15);
    d.injector.schedule(spec);
    d.s.runUntil(sec(60));
    EXPECT_FALSE(d.cluster.splintered()); // connections survived
    double after = d.farm.served().meanRate(sec(30), sec(60));
    EXPECT_GT(after, 1200);
}

TEST(PressCluster, NodeCrashRejoinsCleanlyOnVia)
{
    Deployment d(press::Version::ViaPress3);
    d.farm.start();
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::NodeCrash;
    spec.target = 3;
    spec.injectAt = sec(5);
    spec.duration = sec(20);
    d.injector.schedule(spec);
    d.s.runUntil(sec(10));
    EXPECT_EQ(d.cluster.server(0).members().size(), 3u);
    d.s.runUntil(sec(60)); // reboot at 25, service at 30, rejoin
    EXPECT_FALSE(d.cluster.splintered());
    EXPECT_EQ(d.cluster.server(3).members().size(), 4u);
}

TEST(PressCluster, CacheUpdatesPropagateToPeersDirectories)
{
    Deployment d(press::Version::TcpPress, 500);
    d.farm.start();
    d.s.runUntil(sec(30));
    // Under load with an unwarmed tail of the file set, servers cache
    // new files and broadcast; peers must be forwarding rather than
    // re-reading from disk, so most requests are served quickly.
    EXPECT_GT(d.farm.totalServed(),
              d.farm.totalOffered() * 95 / 100);
}

TEST(PressCluster, SplinterDegradesButDoesNotStopService)
{
    Deployment d(press::Version::ViaPress5, 3000);
    d.farm.start();
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::LinkDown;
    spec.target = 3;
    spec.injectAt = sec(5);
    spec.duration = sec(60);
    d.injector.schedule(spec);
    d.s.runUntil(sec(60));
    double during = d.farm.served().meanRate(sec(20), sec(60));
    EXPECT_GT(during, 1500); // degraded but alive (3+1 serving)
}
