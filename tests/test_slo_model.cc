/**
 * @file
 * Tests for the latency-SLO extension of the phase-2 model: goodput
 * fractions through resolveStages, P_slo in the evaluator, latency
 * columns in the behaviour database, SLO extraction from a latency
 * timeline, and the seed contract of the profile axis.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "campaign/phase1.hh"
#include "core/performability.hh"
#include "exp/behavior_db.hh"
#include "exp/stages.hh"

using namespace performa;
using namespace performa::model;

namespace {

/** A healed, detected behaviour with a latency view attached. */
MeasuredBehavior
behaviorWithLatency()
{
    MeasuredBehavior mb;
    mb.normalTput = 1000.0;
    mb.detected = true;
    mb.healed = true;
    mb.tput = {900, 600, 800, 850, 1000, 0, 600};
    mb.dur = {2, 10, 0, 15, 0, 0, 0};
    mb.latency.present = true;
    mb.latency.sloQuantile = 0.99;
    mb.latency.sloThresholdUs = 500000;
    mb.latency.fracWithinNormal = 0.995;
    mb.latency.fracWithin = {0.5, 0.4, 0.7, 0.9, 0.99, 1.0, 0.4};
    return mb;
}

FaultClass
someFaultClass()
{
    FaultClass fc;
    fc.name = "node crash";
    fc.kind = fault::FaultKind::NodeCrash;
    fc.count = 4;
    fc.mttfSec = 14 * 86400.0;
    fc.mttrSec = 180.0;
    return fc;
}

} // namespace

// ---------------------------------------------------------------------
// resolveStages
// ---------------------------------------------------------------------

TEST(ResolveStagesSlo, NoLatencyDataMeansAllWithin)
{
    MeasuredBehavior mb = behaviorWithLatency();
    mb.latency = LatencySummary{};
    ResolvedStages rs = resolveStages(mb, 180.0, EnvParams{});
    for (int s = 0; s < numStages; ++s)
        EXPECT_DOUBLE_EQ(rs.fracWithin[s], 1.0) << "stage " << s;
}

TEST(ResolveStagesSlo, HealedRemapsStagesEAndGToNormalFraction)
{
    MeasuredBehavior mb = behaviorWithLatency();
    ResolvedStages rs = resolveStages(mb, 180.0, EnvParams{});
    EXPECT_DOUBLE_EQ(rs.fracWithin[StageA], 0.5);
    EXPECT_DOUBLE_EQ(rs.fracWithin[StageB], 0.4);
    EXPECT_DOUBLE_EQ(rs.fracWithin[StageC], 0.7);
    // Healed: stages E and G run at normal operation, so their SLO
    // fractions follow the normal-operation fraction.
    EXPECT_DOUBLE_EQ(rs.fracWithin[StageE], 0.995);
    EXPECT_DOUBLE_EQ(rs.fracWithin[StageG], 0.995);
}

TEST(ResolveStagesSlo, UndetectedCopiesStageAFraction)
{
    MeasuredBehavior mb = behaviorWithLatency();
    mb.detected = false;
    ResolvedStages rs = resolveStages(mb, 180.0, EnvParams{});
    EXPECT_DOUBLE_EQ(rs.fracWithin[StageB], rs.fracWithin[StageA]);
    EXPECT_DOUBLE_EQ(rs.fracWithin[StageC], rs.fracWithin[StageA]);
}

// ---------------------------------------------------------------------
// evaluate
// ---------------------------------------------------------------------

TEST(PerformabilitySlo, SloMetricsRequireLatencyOnEveryBehavior)
{
    PerformabilityModel m(1000.0);
    m.addFault(someFaultClass(), behaviorWithLatency());
    MeasuredBehavior plain = behaviorWithLatency();
    plain.latency = LatencySummary{};
    FaultClass fc2 = someFaultClass();
    fc2.name = "app crash";
    fc2.kind = fault::FaultKind::AppCrash;
    m.addFault(fc2, plain);

    PerfResult r = m.evaluate();
    EXPECT_FALSE(r.sloValid);
    EXPECT_DOUBLE_EQ(r.sloPerformability, 0.0);
    // The throughput metrics are untouched.
    EXPECT_GT(r.performability, 0.0);
}

TEST(PerformabilitySlo, SloPerformabilityPenalizesSlowStages)
{
    PerformabilityModel m(1000.0);
    m.addFault(someFaultClass(), behaviorWithLatency());
    PerfResult r = m.evaluate();

    ASSERT_TRUE(r.sloValid);
    EXPECT_NEAR(r.sloNormalTput, 995.0, 1e-9);
    // Goodput during fault stages is strictly below throughput, so
    // SLO availability and performability sit below the raw ones.
    EXPECT_LT(r.sloAvailability, r.availability);
    EXPECT_LT(r.sloPerformability, r.performability);
    EXPECT_GT(r.sloPerformability, 0.0);
    ASSERT_EQ(r.breakdown.size(), 1u);
    EXPECT_GT(r.breakdown[0].sloUnavailability,
              r.breakdown[0].unavailability);
}

TEST(PerformabilitySlo, PerfectLatencyMatchesThroughputMetrics)
{
    MeasuredBehavior mb = behaviorWithLatency();
    mb.latency.fracWithinNormal = 1.0;
    mb.latency.fracWithin = {1, 1, 1, 1, 1, 1, 1};
    PerformabilityModel m(1000.0);
    m.addFault(someFaultClass(), mb);
    PerfResult r = m.evaluate();

    ASSERT_TRUE(r.sloValid);
    EXPECT_DOUBLE_EQ(r.sloNormalTput, r.normalTput);
    EXPECT_NEAR(r.sloAvailability, r.availability, 1e-12);
    EXPECT_NEAR(r.sloPerformability, r.performability, 1e-6);
}

// ---------------------------------------------------------------------
// BehaviorDb round trip
// ---------------------------------------------------------------------

TEST(BehaviorDbSlo, LatencyColumnsRoundTrip)
{
    exp::BehaviorDb db;
    MeasuredBehavior mb = behaviorWithLatency();
    mb.latency.p50Us = 1200;
    mb.latency.p99Us = 480000;
    mb.latency.stageP99Us[StageB] = 900000;
    db.set(press::Version::TcpPress, fault::FaultKind::NodeCrash, mb);

    std::string path = "test_slo_db.csv";
    db.save(path);

    exp::BehaviorDb loaded;
    ASSERT_TRUE(loaded.load(path));
    const MeasuredBehavior &got =
        loaded.get(press::Version::TcpPress, fault::FaultKind::NodeCrash);
    EXPECT_TRUE(got.latency.present);
    EXPECT_DOUBLE_EQ(got.latency.sloQuantile, 0.99);
    EXPECT_DOUBLE_EQ(got.latency.sloThresholdUs, 500000);
    EXPECT_DOUBLE_EQ(got.latency.fracWithinNormal, 0.995);
    EXPECT_DOUBLE_EQ(got.latency.fracWithin[StageB], 0.4);
    EXPECT_DOUBLE_EQ(got.latency.p50Us, 1200);
    EXPECT_DOUBLE_EQ(got.latency.p99Us, 480000);
    EXPECT_DOUBLE_EQ(got.latency.stageP99Us[StageB], 900000);
    EXPECT_DOUBLE_EQ(got.normalTput, mb.normalTput);
    std::remove(path.c_str());
}

TEST(BehaviorDbSlo, PlainRowsKeepTheHistoricalFormat)
{
    exp::BehaviorDb db;
    MeasuredBehavior mb = behaviorWithLatency();
    mb.latency = LatencySummary{};
    db.set(press::Version::TcpPress, fault::FaultKind::NodeCrash, mb);

    std::string path = "test_plain_db.csv";
    db.save(path);
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header.find(",lat"), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Extraction from a latency timeline
// ---------------------------------------------------------------------

TEST(ExtractionSlo, SlicesTheTimelineAtStageBoundaries)
{
    exp::ExperimentResult res;
    res.injectAt = sim::sec(60);
    res.runLength = sim::sec(300);
    res.normalThroughput = 1000.0;
    for (std::uint64_t t = 0; t < 300; ++t) {
        if (t < 60 || t >= 180)
            res.served.record(sim::sec(t), 1000);
        else if (t >= 75)
            res.served.record(sim::sec(t), 800);
    }
    res.markers.add(sim::sec(75), exp::MarkerKind::Exclude, 0, 3);

    // Normal operation: fast. Degraded regime: slow.
    constexpr auto total = sim::LatencyStage::Total;
    for (std::uint64_t t = 0; t < 60; ++t)
        res.latency.record(total, sim::sec(t), sim::msec(20));
    for (std::uint64_t t = 75; t < 180; ++t)
        res.latency.record(total, sim::sec(t), sim::msec(900));
    for (std::uint64_t t = 180; t < 300; ++t)
        res.latency.record(total, sim::sec(t), sim::msec(20));

    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::LinkDown;
    spec.injectAt = sim::sec(60);
    spec.duration = sim::sec(120);

    exp::ExtractionParams p;
    p.slo = LatencySlo{0.99, sim::msec(500)};
    MeasuredBehavior mb = exp::extractBehavior(res, spec, p);

    ASSERT_TRUE(mb.latency.present);
    EXPECT_DOUBLE_EQ(mb.latency.fracWithinNormal, 1.0);
    EXPECT_NEAR(mb.latency.p50Us, sim::msec(20), sim::msec(1));
    // Stage A [60, 75) saw no responses at all: no SLO evidence.
    EXPECT_DOUBLE_EQ(mb.latency.fracWithin[StageA], 1.0);
    // Stages B/C sit inside the slow regime.
    EXPECT_DOUBLE_EQ(mb.latency.fracWithin[StageC], 0.0);
    EXPECT_GT(mb.latency.stageP99Us[StageC], sim::msec(500));
    // Post-recovery: fast again.
    EXPECT_DOUBLE_EQ(mb.latency.fracWithin[StageE], 1.0);
    // G mirrors B.
    EXPECT_DOUBLE_EQ(mb.latency.fracWithin[StageG],
                     mb.latency.fracWithin[StageB]);
}

TEST(ExtractionSlo, NoSloRequestedLeavesLatencyAbsent)
{
    exp::ExperimentResult res;
    res.injectAt = sim::sec(60);
    res.runLength = sim::sec(300);
    res.normalThroughput = 1000.0;
    for (std::uint64_t t = 0; t < 300; ++t)
        res.served.record(sim::sec(t), 1000);

    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::LinkDown;
    spec.injectAt = sim::sec(60);
    spec.duration = sim::sec(120);

    MeasuredBehavior mb = exp::extractBehavior(res, spec);
    EXPECT_FALSE(mb.latency.present);
}

// ---------------------------------------------------------------------
// Seed contract of the profile axis
// ---------------------------------------------------------------------

TEST(ProfileSeeds, DefaultProfileKeepsCombinationSeeds)
{
    using campaign::phase1Seed;
    auto v = press::Version::ViaPress3;
    EXPECT_EQ(phase1Seed(42, v), phase1Seed(42, v, 4, 1.0, ""));
    EXPECT_EQ(phase1Seed(42, v), phase1Seed(42, v, 4, 1.0, "steady"));
    EXPECT_NE(phase1Seed(42, v),
              phase1Seed(42, v, 4, 1.0, "flashcrowd"));
    EXPECT_NE(phase1Seed(42, v, 4, 1.0, "flashcrowd"),
              phase1Seed(42, v, 4, 1.0, "sessions"));
}

TEST(ProfileSeeds, ProfileEntersTheConfigButSloDoesNot)
{
    campaign::Phase1Options opts;
    opts.profile = *loadgen::profileByName("flashcrowd");
    exp::ExperimentConfig withProfile = campaign::phase1Config(
        press::Version::TcpPress, fault::FaultKind::NodeCrash, opts);

    campaign::Phase1Options plain;
    exp::ExperimentConfig base = campaign::phase1Config(
        press::Version::TcpPress, fault::FaultKind::NodeCrash, plain);

    EXPECT_NE(withProfile.seed, base.seed);
    EXPECT_EQ(withProfile.profile.name, "flashcrowd");

    // The SLO is observation only: it must not perturb the seed.
    campaign::Phase1Options slo;
    slo.slo = LatencySlo{0.99, 500000};
    exp::ExperimentConfig withSlo = campaign::phase1Config(
        press::Version::TcpPress, fault::FaultKind::NodeCrash, slo);
    EXPECT_EQ(withSlo.seed, base.seed);
}
