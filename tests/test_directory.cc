/**
 * @file
 * Unit and property tests for the cluster-wide caching directory.
 */

#include <gtest/gtest.h>

#include <random>

#include "press/directory.hh"

using namespace performa;
using press::Directory;

TEST(Directory, AddAndQuery)
{
    Directory d;
    d.add(10, 1);
    d.add(10, 2);
    d.add(11, 1);
    EXPECT_EQ(d.nodesFor(10).size(), 2u);
    EXPECT_EQ(d.nodesFor(11).size(), 1u);
    EXPECT_TRUE(d.nodesFor(99).empty());
}

TEST(Directory, AddIsIdempotent)
{
    Directory d;
    d.add(10, 1);
    d.add(10, 1);
    EXPECT_EQ(d.nodesFor(10).size(), 1u);
}

TEST(Directory, RemoveSingleEntry)
{
    Directory d;
    d.add(10, 1);
    d.add(10, 2);
    d.remove(10, 1);
    ASSERT_EQ(d.nodesFor(10).size(), 1u);
    EXPECT_EQ(d.nodesFor(10)[0], 2u);
    d.remove(10, 2);
    EXPECT_TRUE(d.nodesFor(10).empty());
}

TEST(Directory, RemoveMissingIsNoop)
{
    Directory d;
    d.add(10, 1);
    d.remove(10, 5);
    d.remove(77, 1);
    EXPECT_EQ(d.nodesFor(10).size(), 1u);
}

TEST(Directory, PurgeNodeRemovesAllItsEntries)
{
    Directory d;
    for (sim::FileId f = 0; f < 100; ++f) {
        d.add(f, 1);
        if (f % 2 == 0)
            d.add(f, 2);
    }
    EXPECT_EQ(d.entriesOf(1), 100u);
    d.purgeNode(1);
    EXPECT_EQ(d.entriesOf(1), 0u);
    for (sim::FileId f = 0; f < 100; ++f) {
        if (f % 2 == 0) {
            ASSERT_EQ(d.nodesFor(f).size(), 1u);
            EXPECT_EQ(d.nodesFor(f)[0], 2u);
        } else {
            EXPECT_TRUE(d.nodesFor(f).empty());
        }
    }
}

TEST(Directory, ClearEmptiesEverything)
{
    Directory d;
    d.add(1, 1);
    d.add(2, 2);
    d.clear();
    EXPECT_TRUE(d.nodesFor(1).empty());
    EXPECT_EQ(d.entriesOf(2), 0u);
}

/** Property: the two indices stay consistent under random ops. */
class DirectorySweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(DirectorySweep, IndicesConsistent)
{
    Directory d;
    std::mt19937_64 rng(GetParam());
    for (int i = 0; i < 3000; ++i) {
        auto f = static_cast<sim::FileId>(rng() % 50);
        auto n = static_cast<sim::NodeId>(rng() % 4);
        switch (rng() % 3) {
          case 0:
            d.add(f, n);
            break;
          case 1:
            d.remove(f, n);
            break;
          case 2:
            if (i % 17 == 0)
                d.purgeNode(n);
            break;
        }
    }
    // Cross-check: entriesOf(n) equals the number of files listing n.
    for (sim::NodeId n = 0; n < 4; ++n) {
        std::size_t count = 0;
        for (sim::FileId f = 0; f < 50; ++f) {
            const auto &v = d.nodesFor(f);
            count += std::count(v.begin(), v.end(), n);
        }
        EXPECT_EQ(count, d.entriesOf(n)) << "node " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectorySweep,
                         ::testing::Values(1u, 7u, 1234u));
