/**
 * @file
 * Unit tests for the time-bucketed throughput series.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hh"
#include "sim/time_series.hh"

using namespace performa::sim;

TEST(TimeSeries, EmptyIsZero)
{
    TimeSeries ts;
    EXPECT_EQ(ts.size(), 0u);
    EXPECT_EQ(ts.count(0), 0u);
    EXPECT_EQ(ts.total(0, sec(100)), 0u);
    EXPECT_DOUBLE_EQ(ts.meanRate(0, sec(10)), 0.0);
}

TEST(TimeSeries, RecordsIntoCorrectBucket)
{
    TimeSeries ts(sec(1));
    ts.record(sec(3) + 1);
    ts.record(sec(3) + 999);
    ts.record(sec(4));
    EXPECT_EQ(ts.count(3), 2u);
    EXPECT_EQ(ts.count(4), 1u);
    EXPECT_EQ(ts.count(5), 0u);
}

TEST(TimeSeries, RateIsPerSecond)
{
    TimeSeries ts(sec(2));
    ts.record(0, 10);
    EXPECT_DOUBLE_EQ(ts.rate(0), 5.0); // 10 in a 2-second bucket
}

TEST(TimeSeries, TotalOverRange)
{
    TimeSeries ts(sec(1));
    for (int i = 0; i < 10; ++i)
        ts.record(sec(static_cast<std::uint64_t>(i)), 2);
    EXPECT_EQ(ts.total(sec(2), sec(5)), 6u);  // buckets 2,3,4
    EXPECT_EQ(ts.total(0, sec(10)), 20u);
    EXPECT_EQ(ts.total(sec(5), sec(5)), 0u);  // empty interval
    EXPECT_EQ(ts.total(sec(8), sec(100)), 4u); // clipped at end
}

TEST(TimeSeries, MeanRateOverWindow)
{
    TimeSeries ts(sec(1));
    for (int i = 10; i < 20; ++i)
        ts.record(sec(static_cast<std::uint64_t>(i)), 100);
    EXPECT_DOUBLE_EQ(ts.meanRate(sec(10), sec(20)), 100.0);
    EXPECT_DOUBLE_EQ(ts.meanRate(sec(0), sec(10)), 0.0);
}

TEST(TimeSeries, CountBeyondRangeIsZero)
{
    TimeSeries ts;
    ts.record(sec(1));
    EXPECT_EQ(ts.count(1000), 0u);
    EXPECT_DOUBLE_EQ(ts.rate(1000), 0.0);
}

TEST(OnlineStats, Basics)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(OnlineStats, Reset)
{
    OnlineStats s;
    s.add(5);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(OnlineStats, EmptyMinMaxIsNaN)
{
    // Regression: an empty accumulator used to report min()/max() of
    // 0.0, indistinguishable from a real zero-latency sample. NaN
    // makes empty windows explicit.
    OnlineStats s;
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    s.reset();
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
}

TEST(TickHelpers, UnitConversions)
{
    EXPECT_EQ(msec(1), usec(1000));
    EXPECT_EQ(sec(1), msec(1000));
    EXPECT_EQ(minutes(1), sec(60));
    EXPECT_EQ(hours(1), minutes(60));
    EXPECT_EQ(days(1), hours(24));
    EXPECT_DOUBLE_EQ(toSeconds(sec(90)), 90.0);
}
