/**
 * @file
 * Unit tests for the per-node disk array.
 */

#include <gtest/gtest.h>

#include <vector>

#include "press/disk.hh"
#include "sim/simulation.hh"

using namespace performa;
using namespace performa::sim;

TEST(DiskArray, SingleReadServiceTime)
{
    Simulation s;
    press::DiskArray d(s, 1, msec(7), 40.0);
    Tick done_at = 0;
    d.read(8000, [&] { done_at = s.now(); });
    s.runUntil(sec(1));
    EXPECT_EQ(done_at, msec(7) + usec(200)); // 7 ms seek + 8000/40 us
    EXPECT_EQ(d.reads(), 1u);
}

TEST(DiskArray, TwoDisksServeInParallel)
{
    Simulation s;
    press::DiskArray d(s, 2, msec(10), 40.0);
    std::vector<Tick> done;
    for (int i = 0; i < 2; ++i)
        d.read(4000, [&] { done.push_back(s.now()); });
    s.runUntil(sec(1));
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], done[1]); // independent disks
}

TEST(DiskArray, ThirdReadQueuesBehindEarliestFree)
{
    Simulation s;
    press::DiskArray d(s, 2, msec(10), 40.0);
    std::vector<Tick> done;
    for (int i = 0; i < 3; ++i)
        d.read(4000, [&] { done.push_back(s.now()); });
    s.runUntil(sec(1));
    ASSERT_EQ(done.size(), 3u);
    Tick one = msec(10) + usec(100);
    EXPECT_EQ(done[0], one);
    EXPECT_EQ(done[2], 2 * one);
}

TEST(DiskArray, BacklogReflectsQueuedWork)
{
    Simulation s;
    press::DiskArray d(s, 1, msec(10), 40.0);
    EXPECT_EQ(d.backlog(), 0u);
    d.read(4000, [] {});
    d.read(4000, [] {});
    EXPECT_GT(d.backlog(), msec(20));
    s.runUntil(sec(1));
    EXPECT_EQ(d.backlog(), 0u);
}

TEST(DiskArray, ThroughputBoundedByServiceRate)
{
    Simulation s;
    press::DiskArray d(s, 2, msec(8), 40.0);
    int done = 0;
    // Offer far more reads than 2 disks can serve in one second.
    for (int i = 0; i < 1000; ++i)
        d.read(8000, [&] { ++done; });
    s.runUntil(sec(1));
    // Service time 8.2 ms  =>  ~122 reads/disk/sec.
    EXPECT_NEAR(done, 244, 8);
}
