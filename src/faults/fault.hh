/**
 * @file
 * The fault menu of the study (Table 2 of the paper), plus the
 * transient-packet-drop fault used in the sensitivity analysis of
 * Section 6.3.
 */

#ifndef PERFORMA_FAULTS_FAULT_HH
#define PERFORMA_FAULTS_FAULT_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace performa::fault {

/** Every fault the injector can apply. */
enum class FaultKind
{
    // Network hardware (fail-stop)
    LinkDown,      ///< a node's link to the switch goes dark
    SwitchDown,    ///< the intra-cluster switch goes dark

    // Node
    NodeCrash,     ///< hard reboot
    NodeFreeze,    ///< OS hang; NIC hardware stays alive

    // Resource exhaustion
    KernelMemAlloc, ///< skbuf allocations fail
    PinExhaustion,  ///< pinnable-page threshold drops

    // Application
    AppCrash,       ///< SIGKILL; daemon restarts the process
    AppHang,        ///< SIGSTOP ... SIGCONT
    BadParamNull,   ///< NULL data pointer into send()
    BadParamOffPtr, ///< off-by-N data pointer
    BadParamOffSize,///< off-by-N buffer size

    // Sensitivity scenarios (Section 6.3)
    PacketDrop,     ///< transient SAN packet loss: fatal on VIA, a
                    ///< no-op for TCP (absorbed by retransmission)
};

/** All injectable kinds, in Table 2 order. */
inline constexpr FaultKind allFaultKinds[] = {
    FaultKind::LinkDown,       FaultKind::SwitchDown,
    FaultKind::NodeCrash,      FaultKind::NodeFreeze,
    FaultKind::KernelMemAlloc, FaultKind::PinExhaustion,
    FaultKind::AppCrash,       FaultKind::AppHang,
    FaultKind::BadParamNull,   FaultKind::BadParamOffPtr,
    FaultKind::BadParamOffSize,
};

/** Human-readable fault name. */
const char *faultName(FaultKind k);

/** @return true when the fault has a duration (transient component). */
bool hasDuration(FaultKind k);

/** One injection: what, where, when, and for how long. */
struct FaultSpec
{
    FaultKind kind = FaultKind::LinkDown;
    sim::NodeId target = 3;       ///< victim node (ignored for switch)
    sim::Tick injectAt = sim::sec(60);
    sim::Tick duration = sim::sec(120); ///< transient faults only
    std::uint64_t pinLimitBytes = 32ull << 20;  ///< PinExhaustion
    int offByN = 16;              ///< bad-parameter offset (0-100)
};

} // namespace performa::fault

#endif // PERFORMA_FAULTS_FAULT_HH
