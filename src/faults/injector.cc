#include "faults/injector.hh"

#include "sim/logging.hh"

namespace performa::fault {

const char *
faultName(FaultKind k)
{
    switch (k) {
      case FaultKind::LinkDown:
        return "link-down";
      case FaultKind::SwitchDown:
        return "switch-down";
      case FaultKind::NodeCrash:
        return "node-crash";
      case FaultKind::NodeFreeze:
        return "node-freeze";
      case FaultKind::KernelMemAlloc:
        return "kernel-mem-alloc";
      case FaultKind::PinExhaustion:
        return "pin-exhaustion";
      case FaultKind::AppCrash:
        return "app-crash";
      case FaultKind::AppHang:
        return "app-hang";
      case FaultKind::BadParamNull:
        return "bad-param-null";
      case FaultKind::BadParamOffPtr:
        return "bad-param-off-ptr";
      case FaultKind::BadParamOffSize:
        return "bad-param-off-size";
      case FaultKind::PacketDrop:
        return "packet-drop";
    }
    return "?";
}

bool
hasDuration(FaultKind k)
{
    switch (k) {
      case FaultKind::LinkDown:
      case FaultKind::SwitchDown:
      case FaultKind::NodeCrash: // downtime until reboot
      case FaultKind::NodeFreeze:
      case FaultKind::KernelMemAlloc:
      case FaultKind::PinExhaustion:
      case FaultKind::AppHang:
        return true;
      case FaultKind::AppCrash:
      case FaultKind::BadParamNull:
      case FaultKind::BadParamOffPtr:
      case FaultKind::BadParamOffSize:
      case FaultKind::PacketDrop:
        return false;
    }
    return false;
}

void
Injector::emit(const std::string &what, sim::NodeId node)
{
    sim::Trace::log(sim_.now(), "mendosus", what, " (node ",
                    node == sim::invalidNode ? -1 : (int)node, ")");
    if (onEvent_)
        onEvent_(sim_.now(), what, node);
}

void
Injector::schedule(const FaultSpec &spec)
{
    sim_.schedule(spec.injectAt, [this, spec] { injectNow(spec); });
}

void
Injector::injectNow(const FaultSpec &spec)
{
    switch (spec.kind) {
      case FaultKind::LinkDown:
        cluster_.intraNet().setLinkUp(spec.target, false);
        emit("inject link-down", spec.target);
        sim_.scheduleIn(spec.duration, [this, spec] { recover(spec); });
        break;

      case FaultKind::SwitchDown:
        cluster_.intraNet().setSwitchUp(false);
        emit("inject switch-down", sim::invalidNode);
        sim_.scheduleIn(spec.duration, [this, spec] { recover(spec); });
        break;

      case FaultKind::NodeCrash:
        // Node::crash schedules its own reboot; recovery marker fires
        // when the downtime elapses.
        cluster_.node(spec.target).crash(spec.duration);
        emit("inject node-crash", spec.target);
        sim_.scheduleIn(spec.duration, [this, spec] { recover(spec); });
        break;

      case FaultKind::NodeFreeze:
        cluster_.node(spec.target).freeze(spec.duration);
        emit("inject node-freeze", spec.target);
        sim_.scheduleIn(spec.duration, [this, spec] { recover(spec); });
        break;

      case FaultKind::KernelMemAlloc:
        cluster_.node(spec.target).kernelMem().setFailInjected(true);
        emit("inject kernel-mem-alloc", spec.target);
        sim_.scheduleIn(spec.duration, [this, spec] { recover(spec); });
        break;

      case FaultKind::PinExhaustion:
        cluster_.node(spec.target).pins().setInjectedLimit(
            spec.pinLimitBytes);
        emit("inject pin-exhaustion", spec.target);
        sim_.scheduleIn(spec.duration, [this, spec] { recover(spec); });
        break;

      case FaultKind::AppCrash:
        cluster_.node(spec.target).killService();
        emit("inject app-crash", spec.target);
        break;

      case FaultKind::AppHang:
        cluster_.node(spec.target).stopService();
        emit("inject app-hang", spec.target);
        sim_.scheduleIn(spec.duration, [this, spec] { recover(spec); });
        break;

      case FaultKind::BadParamNull:
        cluster_.server(spec.target).interposer().armSend(
            proto::Corruption::NullPointer, spec.offByN);
        emit("inject bad-param-null", spec.target);
        break;

      case FaultKind::BadParamOffPtr:
        cluster_.server(spec.target).interposer().armSend(
            proto::Corruption::OffByNPtr, spec.offByN);
        emit("inject bad-param-off-ptr", spec.target);
        break;

      case FaultKind::BadParamOffSize:
        cluster_.server(spec.target).interposer().armSend(
            proto::Corruption::OffByNSize, spec.offByN);
        emit("inject bad-param-off-size", spec.target);
        break;

      case FaultKind::PacketDrop:
        // "We model transient packet loss as application process
        // crashes" on VIA (the loss is reported as a fatal error);
        // TCP retransmission absorbs it.
        if (press::isVia(cluster_.config().press.version))
            cluster_.node(spec.target).killService();
        emit("inject packet-drop", spec.target);
        break;
    }
}

void
Injector::recover(const FaultSpec &spec)
{
    switch (spec.kind) {
      case FaultKind::LinkDown:
        cluster_.intraNet().setLinkUp(spec.target, true);
        break;
      case FaultKind::SwitchDown:
        cluster_.intraNet().setSwitchUp(true);
        break;
      case FaultKind::NodeCrash:
        break; // Node rebooted on its own schedule
      case FaultKind::NodeFreeze:
        break; // Node unfroze on its own schedule
      case FaultKind::KernelMemAlloc:
        cluster_.node(spec.target).kernelMem().setFailInjected(false);
        break;
      case FaultKind::PinExhaustion:
        cluster_.node(spec.target).pins().setInjectedLimit(
            ~std::uint64_t(0));
        break;
      case FaultKind::AppHang:
        cluster_.node(spec.target).contService();
        break;
      default:
        break;
    }
    emit(std::string("recover ") + faultName(spec.kind),
         spec.kind == FaultKind::SwitchDown ? sim::invalidNode
                                            : spec.target);
}

} // namespace performa::fault
