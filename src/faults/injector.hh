/**
 * @file
 * The Mendosus-style fault injector: applies FaultSpecs to a live
 * simulated cluster in real (simulated) time, through the same entry
 * points the real testbed used — network component state, node
 * power/freeze, the kernel allocator trap, the cLAN driver's pin
 * threshold, daemon-delivered signals, and the library interposition
 * layer for bad parameters.
 */

#ifndef PERFORMA_FAULTS_INJECTOR_HH
#define PERFORMA_FAULTS_INJECTOR_HH

#include <functional>
#include <string>

#include "faults/fault.hh"
#include "press/cluster.hh"
#include "sim/simulation.hh"

namespace performa::fault {

/**
 * Injects faults into a Cluster. Emits inject/recover notifications
 * so experiments can place time markers.
 */
class Injector
{
  public:
    /** (time, what-happened, affected node or invalidNode). */
    using EventFn =
        std::function<void(sim::Tick, const std::string &, sim::NodeId)>;

    Injector(sim::Simulation &s, press::Cluster &cluster)
        : sim_(s), cluster_(cluster)
    {}

    /** Observe injections and recoveries. */
    void setEventFn(EventFn fn) { onEvent_ = std::move(fn); }

    /**
     * Schedule @p spec: the fault is applied at spec.injectAt and, for
     * transient faults, removed after spec.duration.
     */
    void schedule(const FaultSpec &spec);

    /** Apply @p spec right now (tests). */
    void injectNow(const FaultSpec &spec);

  private:
    void recover(const FaultSpec &spec);
    void emit(const std::string &what, sim::NodeId node);

    sim::Simulation &sim_;
    press::Cluster &cluster_;
    EventFn onEvent_;
};

} // namespace performa::fault

#endif // PERFORMA_FAULTS_INJECTOR_HH
