#include "press/config.hh"

#include "sim/logging.hh"

namespace performa::press {

const char *
versionName(Version v)
{
    switch (v) {
      case Version::TcpPress:
        return "TCP-PRESS";
      case Version::TcpPressHb:
        return "TCP-PRESS-HB";
      case Version::ViaPress0:
        return "VIA-PRESS-0";
      case Version::ViaPress3:
        return "VIA-PRESS-3";
      case Version::ViaPress5:
        return "VIA-PRESS-5";
    }
    return "?";
}

bool
isVia(Version v)
{
    return v == Version::ViaPress0 || v == Version::ViaPress3 ||
           v == Version::ViaPress5;
}

bool
usesHeartbeats(Version v)
{
    return v == Version::TcpPressHb;
}

bool
usesDynamicPinning(Version v)
{
    return v == Version::ViaPress5;
}

double
paperThroughput(Version v)
{
    switch (v) {
      case Version::TcpPress:
        return 4965.0;
      case Version::TcpPressHb:
        return 4965.0;
      case Version::ViaPress0:
        return 6031.0;
      case Version::ViaPress3:
        return 6221.0;
      case Version::ViaPress5:
        return 7058.0;
    }
    return 0.0;
}

proto::TcpConfig
tcpConfigFor(Version v)
{
    if (isVia(v))
        PANIC("tcpConfigFor called for a VIA version");
    proto::TcpConfig cfg;
    // Kernel TCP on an 800 MHz PIII: syscall + interrupt + protocol
    // processing per message, plus two copies' worth of per-byte cost.
    cfg.costs.sendFixed = sim::usec(63);
    cfg.costs.sendPerKb = 12.0;
    cfg.costs.recvFixed = sim::usec(74);
    cfg.costs.recvPerKb = 12.0;
    return cfg;
}

proto::ViaConfig
viaConfigFor(Version v)
{
    proto::ViaConfig cfg;
    switch (v) {
      case Version::ViaPress0:
        // User-level descriptor post, one copy each side, interrupt-
        // driven reception.
        cfg.mode = proto::ViaMode::SendRecv;
        cfg.costs.sendFixed = sim::usec(21);
        cfg.costs.sendPerKb = 9.0;
        cfg.costs.recvFixed = sim::usec(42);
        cfg.costs.recvPerKb = 9.0;
        break;
      case Version::ViaPress3:
        // Remote memory writes; receiver polls, no interrupts.
        cfg.mode = proto::ViaMode::RemoteWrite;
        cfg.costs.sendFixed = sim::usec(24);
        cfg.costs.sendPerKb = 9.0;
        cfg.costs.recvFixed = sim::usec(23);
        cfg.costs.recvPerKb = 9.0;
        cfg.costs.deliveryDelay = sim::usec(50);
        cfg.pollDelay = sim::usec(50);
        break;
      case Version::ViaPress5:
        // Remote writes + zero-copy: the large copies disappear; a
        // small per-page descriptor cost remains.
        cfg.mode = proto::ViaMode::RemoteWriteZeroCopy;
        cfg.costs.sendFixed = sim::usec(24);
        cfg.costs.sendPerKb = 3.0;
        cfg.costs.recvFixed = sim::usec(23);
        cfg.costs.recvPerKb = 3.0;
        cfg.costs.deliveryDelay = sim::usec(50);
        cfg.pollDelay = sim::usec(50);
        break;
      default:
        PANIC("viaConfigFor called for a TCP version");
    }
    return cfg;
}

} // namespace performa::press
