/**
 * @file
 * Builds one complete PRESS deployment: the intra-cluster fabric, the
 * (never-faulted) client network, the nodes, one communication stack
 * per node matching the chosen PRESS version, and the server
 * processes — the simulated equivalent of the paper's 4-node
 * cLAN-connected testbed.
 */

#ifndef PERFORMA_PRESS_CLUSTER_HH
#define PERFORMA_PRESS_CLUSTER_HH

#include <memory>
#include <vector>

#include "net/network.hh"
#include "os/node.hh"
#include "press/config.hh"
#include "press/server.hh"
#include "sim/simulation.hh"
#include "sim/snapshot.hh"

namespace performa::press {

/** Deployment-level configuration. */
struct ClusterConfig
{
    PressConfig press;
    net::NetworkConfig intraNet;
    net::NetworkConfig clientNet;
    osim::NodeConfig node;
    std::uint32_t clientMachines = 4;
};

/**
 * The assembled testbed. Owns everything except the Simulation.
 */
class Cluster
{
  public:
    Cluster(sim::Simulation &s, ClusterConfig cfg);

    /** Cold-start every server (initial cluster formation). */
    void startAll();

    /**
     * Stripe the @p hot_files most popular files across the caches
     * and directories, skipping the hours-long warm-up the real
     * system would need.
     */
    void prewarm(std::size_t hot_files);

    /**
     * Operator intervention: restart every living server process with
     * a clean state so the cluster re-forms ("return to normal
     * operation thus requires the intervention of an administrator").
     */
    void operatorReset();

    std::uint32_t numNodes() const { return cfg_.press.numNodes; }
    osim::Node &node(sim::NodeId i) { return *nodes_.at(i); }
    Server &server(sim::NodeId i) { return *servers_.at(i); }
    net::Network &intraNet() { return *intraNet_; }
    net::Network &clientNet() { return *clientNet_; }
    const ClusterConfig &config() const { return cfg_; }

    /** Client-network ports of the servers (DNS round-robin targets). */
    const std::vector<net::PortId> &serverClientPorts() const
    {
        return serverClientPorts_;
    }

    /** Client-network ports reserved for the client machines. */
    const std::vector<net::PortId> &clientMachinePorts() const
    {
        return clientMachinePorts_;
    }

    /**
     * @return true when the union of live servers no longer forms one
     * cooperating cluster (somebody's member set excludes a live,
     * serving node).
     */
    bool splintered() const;

    /**
     * Attach every mutable component of the testbed to @p reg, in
     * deterministic bottom-up order (fabrics, then per node: OS state,
     * interposer, comm endpoint, server). Load generators and the
     * Simulation core register themselves separately.
     */
    void registerWith(sim::SnapshotRegistry &reg);

  private:
    sim::Simulation &sim_;
    ClusterConfig cfg_;
    std::unique_ptr<net::Network> intraNet_;
    std::unique_ptr<net::Network> clientNet_;
    std::vector<std::unique_ptr<osim::Node>> nodes_;
    std::vector<std::unique_ptr<Server>> servers_;
    std::vector<net::PortId> serverClientPorts_;
    std::vector<net::PortId> clientMachinePorts_;
};

} // namespace performa::press

#endif // PERFORMA_PRESS_CLUSTER_HH
