/**
 * @file
 * Per-node disk subsystem: a small array of independent disks with
 * seek-plus-transfer service times. PRESS's disk helper threads mean
 * reads do not block the main thread; completion is delivered as a
 * callback.
 */

#ifndef PERFORMA_PRESS_DISK_HH
#define PERFORMA_PRESS_DISK_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulation.hh"
#include "sim/types.hh"

namespace performa::press {

/**
 * N independent disks with FIFO queues; a read is dispatched to the
 * disk that frees up first.
 */
class DiskArray
{
  public:
    DiskArray(sim::Simulation &s, std::uint32_t disks, sim::Tick seek,
              double bytes_per_usec)
        : sim_(s), seek_(seek), bytesPerUsec_(bytes_per_usec),
          freeAt_(disks, 0)
    {}

    /**
     * Read @p bytes; @p done fires when the transfer completes.
     * Returns the completion time.
     */
    sim::Tick
    read(std::uint64_t bytes, std::function<void()> done)
    {
        // Pick the disk with the earliest availability.
        std::size_t best = 0;
        for (std::size_t i = 1; i < freeAt_.size(); ++i) {
            if (freeAt_[i] < freeAt_[best])
                best = i;
        }
        sim::Tick start = std::max(sim_.now(), freeAt_[best]);
        sim::Tick service = seek_ +
            static_cast<sim::Tick>(static_cast<double>(bytes) /
                                   bytesPerUsec_);
        sim::Tick finish = start + service;
        freeAt_[best] = finish;
        ++reads_;
        sim_.schedule(finish, std::move(done));
        return finish;
    }

    std::uint64_t reads() const { return reads_; }

    /** Snapshot state: per-disk booking horizon and the read count. */
    struct Saved
    {
        std::vector<sim::Tick> freeAt;
        std::uint64_t reads;
    };

    Saved save() const { return Saved{freeAt_, reads_}; }

    void
    restore(const Saved &s)
    {
        freeAt_ = s.freeAt;
        reads_ = s.reads;
    }

    /** Mean queue depth proxy: how far ahead of now the disks are booked. */
    sim::Tick
    backlog() const
    {
        sim::Tick now = sim_.now();
        sim::Tick total = 0;
        for (auto f : freeAt_)
            total += f > now ? f - now : 0;
        return total;
    }

  private:
    sim::Simulation &sim_;
    sim::Tick seek_;
    double bytesPerUsec_;
    std::vector<sim::Tick> freeAt_;
    std::uint64_t reads_ = 0;
};

} // namespace performa::press

#endif // PERFORMA_PRESS_DISK_HH
