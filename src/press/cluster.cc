#include "press/cluster.hh"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "proto/tcp.hh"
#include "proto/via.hh"
#include "sim/logging.hh"

namespace performa::press {

Cluster::Cluster(sim::Simulation &s, ClusterConfig cfg)
    : sim_(s), cfg_(std::move(cfg))
{
    intraNet_ = std::make_unique<net::Network>(sim_, cfg_.intraNet);
    clientNet_ = std::make_unique<net::Network>(sim_, cfg_.clientNet);

    const std::uint32_t n = cfg_.press.numNodes;

    std::unordered_map<sim::NodeId, net::PortId> peer_ports;
    for (std::uint32_t i = 0; i < n; ++i) {
        net::PortId ip = intraNet_->addPort();
        net::PortId cp = clientNet_->addPort();
        peer_ports[i] = ip;
        serverClientPorts_.push_back(cp);
    }
    for (std::uint32_t i = 0; i < cfg_.clientMachines; ++i)
        clientMachinePorts_.push_back(clientNet_->addPort());

    std::vector<sim::NodeId> all;
    for (std::uint32_t i = 0; i < n; ++i)
        all.push_back(i);

    for (std::uint32_t i = 0; i < n; ++i) {
        nodes_.push_back(std::make_unique<osim::Node>(
            sim_, i, *intraNet_, peer_ports[i], *clientNet_,
            serverClientPorts_[i], cfg_.node));
    }

    for (std::uint32_t i = 0; i < n; ++i) {
        std::unique_ptr<proto::ClusterComm> stack;
        if (isVia(cfg_.press.version)) {
            stack = std::make_unique<proto::ViaComm>(
                *nodes_[i], viaConfigFor(cfg_.press.version), peer_ports);
        } else {
            stack = std::make_unique<proto::TcpComm>(
                *nodes_[i], tcpConfigFor(cfg_.press.version), peer_ports);
        }
        auto interposer = std::make_unique<proto::FaultInterposer>(
            std::move(stack));
        servers_.push_back(std::make_unique<Server>(
            *nodes_[i], cfg_.press, std::move(interposer), all));
    }
}

void
Cluster::startAll()
{
    for (auto &srv : servers_)
        srv->markColdStart();
    for (auto &node : nodes_)
        node->startServiceNow();
}

void
Cluster::prewarm(std::size_t hot_files)
{
    const std::uint32_t n = cfg_.press.numNodes;
    std::size_t per_node =
        cfg_.press.cacheBytes / cfg_.press.fileBytes;
    std::size_t limit = std::min<std::size_t>(hot_files, per_node * n);
    for (std::size_t f = 0; f < limit; ++f) {
        sim::NodeId owner = static_cast<sim::NodeId>(f % n);
        for (auto &srv : servers_)
            srv->prewarmFile(static_cast<sim::FileId>(f), owner);
    }
}

void
Cluster::operatorReset()
{
    for (auto &srv : servers_)
        srv->markColdStart();
    for (auto &node : nodes_)
        node->operatorRestartService();
}

void
Cluster::registerWith(sim::SnapshotRegistry &reg)
{
    reg.attach(*intraNet_);
    reg.attach(*clientNet_);
    for (std::uint32_t i = 0; i < cfg_.press.numNodes; ++i) {
        reg.attach(*nodes_[i]);
        reg.attach(servers_[i]->interposer());
        proto::ClusterComm &inner = servers_[i]->interposer().inner();
        if (auto *via = dynamic_cast<proto::ViaComm *>(&inner))
            reg.attach(*via);
        else if (auto *tcp = dynamic_cast<proto::TcpComm *>(&inner))
            reg.attach(*tcp);
        else
            PANIC("unknown comm endpoint type in snapshot registration");
        reg.attach(*servers_[i]);
    }
}

bool
Cluster::splintered() const
{
    // Collect the set of live, serving nodes.
    std::set<sim::NodeId> live;
    for (std::uint32_t i = 0; i < cfg_.press.numNodes; ++i) {
        if (nodes_[i]->up() && servers_[i]->alive() &&
            !servers_[i]->stoppedBySignal())
            live.insert(i);
    }
    for (sim::NodeId i : live) {
        for (sim::NodeId j : live) {
            if (!servers_[i]->members().count(j))
                return true;
        }
    }
    return false;
}

} // namespace performa::press
