/**
 * @file
 * The PRESS server process on one node.
 *
 * PRESS is a locality-conscious cluster web server: any node receives
 * client requests (round-robin DNS), parses them and either serves
 * locally or forwards to the node caching the file; caching decisions
 * are broadcast so every node knows what the others cache; load is
 * piggy-backed on every intra-cluster message.
 *
 * The server code is identical across the five versions of Table 1 —
 * the differences come from the communication substrate it is given
 * (TCP vs the three VIA modes), from whether the heartbeat protocol
 * runs, and from whether cached file pages are dynamically pinned
 * (VIA-PRESS-5).
 *
 * Failure semantics implemented from the paper:
 *  - a broken intra-cluster connection means "that node failed":
 *    exclude it and reconfigure the ring;
 *  - TCP-PRESS-HB additionally treats 3 missed heartbeats from the
 *    ring predecessor as failure and announces it to the others;
 *  - fatal communication-library errors (EFAULT, descriptor errors,
 *    stream desync, remote DMA errors) are handled fail-fast: the
 *    process terminates and the node's daemon restarts it;
 *  - reconfiguration happens only at process start-up and on failure
 *    detection — sub-clusters never merge back spontaneously, which
 *    is why link/switch faults leave the cluster splintered until an
 *    operator resets it;
 *  - rejoin over TCP uses the broadcast-to-lowest-ID protocol, whose
 *    "disregard joiners we still believe are members" rule recreates
 *    the paper's rejoin race after node crashes;
 *  - rejoin over VIA simply re-establishes connections.
 */

#ifndef PERFORMA_PRESS_SERVER_HH
#define PERFORMA_PRESS_SERVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/node.hh"
#include "os/service.hh"
#include "press/cache.hh"
#include "press/config.hh"
#include "press/directory.hh"
#include "press/disk.hh"
#include "press/messages.hh"
#include "press/server_stats.hh"
#include "proto/interpose.hh"
#include "sim/types.hh"

namespace performa::press {

/** Observation hooks used by experiments to place stage markers. */
struct ServerHooks
{
    /** This server excluded @p failed from its cooperating set. */
    std::function<void(sim::NodeId self, sim::NodeId failed)> onExclude;
    /** This server added @p joined to its cooperating set. */
    std::function<void(sim::NodeId self, sim::NodeId joined)> onMemberUp;
    /** Fail-fast termination with the fatal error text. */
    std::function<void(sim::NodeId self, const std::string &)> onFailFast;
    /** Rejoin attempts exhausted; continuing as a singleton. */
    std::function<void(sim::NodeId self)> onGiveUp;
    /** Process (re)started. */
    std::function<void(sim::NodeId self)> onStarted;
};

/**
 * One PRESS server process (see file comment).
 */
class Server : public osim::Service
{
  public:
    /**
     * @param node Host node (the server registers as its service).
     * @param cfg Deployment configuration.
     * @param comm Interposed communication endpoint (owned).
     * @param all_nodes Identities of every node in the static cluster
     * configuration file.
     */
    Server(osim::Node &node, const PressConfig &cfg,
           std::unique_ptr<proto::FaultInterposer> comm,
           std::vector<sim::NodeId> all_nodes);

    // osim::Service interface -----------------------------------------
    void start() override;
    void sigStop() override;
    void sigCont() override;
    void terminate(bool silent) override;
    bool alive() const override { return alive_; }

    /** Arm bad-parameter faults through the interposition layer. */
    proto::FaultInterposer &interposer() { return *comm_; }

    /** Next start() performs initial cluster formation, not a rejoin. */
    void markColdStart() { coldStart_ = true; }

    void setHooks(ServerHooks hooks) { hooks_ = std::move(hooks); }

    // Introspection (tests, experiments) ------------------------------
    const std::set<sim::NodeId> &members() const { return members_; }
    bool stoppedBySignal() const { return stopped_; }
    bool stalled() const { return stalled_; }
    std::size_t cachedFiles() const { return cache_ ? cache_->size() : 0; }
    std::uint64_t served() const { return stats_.responses; }

    /** Monotonic per-server counters (survive process restarts). */
    const ServerStats &stats() const { return stats_; }
    const PressConfig &config() const { return cfg_; }
    osim::Node &node() { return node_; }

    /**
     * Pre-warm: place @p f directly in the cache and directory
     * (steady-state initialization used by experiments to skip long
     * warm-up phases). Call on every server: the caching node passes
     * itself as @p owner.
     */
    void prewarmFile(sim::FileId f, sim::NodeId owner);

    /** Snapshot state: everything mutable in the process — membership,
     *  directory, cache contents, queued work, counters. The comm
     *  endpoint below us saves itself via its own hook. */
    struct Saved;

    Saved save() const;
    void restore(const Saved &s);

  private:
    // -- client side ---------------------------------------------------
    void onClientFrame(net::Frame &&f);
    void dispatch(const ClientRequestBody &req);
    void serveFromCache(const ClientRequestBody &req);
    void serveFromDisk(const ClientRequestBody &req);
    void forwardRequest(const ClientRequestBody &req, sim::NodeId target);
    void respondToClient(sim::RequestId req, std::uint32_t reply_port,
                         sim::FileId file, sim::Tick sent_at,
                         sim::Tick accepted_at, sim::Tick service_start);
    void finishRequest();

    // -- intra-cluster messages -----------------------------------------
    void onMessage(sim::NodeId peer, proto::AppMessage &&msg);
    void handleFwdRequest(sim::NodeId peer, const FwdRequestBody &body);
    void handleFileData(const FileDataBody &body);
    void sendFileData(sim::NodeId initial, sim::RequestId req,
                      sim::FileId file, std::uint32_t client_port,
                      sim::Tick service_start);

    // -- membership / reconfiguration ----------------------------------
    void onPeerConnected(sim::NodeId peer);
    void onPeerBroken(sim::NodeId peer, proto::BreakReason reason);
    void excludeNode(sim::NodeId failed);
    void recomputeRing();
    sim::NodeId ringSuccessor() const;
    sim::NodeId ringPredecessor() const;

    // -- rejoin ----------------------------------------------------------
    void beginColdFormation();
    void beginJoinProtocol();
    void joinTick();
    void onDatagram(sim::NodeId peer, std::uint32_t kind,
                    sim::RcAny payload);

    // -- heartbeats -------------------------------------------------------
    void hbSendTick();
    void hbCheckTick();

    // -- robust membership extension ---------------------------------------
    /**
     * Periodically probe configured nodes missing from the member set
     * and reconnect when they become reachable again (the "rigorous
     * membership algorithm" the paper calls for in Section 6.2).
     */
    void membershipProbeTick();

    // -- sending -----------------------------------------------------------
    /**
     * Send with main-loop blocking semantics: on WouldBlock the whole
     * main thread stalls (CPU paused) until the substrate reports
     * space again; queued messages flush in order.
     */
    void sendOrQueue(sim::NodeId peer, proto::AppMessage msg);
    void flushPending();
    void broadcastCacheUpdate(sim::FileId file, bool added);
    void sendCacheInfoTo(sim::NodeId peer);
    void onSendReady();
    void failFast(const std::string &reason);

    // -- cache helpers ------------------------------------------------------
    /** Insert into the local cache, broadcasting insert + evictions. */
    void cacheInsert(sim::FileId f);
    sim::NodeId leastLoaded(const std::vector<sim::NodeId> &candidates)
        const;
    std::uint32_t loadOf(sim::NodeId n) const;

    // -- main loop ---------------------------------------------------------
    /**
     * Queue work for the main coordinating thread. The main loop
     * stops draining while the thread is blocked on a send
     * (@c stalled_) or SIGSTOPped; kernel and helper-thread work
     * (stack deliveries, acks, credit returns) keeps running on the
     * CPU regardless, mirroring PRESS's helper-thread structure.
     */
    void mainExec(sim::Tick cost, std::function<void()> fn);
    void pumpMain();

    // -- lifecycle helpers -----------------------------------------------
    /** Schedule @p fn, skipped if the process restarted meanwhile. */
    void scheduleEpoch(sim::Tick delay, std::function<void()> fn);
    void sweepTick();

    /**
     * (Re)create the cache with the version-appropriate pin hooks.
     * Used by start() and by snapshot restore so a restored cache gets
     * the exact same hook closures a fresh start would install.
     */
    void makeFreshCache();

    osim::Node &node_;
    PressConfig cfg_;
    std::unique_ptr<proto::FaultInterposer> comm_;
    std::vector<sim::NodeId> allNodes_;
    ServerHooks hooks_;

    // process state
    bool alive_ = false;
    bool stopped_ = false;
    bool coldStart_ = true;
    std::uint64_t epoch_ = 0;

    // cluster state
    std::set<sim::NodeId> members_;
    std::map<sim::NodeId, std::uint32_t> loads_;
    Directory directory_;
    std::unique_ptr<FileCache> cache_;
    std::unique_ptr<DiskArray> disk_;

    // request state
    struct PendingFwd
    {
        sim::FileId file;
        std::uint32_t clientPort;
        sim::NodeId target;
        sim::Tick sentAt;
        sim::RequestId req;
        // Client latency stamps, preserved across the forward hop
        // (and across a re-dispatch when the target node dies).
        sim::Tick reqSentAt = 0;
        sim::Tick reqAcceptedAt = 0;
    };
    // Ordered: excludeNode() re-dispatches entries in iteration order
    // (scheduling main-loop work per entry) and sweepTick() walks it,
    // so the order must be deterministic for byte-identical runs.
    std::map<sim::RequestId, PendingFwd> pendingFwd_;
    std::size_t outstanding_ = 0;

    // blocking-send state
    std::deque<std::pair<sim::NodeId, proto::AppMessage>> pendingSends_;
    bool stalled_ = false;

    // main-loop queue
    struct MainItem
    {
        sim::Tick cost;
        std::function<void()> fn;
    };
    std::deque<MainItem> mainQ_;
    bool mainBusy_ = false;

    // join state
    int joinTries_ = 0;
    bool joinResponded_ = false;

    // heartbeat state
    sim::Tick lastHbAt_ = 0;

    // stats
    ServerStats stats_;
    sim::Tick stallStartedAt_ = 0;
};

struct Server::Saved
{
    // process state
    bool alive;
    bool stopped;
    bool coldStart;
    std::uint64_t epoch;

    // cluster state
    std::set<sim::NodeId> members;
    std::map<sim::NodeId, std::uint32_t> loads;
    Directory directory;
    bool hasCache;                      ///< cache_ existed (post-start)
    std::list<sim::FileId> cacheFiles;  ///< MRU-to-LRU contents
    DiskArray::Saved disk;

    // request state
    std::map<sim::RequestId, PendingFwd> pendingFwd;
    std::size_t outstanding;

    // blocking-send state
    std::deque<std::pair<sim::NodeId, proto::AppMessage>> pendingSends;
    bool stalled;

    // main-loop queue (fn closures are copyable by construction)
    std::deque<MainItem> mainQ;
    bool mainBusy;

    // join + heartbeat state
    int joinTries;
    bool joinResponded;
    sim::Tick lastHbAt;

    // stats
    ServerStats stats;
    sim::Tick stallStartedAt;
};

} // namespace performa::press

#endif // PERFORMA_PRESS_SERVER_HH
