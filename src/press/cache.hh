/**
 * @file
 * The per-node LRU file cache. For VIA-PRESS-5 every cached file's
 * pages must be registered (pinned) with the VIA provider; the pin
 * hooks connect the cache to the node's pinnable-page budget so that
 * the pin-exhaustion fault shrinks the cache, exactly as described in
 * Section 5.4 of the paper.
 */

#ifndef PERFORMA_PRESS_CACHE_HH
#define PERFORMA_PRESS_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "sim/types.hh"

namespace performa::press {

/**
 * LRU cache of uniformly sized files.
 */
class FileCache
{
  public:
    /** Try to pin @p bytes; false when the budget is exhausted. */
    using PinHook = std::function<bool(std::uint64_t)>;
    /** Unpin @p bytes. */
    using UnpinHook = std::function<void(std::uint64_t)>;
    /** A file left (or entered) the cache. */
    using EvictCb = std::function<void(sim::FileId)>;

    FileCache(std::uint64_t capacity_bytes, std::uint64_t file_bytes)
        : capacityFiles_(file_bytes ? capacity_bytes / file_bytes : 0),
          fileBytes_(file_bytes)
    {}

    /** Enable dynamic pinning (VIA-PRESS-5). */
    void
    setPinHooks(PinHook pin, UnpinHook unpin)
    {
        pin_ = std::move(pin);
        unpin_ = std::move(unpin);
    }

    bool contains(sim::FileId f) const { return index_.count(f) != 0; }

    /** LRU bump on a cache hit. */
    void
    touch(sim::FileId f)
    {
        auto it = index_.find(f);
        if (it == index_.end())
            return;
        lru_.splice(lru_.begin(), lru_, it->second);
    }

    /**
     * Insert @p f, evicting LRU files as needed (each eviction invokes
     * @p on_evict so the server can broadcast it).
     *
     * @return false when the file could not be cached at all: with
     * dynamic pinning enabled this happens when the pin budget is
     * exhausted even after evicting everything.
     */
    bool
    insert(sim::FileId f, const EvictCb &on_evict)
    {
        if (capacityFiles_ == 0)
            return false;
        if (contains(f)) {
            touch(f);
            return true;
        }
        while (index_.size() >= capacityFiles_)
            evictLru(on_evict);
        if (pin_) {
            // Zero-copy requires the file's pages pinned; shed LRU
            // files until the pin succeeds ("it drops files from its
            // cache to free up memory").
            while (!pin_(fileBytes_)) {
                if (index_.empty())
                    return false;
                evictLru(on_evict);
            }
        }
        lru_.push_front(f);
        index_[f] = lru_.begin();
        return true;
    }

    /** Evict the least recently used file (no-op when empty). */
    void
    evictLru(const EvictCb &on_evict)
    {
        if (lru_.empty())
            return;
        sim::FileId victim = lru_.back();
        lru_.pop_back();
        index_.erase(victim);
        if (unpin_)
            unpin_(fileBytes_);
        if (on_evict)
            on_evict(victim);
    }

    /** Drop everything (process restart). */
    void
    clear()
    {
        if (unpin_) {
            for (std::size_t i = 0; i < lru_.size(); ++i)
                unpin_(fileBytes_);
        }
        lru_.clear();
        index_.clear();
    }

    std::size_t size() const { return index_.size(); }
    std::size_t capacityFiles() const { return capacityFiles_; }
    std::uint64_t fileBytes() const { return fileBytes_; }

    /** Iterate cached files in MRU-to-LRU order. */
    const std::list<sim::FileId> &files() const { return lru_; }

    /**
     * Snapshot support: rebuild the contents from a saved MRU-to-LRU
     * file list WITHOUT firing pin or evict hooks — the pin accounting
     * a restore implies is rewound wholesale by the node's PinManager
     * state, so re-running the hooks would double-count it.
     */
    void
    restoreFiles(const std::list<sim::FileId> &mru_to_lru)
    {
        lru_ = mru_to_lru;
        index_.clear();
        for (auto it = lru_.begin(); it != lru_.end(); ++it)
            index_[*it] = it;
    }

  private:
    std::size_t capacityFiles_;
    std::uint64_t fileBytes_;
    std::list<sim::FileId> lru_;
    std::unordered_map<sim::FileId, std::list<sim::FileId>::iterator>
        index_;
    PinHook pin_;
    UnpinHook unpin_;
};

} // namespace performa::press

#endif // PERFORMA_PRESS_CACHE_HH
