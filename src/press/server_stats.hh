/**
 * @file
 * Per-server counters: what a production PRESS would export for
 * monitoring, and what the benches and tests use to explain
 * throughput changes (cache effectiveness, forwarding rates, disk
 * pressure, admission drops, stall time).
 */

#ifndef PERFORMA_PRESS_SERVER_STATS_HH
#define PERFORMA_PRESS_SERVER_STATS_HH

#include <cstdint>

#include "sim/types.hh"

namespace performa::press {

/** Monotonic counters for one server process (survive restarts). */
struct ServerStats
{
    // Client side
    std::uint64_t accepted = 0;   ///< requests admitted
    std::uint64_t refused = 0;    ///< dropped at the accept queue
    std::uint64_t responses = 0;  ///< responses sent to clients

    // Dispatch outcomes
    std::uint64_t localHits = 0;  ///< served from the local cache
    std::uint64_t forwarded = 0;  ///< sent to a service node
    std::uint64_t localMisses = 0;///< local disk fetch + cache fill

    // Service-node side
    std::uint64_t fwdServed = 0;  ///< forwards served for peers
    std::uint64_t fwdMisses = 0;  ///< forwards that went to disk

    // Cache dynamics
    std::uint64_t cacheInserts = 0;
    std::uint64_t cacheEvictions = 0;
    std::uint64_t pinFailures = 0; ///< evictions forced by pin budget

    // Comm layer
    std::uint64_t broadcastsSent = 0;
    std::uint64_t stallEvents = 0;      ///< main-thread blocks
    sim::Tick stalledTime = 0;          ///< total time spent blocked

    /** Fraction of admitted requests served from the local cache. */
    double
    localHitRate() const
    {
        std::uint64_t n = localHits + forwarded + localMisses;
        return n ? static_cast<double>(localHits) /
                       static_cast<double>(n)
                 : 0.0;
    }

    /** Fraction of admitted requests forwarded to a peer. */
    double
    forwardRate() const
    {
        std::uint64_t n = localHits + forwarded + localMisses;
        return n ? static_cast<double>(forwarded) /
                       static_cast<double>(n)
                 : 0.0;
    }
};

} // namespace performa::press

#endif // PERFORMA_PRESS_SERVER_STATS_HH
