/**
 * @file
 * Each node's view of what every node caches ("locality information
 * takes the form of the names of the files that are currently
 * cached"), maintained from cache-update broadcasts and cache-info
 * transfers, and purged wholesale when a node is excluded from the
 * cluster.
 */

#ifndef PERFORMA_PRESS_DIRECTORY_HH
#define PERFORMA_PRESS_DIRECTORY_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace performa::press {

/**
 * fileId -> set-of-nodes map with a per-node reverse index for O(n)
 * purges on reconfiguration.
 */
class Directory
{
  public:
    /** Record that @p node caches @p f. */
    void
    add(sim::FileId f, sim::NodeId node)
    {
        auto &v = byFile_[f];
        if (std::find(v.begin(), v.end(), node) == v.end())
            v.push_back(node);
        byNode_[node].insert(f);
    }

    /** Record that @p node no longer caches @p f. */
    void
    remove(sim::FileId f, sim::NodeId node)
    {
        auto it = byFile_.find(f);
        if (it != byFile_.end()) {
            auto &v = it->second;
            v.erase(std::remove(v.begin(), v.end(), node), v.end());
            if (v.empty())
                byFile_.erase(it);
        }
        auto nit = byNode_.find(node);
        if (nit != byNode_.end())
            nit->second.erase(f);
    }

    /** Drop all knowledge about @p node (node excluded). */
    void
    purgeNode(sim::NodeId node)
    {
        auto nit = byNode_.find(node);
        if (nit == byNode_.end())
            return;
        for (sim::FileId f : nit->second) {
            auto it = byFile_.find(f);
            if (it == byFile_.end())
                continue;
            auto &v = it->second;
            v.erase(std::remove(v.begin(), v.end(), node), v.end());
            if (v.empty())
                byFile_.erase(it);
        }
        byNode_.erase(nit);
    }

    /** Nodes believed to cache @p f (possibly empty). */
    const std::vector<sim::NodeId> &
    nodesFor(sim::FileId f) const
    {
        static const std::vector<sim::NodeId> empty;
        auto it = byFile_.find(f);
        return it == byFile_.end() ? empty : it->second;
    }

    /** Number of (file, node) entries for @p node. */
    std::size_t
    entriesOf(sim::NodeId node) const
    {
        auto it = byNode_.find(node);
        return it == byNode_.end() ? 0 : it->second.size();
    }

    void
    clear()
    {
        byFile_.clear();
        byNode_.clear();
    }

  private:
    std::unordered_map<sim::FileId, std::vector<sim::NodeId>> byFile_;
    std::unordered_map<sim::NodeId, std::unordered_set<sim::FileId>>
        byNode_;
};

} // namespace performa::press

#endif // PERFORMA_PRESS_DIRECTORY_HH
