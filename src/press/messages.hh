/**
 * @file
 * PRESS protocol message bodies: intra-cluster messages (request
 * forwarding, file-data transfer, caching-information dissemination,
 * membership), datagram kinds (heartbeats, rejoin protocol), and the
 * client-server request/response payloads.
 *
 * Load information is piggy-backed onto every intra-cluster message
 * via the common @c senderLoad field, as in the paper.
 */

#ifndef PERFORMA_PRESS_MESSAGES_HH
#define PERFORMA_PRESS_MESSAGES_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace performa::press {

/** Intra-cluster message types (AppMessage::type). */
enum MsgType : std::uint32_t
{
    MsgFwdRequest = 1, ///< forward a client request to a service node
    MsgFileData,       ///< file content back to the initial node
    MsgCacheUpdate,    ///< one cache insert/evict broadcast
    MsgCacheInfo,      ///< bulk caching info (rejoin), chunked
    MsgMemberDown,     ///< heartbeat detector announces a failure
};

/** Datagram kinds (heartbeats + TCP rejoin protocol). */
enum DgramKind : std::uint32_t
{
    DgHeartbeat = 100,
    DgJoinReq,  ///< rejoining node broadcasts its address
    DgJoinResp, ///< lowest-ID member replies with the configuration
};

/** Client-server frame kinds on the client network. */
enum ClientFrameKind : std::uint32_t
{
    ClientRequest = 1,
    ClientResponse,
};

/** Common header: every intra-cluster message carries the sender's
 *  current load (number of open connections). */
struct MsgBase
{
    std::uint32_t senderLoad = 0;
};

struct FwdRequestBody : MsgBase
{
    sim::RequestId req = 0;
    sim::FileId file = 0;
    sim::NodeId initial = sim::invalidNode;
    std::uint32_t clientPort = 0;
};

struct FileDataBody : MsgBase
{
    sim::RequestId req = 0;
    sim::FileId file = 0;
    std::uint32_t clientPort = 0;
    /** When the service node began fetching the file (latency stamp;
     *  echoed to the client for the queue/service split). */
    sim::Tick serviceStartAt = 0;
};

struct CacheUpdateBody : MsgBase
{
    sim::NodeId node = sim::invalidNode;
    sim::FileId file = 0;
    bool added = true;
};

struct CacheInfoBody : MsgBase
{
    sim::NodeId node = sim::invalidNode;
    std::vector<sim::FileId> files;
};

struct MemberDownBody : MsgBase
{
    sim::NodeId failed = sim::invalidNode;
};

/** DgJoinResp payload. */
struct JoinRespBody
{
    std::vector<sim::NodeId> members;
};

/**
 * Client network payloads. The latency stamps are measurement-only:
 * servers copy and echo them (like a request-id header) so the client
 * can split end-to-end latency into connect / queue / service stages;
 * nothing in the serving path reads them for decisions.
 */
struct ClientRequestBody
{
    sim::RequestId req = 0;
    sim::FileId file = 0;
    std::uint32_t replyPort = 0;
    sim::Tick sentAt = 0;     ///< stamped by the client
    sim::Tick acceptedAt = 0; ///< stamped by the accepting server
};

struct ClientResponseBody
{
    sim::RequestId req = 0;
    sim::Tick sentAt = 0;
    sim::Tick acceptedAt = 0;
    sim::Tick serviceStartAt = 0; ///< file fetch began (any node)
};

} // namespace performa::press

#endif // PERFORMA_PRESS_MESSAGES_HH
