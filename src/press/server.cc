#include "press/server.hh"

#include <algorithm>
#include <utility>

#include "proto/via.hh"
#include "sim/logging.hh"

namespace performa::press {

Server::Server(osim::Node &node, const PressConfig &cfg,
               std::unique_ptr<proto::FaultInterposer> comm,
               std::vector<sim::NodeId> all_nodes)
    : node_(node), cfg_(cfg), comm_(std::move(comm)),
      allNodes_(std::move(all_nodes))
{
    disk_ = std::make_unique<DiskArray>(node_.simulation(),
                                        cfg_.disksPerNode, cfg_.diskSeek,
                                        cfg_.diskBytesPerUsec);

    node_.clientNet().setHandler(node_.clientPort(),
        [this](net::Frame &&f) { onClientFrame(std::move(f)); });

    proto::CommCallbacks cbs;
    cbs.onMessage = [this](sim::NodeId peer, proto::AppMessage &&m) {
        onMessage(peer, std::move(m));
    };
    cbs.onPeerConnected = [this](sim::NodeId peer) {
        if (alive_)
            onPeerConnected(peer);
    };
    cbs.onConnectFailed = [](sim::NodeId) {
        // The peer is down or unreachable: it is simply not a member.
    };
    cbs.onPeerBroken = [this](sim::NodeId peer, proto::BreakReason r) {
        if (alive_)
            onPeerBroken(peer, r);
    };
    cbs.onSendReady = [this] {
        if (alive_)
            onSendReady();
    };
    cbs.onFatalError = [this](const std::string &reason) {
        if (alive_)
            failFast(reason);
    };
    cbs.onDatagram = [this](sim::NodeId peer, std::uint32_t kind,
                            sim::RcAny payload) {
        if (alive_ && !stopped_)
            onDatagram(peer, kind, std::move(payload));
    };
    comm_->setCallbacks(std::move(cbs));

    node_.attachService(this);
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

void
Server::scheduleEpoch(sim::Tick delay, std::function<void()> fn)
{
    std::uint64_t e = epoch_;
    node_.simulation().scheduleIn(delay, [this, e, fn = std::move(fn)] {
        if (e == epoch_ && alive_)
            fn();
    });
}

void
Server::makeFreshCache()
{
    cache_ = std::make_unique<FileCache>(cfg_.cacheBytes, cfg_.fileBytes);
    if (usesDynamicPinning(cfg_.version) && !cfg_.staticPinning) {
        auto *via = dynamic_cast<proto::ViaComm *>(&comm_->inner());
        if (!via)
            PANIC("dynamic pinning requires the VIA substrate");
        cache_->setPinHooks(
            [this, via](std::uint64_t bytes) {
                bool ok = via->registerMemory(bytes);
                if (!ok)
                    ++stats_.pinFailures;
                return ok;
            },
            [via](std::uint64_t bytes) { via->deregisterMemory(bytes); });
    }
}

void
Server::start()
{
    ++epoch_;
    alive_ = true;
    stopped_ = false;
    stalled_ = false;
    outstanding_ = 0;
    pendingFwd_.clear();
    pendingSends_.clear();
    directory_.clear();
    members_.clear();
    members_.insert(node_.id());
    loads_.clear();
    joinTries_ = 0;
    joinResponded_ = false;
    lastHbAt_ = node_.simulation().now();

    // Fresh process: fresh cache. For VIA-PRESS-5 every cached file's
    // pages are registered (pinned) with the VIA provider — either
    // per file (the paper's implementation, exposed to pin
    // exhaustion) or as one static region at start-up (the Section 7
    // pre-allocation extension).
    makeFreshCache();
    auto *via = dynamic_cast<proto::ViaComm *>(&comm_->inner());

    comm_->start();
    if (via && via->started() && usesDynamicPinning(cfg_.version) &&
        cfg_.staticPinning) {
        // Pre-pin the whole cache region once; later inserts need no
        // registration calls, so pin-exhaustion faults cannot shrink
        // the cache.
        if (!via->registerMemory(cfg_.cacheBytes)) {
            failFast("VIA static cache registration failed");
            return;
        }
    }
    if (via && !via->started()) {
        // Start-up registration failed (pin budget exhausted): the
        // process cannot run; the daemon will retry.
        failFast("VIA registration failed at start-up");
        return;
    }

    sim::Trace::log(node_.simulation().now(), "press", "node ",
                    node_.id(), " started (",
                    coldStart_ ? "cold" : "rejoin", ")");

    if (coldStart_) {
        coldStart_ = false;
        beginColdFormation();
    } else if (isVia(cfg_.version)) {
        // "The rejoining node simply tries to reestablish its
        // connection with all other nodes."
        for (sim::NodeId p : allNodes_) {
            if (p != node_.id())
                comm_->connect(p);
        }
    } else {
        beginJoinProtocol();
    }

    if (usesHeartbeats(cfg_.version)) {
        scheduleEpoch(cfg_.hbPeriod, [this] { hbSendTick(); });
        scheduleEpoch(cfg_.hbPeriod * 2, [this] { hbCheckTick(); });
    }
    if (cfg_.robustMembership) {
        scheduleEpoch(cfg_.membershipProbeInterval,
                      [this] { membershipProbeTick(); });
    }
    scheduleEpoch(sim::sec(2), [this] { sweepTick(); });

    if (hooks_.onStarted)
        hooks_.onStarted(node_.id());
}

void
Server::terminate(bool silent)
{
    if (!alive_)
        return;
    ++epoch_;
    alive_ = false;
    if (stalled_)
        stats_.stalledTime += node_.simulation().now() - stallStartedAt_;
    stalled_ = false;
    stopped_ = false;
    mainQ_.clear();
    mainBusy_ = false;
    pendingSends_.clear();
    pendingFwd_.clear();
    outstanding_ = 0;
    if (cache_)
        cache_->clear();
    if (silent)
        comm_->vanish();
    else
        comm_->shutdown();
    sim::Trace::log(node_.simulation().now(), "press", "node ",
                    node_.id(), " terminated (",
                    silent ? "silent" : "graceful", ")");
}

void
Server::sigStop()
{
    if (!alive_ || stopped_)
        return;
    stopped_ = true;
    comm_->setAppReceiving(false);
}

void
Server::sigCont()
{
    if (!alive_ || !stopped_)
        return;
    stopped_ = false;
    comm_->setAppReceiving(true);
    pumpMain();
}

void
Server::failFast(const std::string &reason)
{
    sim::Trace::log(node_.simulation().now(), "press", "node ",
                    node_.id(), " FAIL-FAST: ", reason);
    if (hooks_.onFailFast)
        hooks_.onFailFast(node_.id(), reason);
    terminate(/*silent=*/false);
    node_.serviceSelfExited(osim::ExitReason::FailFast);
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

void
Server::onClientFrame(net::Frame &&f)
{
    if (!alive_ || stopped_ || !node_.up())
        return; // client connect times out
    if (f.kind != ClientRequest || !f.payload)
        return;
    if (outstanding_ >= cfg_.acceptCap) {
        ++stats_.refused;
        return; // listen backlog full: connection refused/dropped
    }
    ++outstanding_;
    ++stats_.accepted;
    ClientRequestBody req = *f.payload.get<ClientRequestBody>();
    req.acceptedAt = node_.simulation().now();
    mainExec(cfg_.costs.acceptParse + cfg_.costs.clientConn,
             [this, req] { dispatch(req); });
}

sim::Tick
clientSendCost(const PressCosts &costs, std::uint64_t bytes)
{
    return costs.clientSendFixed +
           static_cast<sim::Tick>(costs.clientSendPerKb *
                                  static_cast<double>(bytes) / 1024.0);
}

void
Server::dispatch(const ClientRequestBody &req)
{
    if (cache_->contains(req.file)) {
        ++stats_.localHits;
        serveFromCache(req);
        return;
    }

    // Locality-conscious distribution: forward to a node caching the
    // file, least-loaded first.
    std::vector<sim::NodeId> candidates;
    for (sim::NodeId n : directory_.nodesFor(req.file)) {
        if (n != node_.id() && members_.count(n))
            candidates.push_back(n);
    }
    if (!candidates.empty()) {
        ++stats_.forwarded;
        forwardRequest(req, leastLoaded(candidates));
        return;
    }

    // Nobody caches it: the least-loaded member fetches it from disk
    // and becomes its caching node.
    std::vector<sim::NodeId> all(members_.begin(), members_.end());
    sim::NodeId svc = leastLoaded(all);
    if (svc == node_.id()) {
        ++stats_.localMisses;
        serveFromDisk(req);
    } else {
        ++stats_.forwarded;
        forwardRequest(req, svc);
    }
}

void
Server::serveFromCache(const ClientRequestBody &req)
{
    cache_->touch(req.file);
    sim::Tick svc = node_.simulation().now();
    std::uint64_t resp = cfg_.sizeOf(req.file) + cfg_.fileRespOverheadBytes;
    mainExec(cfg_.costs.cacheRead + clientSendCost(cfg_.costs, resp),
        [this, req, svc] {
            respondToClient(req.req, req.replyPort, req.file,
                            req.sentAt, req.acceptedAt, svc);
            finishRequest();
        });
}

void
Server::serveFromDisk(const ClientRequestBody &req)
{
    std::uint64_t e = epoch_;
    sim::Tick svc = node_.simulation().now();
    disk_->read(cfg_.sizeOf(req.file), [this, e, req, svc] {
        if (e != epoch_ || !alive_)
            return;
        std::uint64_t resp =
            cfg_.sizeOf(req.file) + cfg_.fileRespOverheadBytes;
        mainExec(cfg_.costs.diskReadCpu + cfg_.costs.cacheRead +
                 clientSendCost(cfg_.costs, resp),
            [this, req, svc] {
                cacheInsert(req.file);
                respondToClient(req.req, req.replyPort, req.file,
                                req.sentAt, req.acceptedAt, svc);
                finishRequest();
            });
    });
}

void
Server::forwardRequest(const ClientRequestBody &req, sim::NodeId target)
{
    PendingFwd p;
    p.file = req.file;
    p.clientPort = req.replyPort;
    p.target = target;
    p.sentAt = node_.simulation().now();
    p.req = req.req;
    p.reqSentAt = req.sentAt;
    p.reqAcceptedAt = req.acceptedAt;
    pendingFwd_[req.req] = p;

    FwdRequestBody body;
    body.senderLoad = static_cast<std::uint32_t>(outstanding_);
    body.req = req.req;
    body.file = req.file;
    body.initial = node_.id();
    body.clientPort = req.replyPort;

    proto::AppMessage m;
    m.type = MsgFwdRequest;
    m.bytes = cfg_.fwdReqBytes;
    m.body = node_.simulation().makePayload<FwdRequestBody>(body);

    mainExec(comm_->sendCost(m.bytes),
        [this, target, m = std::move(m)]() mutable {
            sendOrQueue(target, std::move(m));
        });
}

void
Server::respondToClient(sim::RequestId req, std::uint32_t reply_port,
                        sim::FileId file, sim::Tick sent_at,
                        sim::Tick accepted_at, sim::Tick service_start)
{
    net::Frame f;
    f.srcPort = node_.clientPort();
    f.dstPort = reply_port;
    f.proto = net::Proto::Client;
    f.kind = ClientResponse;
    f.bytes = cfg_.sizeOf(file) + cfg_.fileRespOverheadBytes;
    auto body = node_.simulation().makePayload<ClientResponseBody>();
    body->req = req;
    body->sentAt = sent_at;
    body->acceptedAt = accepted_at;
    body->serviceStartAt = service_start;
    f.payload = std::move(body);
    node_.clientNet().send(std::move(f));
    ++stats_.responses;
}

void
Server::finishRequest()
{
    if (outstanding_ > 0)
        --outstanding_;
}

// ---------------------------------------------------------------------
// Intra-cluster messages
// ---------------------------------------------------------------------

void
Server::onMessage(sim::NodeId peer, proto::AppMessage &&msg)
{
    if (!alive_)
        return;
    // The receive helper thread consumed the message: return the
    // descriptor/credit (PRESS's explicit flow-control messages).
    comm_->consumed(peer);

    if (!members_.count(peer))
        return; // stale traffic from an excluded node

    switch (msg.type) {
      case MsgFwdRequest: {
        auto *body = msg.body.get<FwdRequestBody>();
        loads_[peer] = body->senderLoad;
        handleFwdRequest(peer, *body);
        break;
      }
      case MsgFileData: {
        auto *body = msg.body.get<FileDataBody>();
        loads_[peer] = body->senderLoad;
        handleFileData(*body);
        break;
      }
      case MsgCacheUpdate: {
        auto *body = msg.body.get<CacheUpdateBody>();
        loads_[peer] = body->senderLoad;
        CacheUpdateBody b = *body;
        mainExec(cfg_.costs.broadcastHandle, [this, b] {
            if (b.added)
                directory_.add(b.file, b.node);
            else
                directory_.remove(b.file, b.node);
        });
        break;
      }
      case MsgCacheInfo: {
        // The handler runs later on the CPU: keep an owning handle.
        auto b = msg.body.cast<CacheInfoBody>();
        loads_[peer] = b->senderLoad;
        sim::Tick cost = sim::usec(1) + b->files.size() / 5;
        mainExec(cost, [this, b] {
            for (sim::FileId f : b->files)
                directory_.add(f, b->node);
        });
        break;
      }
      case MsgMemberDown: {
        auto *body = msg.body.get<MemberDownBody>();
        loads_[peer] = body->senderLoad;
        if (members_.count(body->failed) && body->failed != node_.id())
            excludeNode(body->failed);
        break;
      }
      default:
        PANIC("press: unknown message type ", msg.type);
    }
}

void
Server::handleFwdRequest(sim::NodeId peer, const FwdRequestBody &body)
{
    sim::Tick svc = node_.simulation().now();
    if (cache_->contains(body.file)) {
        ++stats_.fwdServed;
        cache_->touch(body.file);
        std::uint64_t data =
            cfg_.sizeOf(body.file) + cfg_.fileRespOverheadBytes;
        FwdRequestBody b = body;
        mainExec(cfg_.costs.cacheRead + comm_->sendCost(data),
            [this, b, svc] {
                sendFileData(b.initial, b.req, b.file, b.clientPort, svc);
            });
        (void)peer;
        return;
    }

    // Stale directory at the initial node, or we were picked as the
    // caching node: fetch from disk and start caching the file.
    ++stats_.fwdMisses;
    std::uint64_t e = epoch_;
    FwdRequestBody b = body;
    disk_->read(cfg_.sizeOf(body.file), [this, e, b, svc] {
        if (e != epoch_ || !alive_)
            return;
        std::uint64_t data =
            cfg_.sizeOf(b.file) + cfg_.fileRespOverheadBytes;
        mainExec(cfg_.costs.diskReadCpu + comm_->sendCost(data),
            [this, b, svc] {
                cacheInsert(b.file);
                sendFileData(b.initial, b.req, b.file, b.clientPort, svc);
            });
    });
}

void
Server::sendFileData(sim::NodeId initial, sim::RequestId req,
                     sim::FileId file, std::uint32_t client_port,
                     sim::Tick service_start)
{
    FileDataBody body;
    body.senderLoad = static_cast<std::uint32_t>(outstanding_);
    body.req = req;
    body.file = file;
    body.clientPort = client_port;
    body.serviceStartAt = service_start;

    proto::AppMessage m;
    m.type = MsgFileData;
    m.bytes = cfg_.sizeOf(file) + cfg_.fileRespOverheadBytes;
    m.body = node_.simulation().makePayload<FileDataBody>(body);
    sendOrQueue(initial, std::move(m));
}

void
Server::handleFileData(const FileDataBody &body)
{
    auto it = pendingFwd_.find(body.req);
    if (it == pendingFwd_.end())
        return; // request was re-dispatched or swept; ignore late data
    std::uint32_t port = it->second.clientPort;
    sim::Tick sent = it->second.reqSentAt;
    sim::Tick acc = it->second.reqAcceptedAt;
    pendingFwd_.erase(it);

    std::uint64_t resp = cfg_.sizeOf(body.file) + cfg_.fileRespOverheadBytes;
    sim::RequestId req = body.req;
    sim::FileId file = body.file;
    sim::Tick svc = body.serviceStartAt;
    mainExec(clientSendCost(cfg_.costs, resp),
        [this, req, port, file, sent, acc, svc] {
            respondToClient(req, port, file, sent, acc, svc);
            finishRequest();
        });
}

// ---------------------------------------------------------------------
// Membership and reconfiguration
// ---------------------------------------------------------------------

void
Server::onPeerConnected(sim::NodeId peer)
{
    bool fresh = members_.insert(peer).second;
    loads_[peer] = 0;
    recomputeRing();
    if (hooks_.onMemberUp)
        hooks_.onMemberUp(node_.id(), peer);
    sim::Trace::log(node_.simulation().now(), "press", "node ",
                    node_.id(), " member up: ", peer);
    if (fresh && cache_ && cache_->size() > 0)
        sendCacheInfoTo(peer);
}

void
Server::onPeerBroken(sim::NodeId peer, proto::BreakReason)
{
    if (members_.count(peer))
        excludeNode(peer);
}

void
Server::excludeNode(sim::NodeId failed)
{
    members_.erase(failed);
    directory_.purgeNode(failed);
    loads_.erase(failed);
    comm_->disconnect(failed);
    recomputeRing();

    // Drop queued traffic to the dead node.
    std::erase_if(pendingSends_,
                  [failed](const auto &p) { return p.first == failed; });

    // Re-dispatch in-flight requests that were forwarded to it.
    std::vector<PendingFwd> redo;
    for (auto it = pendingFwd_.begin(); it != pendingFwd_.end();) {
        if (it->second.target == failed) {
            redo.push_back(it->second);
            it = pendingFwd_.erase(it);
        } else {
            ++it;
        }
    }
    for (const auto &p : redo) {
        ClientRequestBody req;
        req.req = p.req;
        req.file = p.file;
        req.replyPort = p.clientPort;
        req.sentAt = p.reqSentAt;
        req.acceptedAt = p.reqAcceptedAt;
        mainExec(sim::usec(5), [this, req] { dispatch(req); });
    }

    // If the main loop was stalled on a send, unstick it: the queued
    // sends to the dead peer were just dropped, and the blocked one
    // (if it targeted this peer) now fails with NotConnected.
    if (stalled_) {
        stalled_ = false;
        stats_.stalledTime += node_.simulation().now() - stallStartedAt_;
        flushPending();
        pumpMain();
    }

    sim::Trace::log(node_.simulation().now(), "press", "node ",
                    node_.id(), " excluded node ", failed,
                    " (members now ", members_.size(), ")");
    if (hooks_.onExclude)
        hooks_.onExclude(node_.id(), failed);
}

void
Server::recomputeRing()
{
    lastHbAt_ = node_.simulation().now();
}

sim::NodeId
Server::ringSuccessor() const
{
    if (members_.size() < 2)
        return sim::invalidNode;
    auto it = members_.upper_bound(node_.id());
    if (it == members_.end())
        it = members_.begin();
    return *it;
}

sim::NodeId
Server::ringPredecessor() const
{
    if (members_.size() < 2)
        return sim::invalidNode;
    auto it = members_.find(node_.id());
    if (it == members_.begin())
        return *members_.rbegin();
    return *std::prev(it);
}

// ---------------------------------------------------------------------
// Cold formation and rejoin
// ---------------------------------------------------------------------

void
Server::beginColdFormation()
{
    for (sim::NodeId p : allNodes_) {
        if (p < node_.id())
            comm_->connect(p);
    }
}

void
Server::beginJoinProtocol()
{
    joinTries_ = 0;
    joinResponded_ = false;
    joinTick();
}

void
Server::joinTick()
{
    if (joinResponded_)
        return;
    if (joinTries_ >= cfg_.joinAttempts) {
        // "After the recovered node gives up trying to rejoin": it
        // keeps serving as an independent singleton until an operator
        // intervenes.
        sim::Trace::log(node_.simulation().now(), "press", "node ",
                        node_.id(), " gave up rejoining");
        if (hooks_.onGiveUp)
            hooks_.onGiveUp(node_.id());
        return;
    }
    ++joinTries_;
    for (sim::NodeId p : allNodes_) {
        if (p != node_.id())
            comm_->sendDatagram(p, DgJoinReq);
    }
    scheduleEpoch(cfg_.joinRetryInterval, [this] { joinTick(); });
}

void
Server::onDatagram(sim::NodeId peer, std::uint32_t kind,
                   sim::RcAny payload)
{
    switch (kind) {
      case DgHeartbeat:
        if (peer == ringPredecessor())
            lastHbAt_ = node_.simulation().now();
        break;
      case DgJoinReq: {
        if (members_.count(peer)) {
            // The joiner is still in our member list: we have not yet
            // detected its crash, so its rejoin messages are
            // disregarded (the paper's rejoin race).
            return;
        }
        if (*members_.begin() != node_.id())
            return; // only the lowest-ID active member replies
        auto resp = node_.simulation().makePayload<JoinRespBody>();
        resp->members.assign(members_.begin(), members_.end());
        comm_->sendDatagram(peer, DgJoinResp, std::move(resp));
        break;
      }
      case DgJoinResp: {
        if (joinResponded_ || !payload)
            return;
        joinResponded_ = true;
        auto *resp = payload.get<JoinRespBody>();
        for (sim::NodeId m : resp->members) {
            if (m != node_.id())
                comm_->connect(m);
        }
        break;
      }
      default:
        break;
    }
}

// ---------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------

void
Server::hbSendTick()
{
    scheduleEpoch(cfg_.hbPeriod, [this] { hbSendTick(); });
    if (stopped_ || !node_.up())
        return;
    sim::NodeId succ = ringSuccessor();
    if (succ != sim::invalidNode)
        comm_->sendDatagram(succ, DgHeartbeat);
}

void
Server::hbCheckTick()
{
    scheduleEpoch(cfg_.hbPeriod, [this] { hbCheckTick(); });
    if (stopped_ || !node_.up())
        return;
    sim::NodeId pred = ringPredecessor();
    if (pred == sim::invalidNode)
        return;
    sim::Tick now = node_.simulation().now();
    sim::Tick limit =
        cfg_.hbPeriod * static_cast<sim::Tick>(cfg_.hbMissThreshold);
    if (now - lastHbAt_ <= limit)
        return;

    // Three consecutive heartbeats missed: declare the predecessor
    // failed and tell the rest of the (believed) cluster.
    sim::Trace::log(now, "press", "node ", node_.id(),
                    " heartbeat timeout for node ", pred);
    excludeNode(pred);
    std::vector<sim::NodeId> targets(members_.begin(), members_.end());
    for (sim::NodeId m : targets) {
        if (m == node_.id() || !alive_)
            continue;
        MemberDownBody body;
        body.senderLoad = static_cast<std::uint32_t>(outstanding_);
        body.failed = pred;
        proto::AppMessage msg;
        msg.type = MsgMemberDown;
        msg.bytes = cfg_.cacheUpdateBytes;
        msg.body = node_.simulation().makePayload<MemberDownBody>(body);
        sendOrQueue(m, std::move(msg));
    }
}

// ---------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------

void
Server::mainExec(sim::Tick cost, std::function<void()> fn)
{
    if (!alive_)
        return;
    mainQ_.push_back(MainItem{cost, std::move(fn)});
    pumpMain();
}

void
Server::pumpMain()
{
    if (mainBusy_ || stalled_ || stopped_ || !alive_ || mainQ_.empty())
        return;
    mainBusy_ = true;
    MainItem item = std::move(mainQ_.front());
    mainQ_.pop_front();
    std::uint64_t e = epoch_;
    node_.cpu().exec(item.cost, [this, e, fn = std::move(item.fn)] {
        if (e != epoch_)
            return; // process restarted; terminate() reset mainBusy_
        mainBusy_ = false;
        if (alive_)
            fn();
        pumpMain();
    });
}

// ---------------------------------------------------------------------
// Robust membership extension
// ---------------------------------------------------------------------

void
Server::membershipProbeTick()
{
    scheduleEpoch(cfg_.membershipProbeInterval,
                  [this] { membershipProbeTick(); });
    if (stopped_ || !node_.up())
        return;
    for (sim::NodeId p : allNodes_) {
        // Only the higher-ID side of a missing pair probes (the same
        // asymmetry as cold-start formation); simultaneous connects
        // from both ends would race each other's endpoint state.
        if (p >= node_.id() || members_.count(p) || comm_->connected(p))
            continue;
        // Reconnection doubles as the membership repair: established
        // connections re-add the peer and exchange caching info
        // through the regular onPeerConnected path.
        comm_->connect(p);
    }
}

// ---------------------------------------------------------------------
// Sending with main-loop blocking semantics
// ---------------------------------------------------------------------

void
Server::sendOrQueue(sim::NodeId peer, proto::AppMessage msg)
{
    if (!alive_)
        return;
    if (stalled_) {
        pendingSends_.emplace_back(peer, std::move(msg));
        return;
    }
    switch (comm_->send(peer, msg, {})) {
      case proto::SendStatus::Ok:
        break;
      case proto::SendStatus::WouldBlock:
        // The send-thread queue is full: the main thread blocks.
        pendingSends_.emplace_front(peer, std::move(msg));
        stalled_ = true;
        ++stats_.stallEvents;
        stallStartedAt_ = node_.simulation().now();
        break;
      case proto::SendStatus::NotConnected:
        break; // membership changes will clean this up
      case proto::SendStatus::Efault:
        failFast("send() returned EFAULT (NULL data pointer)");
        break;
      case proto::SendStatus::Fatal:
        failFast("communication library descriptor error");
        break;
    }
}

void
Server::onSendReady()
{
    if (!stalled_)
        return;
    stalled_ = false;
    stats_.stalledTime += node_.simulation().now() - stallStartedAt_;
    flushPending();
    pumpMain();
}

void
Server::flushPending()
{
    while (!pendingSends_.empty() && !stalled_ && alive_) {
        auto [peer, msg] = std::move(pendingSends_.front());
        pendingSends_.pop_front();
        switch (comm_->send(peer, msg, {})) {
          case proto::SendStatus::Ok:
            break;
          case proto::SendStatus::WouldBlock:
            pendingSends_.emplace_front(peer, std::move(msg));
            stalled_ = true;
            ++stats_.stallEvents;
            stallStartedAt_ = node_.simulation().now();
            return;
          case proto::SendStatus::NotConnected:
            break;
          case proto::SendStatus::Efault:
            failFast("send() returned EFAULT (NULL data pointer)");
            return;
          case proto::SendStatus::Fatal:
            failFast("communication library descriptor error");
            return;
        }
    }
}

void
Server::broadcastCacheUpdate(sim::FileId file, bool added)
{
    // Snapshot: a fatal send below tears down the member set.
    std::vector<sim::NodeId> targets(members_.begin(), members_.end());
    for (sim::NodeId m : targets) {
        if (m == node_.id() || !alive_)
            continue;
        CacheUpdateBody body;
        body.senderLoad = static_cast<std::uint32_t>(outstanding_);
        body.node = node_.id();
        body.file = file;
        body.added = added;
        proto::AppMessage msg;
        msg.type = MsgCacheUpdate;
        msg.bytes = cfg_.cacheUpdateBytes;
        msg.body = node_.simulation().makePayload<CacheUpdateBody>(body);
        ++stats_.broadcastsSent;
        sendOrQueue(m, std::move(msg));
    }
}

void
Server::sendCacheInfoTo(sim::NodeId peer)
{
    std::size_t per_chunk =
        std::max<std::size_t>(1, cfg_.cacheInfoChunkBytes /
                                     cfg_.cacheInfoEntryBytes);
    // Snapshot the cache contents: a send below can fail fatally (an
    // armed bad-parameter fault), which terminates the process and
    // clears the cache out from under a live iterator.
    std::vector<sim::FileId> files(cache_->files().begin(),
                                   cache_->files().end());
    CacheInfoBody chunk;
    chunk.node = node_.id();
    for (sim::FileId f : files) {
        chunk.files.push_back(f);
        if (chunk.files.size() >= per_chunk) {
            proto::AppMessage msg;
            msg.type = MsgCacheInfo;
            msg.bytes = chunk.files.size() * cfg_.cacheInfoEntryBytes;
            chunk.senderLoad = static_cast<std::uint32_t>(outstanding_);
            msg.body = node_.simulation().makePayload<CacheInfoBody>(chunk);
            sendOrQueue(peer, std::move(msg));
            if (!alive_)
                return; // the send fail-fasted the process
            chunk.files.clear();
        }
    }
    if (alive_ && !chunk.files.empty()) {
        proto::AppMessage msg;
        msg.type = MsgCacheInfo;
        msg.bytes = chunk.files.size() * cfg_.cacheInfoEntryBytes;
        chunk.senderLoad = static_cast<std::uint32_t>(outstanding_);
        msg.body =
            node_.simulation().makePayload<CacheInfoBody>(std::move(chunk));
        sendOrQueue(peer, std::move(msg));
    }
}

// ---------------------------------------------------------------------
// Cache helpers
// ---------------------------------------------------------------------

void
Server::cacheInsert(sim::FileId f)
{
    if (cache_->contains(f)) {
        cache_->touch(f);
        return;
    }
    bool ok = cache_->insert(f, [this](sim::FileId victim) {
        ++stats_.cacheEvictions;
        directory_.remove(victim, node_.id());
        broadcastCacheUpdate(victim, false);
    });
    if (ok) {
        ++stats_.cacheInserts;
        directory_.add(f, node_.id());
        broadcastCacheUpdate(f, true);
    }
}

void
Server::prewarmFile(sim::FileId f, sim::NodeId owner)
{
    if (!alive_)
        return;
    if (owner == node_.id())
        cache_->insert(f, nullptr);
    directory_.add(f, owner);
}

sim::NodeId
Server::leastLoaded(const std::vector<sim::NodeId> &candidates) const
{
    sim::NodeId best = sim::invalidNode;
    std::uint32_t best_load = 0;
    for (sim::NodeId n : candidates) {
        std::uint32_t l = loadOf(n);
        if (best == sim::invalidNode || l < best_load ||
            (l == best_load && n < best)) {
            best = n;
            best_load = l;
        }
    }
    return best;
}

std::uint32_t
Server::loadOf(sim::NodeId n) const
{
    if (n == node_.id())
        return static_cast<std::uint32_t>(outstanding_);
    auto it = loads_.find(n);
    return it == loads_.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------
// Housekeeping
// ---------------------------------------------------------------------

void
Server::sweepTick()
{
    scheduleEpoch(sim::sec(2), [this] { sweepTick(); });
    sim::Tick now = node_.simulation().now();
    for (auto it = pendingFwd_.begin(); it != pendingFwd_.end();) {
        if (now - it->second.sentAt > sim::sec(10)) {
            it = pendingFwd_.erase(it);
            finishRequest(); // the client has long since timed out
        } else {
            ++it;
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot support
// ---------------------------------------------------------------------

Server::Saved
Server::save() const
{
    Saved s;
    s.alive = alive_;
    s.stopped = stopped_;
    s.coldStart = coldStart_;
    s.epoch = epoch_;
    s.members = members_;
    s.loads = loads_;
    s.directory = directory_;
    s.hasCache = cache_ != nullptr;
    if (cache_)
        s.cacheFiles = cache_->files();
    s.disk = disk_->save();
    s.pendingFwd = pendingFwd_;
    s.outstanding = outstanding_;
    s.pendingSends = pendingSends_;
    s.stalled = stalled_;
    s.mainQ = mainQ_;
    s.mainBusy = mainBusy_;
    s.joinTries = joinTries_;
    s.joinResponded = joinResponded_;
    s.lastHbAt = lastHbAt_;
    s.stats = stats_;
    s.stallStartedAt = stallStartedAt_;
    return s;
}

void
Server::restore(const Saved &s)
{
    alive_ = s.alive;
    stopped_ = s.stopped;
    coldStart_ = s.coldStart;
    epoch_ = s.epoch;
    members_ = s.members;
    loads_ = s.loads;
    directory_ = s.directory;
    if (s.hasCache) {
        // Recreate the cache so it carries the same pin-hook closures
        // a fresh start() would install, then rebuild its contents
        // without firing the hooks — the pin accounting is rewound
        // wholesale by the node's PinManager / VIA endpoint state.
        makeFreshCache();
        cache_->restoreFiles(s.cacheFiles);
    } else {
        cache_.reset();
    }
    disk_->restore(s.disk);
    pendingFwd_ = s.pendingFwd;
    outstanding_ = s.outstanding;
    pendingSends_ = s.pendingSends;
    stalled_ = s.stalled;
    mainQ_ = s.mainQ;
    mainBusy_ = s.mainBusy;
    joinTries_ = s.joinTries;
    joinResponded_ = s.joinResponded;
    lastHbAt_ = s.lastHbAt;
    stats_ = s.stats;
    stallStartedAt_ = s.stallStartedAt;
}

} // namespace performa::press
