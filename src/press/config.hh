/**
 * @file
 * PRESS versions (Table 1 of the paper) and their configuration:
 * which substrate each version uses, its messaging mode, and the
 * calibrated CPU cost parameters that land the five versions near the
 * paper's measured throughputs.
 */

#ifndef PERFORMA_PRESS_CONFIG_HH
#define PERFORMA_PRESS_CONFIG_HH

#include <cstdint>
#include <functional>
#include <string>

#include "proto/tcp.hh"
#include "proto/via.hh"
#include "sim/types.hh"

namespace performa::press {

/** The five server versions studied in the paper (Table 1). */
enum class Version
{
    TcpPress,   ///< TCP; connection breaks trigger reconfiguration
    TcpPressHb, ///< TCP; heartbeat losses trigger reconfiguration
    ViaPress0,  ///< VIA; regular messages, interrupt-driven reception
    ViaPress3,  ///< VIA; remote memory writes + polling
    ViaPress5,  ///< VIA; remote writes + zero-copy (dynamic pinning)
};

/** All five versions, in Table 1 order. */
inline constexpr Version allVersions[] = {
    Version::TcpPress, Version::TcpPressHb, Version::ViaPress0,
    Version::ViaPress3, Version::ViaPress5,
};

/** Human-readable version name as used in the paper. */
const char *versionName(Version v);

/** @return true for the VIA-based versions. */
bool isVia(Version v);

/** @return true if this version runs the heartbeat protocol. */
bool usesHeartbeats(Version v);

/** @return true if this version pins cached file pages dynamically. */
bool usesDynamicPinning(Version v);

/**
 * Near-peak throughput reported in Table 1 (requests/sec on 4 nodes),
 * used by the benches to print paper-vs-measured rows and by the
 * workload driver to pick a saturating offered load.
 */
double paperThroughput(Version v);

/** Base (substrate-independent) CPU costs of request handling. */
struct PressCosts
{
    sim::Tick acceptParse = sim::usec(150);   ///< accept + parse + dispatch
    sim::Tick clientConn = sim::usec(130);    ///< per-request client TCP
    sim::Tick cacheRead = sim::usec(10);      ///< cache lookup + read
    sim::Tick clientSendFixed = sim::usec(60);///< kernel send to client
    double clientSendPerKb = 12.0;
    sim::Tick diskReadCpu = sim::usec(30);    ///< CPU part of a disk read
    sim::Tick broadcastHandle = sim::usec(5); ///< apply a cache update
    sim::Tick creditHandle = sim::usec(2);    ///< VIA flow-control msg
};

/** Everything needed to instantiate one PRESS deployment. */
struct PressConfig
{
    Version version = Version::TcpPress;
    std::uint32_t numNodes = 4;

    std::uint64_t cacheBytes = 128ull << 20; ///< per-node file cache
    std::uint64_t fileBytes = 8192;          ///< uniform file size

    /**
     * Optional per-file size override (heavy-tailed file sets from
     * the loadgen profiles). Serving costs — disk reads, transfer
     * bytes, send CPU — use sizeOf(); cache capacity stays accounted
     * in mean-size (fileBytes) units, so the default uniform set is
     * bit-identical to the historical behaviour.
     */
    std::function<std::uint64_t(sim::FileId)> fileSizeFn;

    std::uint64_t
    sizeOf(sim::FileId f) const
    {
        return fileSizeFn ? fileSizeFn(f) : fileBytes;
    }

    PressCosts costs;

    // Heartbeat protocol (TCP-PRESS-HB): 3 missed beats = 15 s.
    sim::Tick hbPeriod = sim::sec(5);
    int hbMissThreshold = 3;

    // Rejoin protocol.
    sim::Tick joinRetryInterval = sim::sec(2);
    int joinAttempts = 7; ///< ~15 s of attempts, then give up

    /**
     * EXTENSION (paper Section 6.2: "one needs to implement a
     * rigorous membership algorithm that can repair the group
     * membership correctly when loss of heartbeats leads to the
     * incorrect splintering of the cluster"). When enabled, servers
     * periodically probe configured nodes missing from their member
     * set and re-merge when reachable, healing splinters without an
     * operator. Off by default: the paper's PRESS reconfigures only
     * at start-up and on failure detection.
     */
    bool robustMembership = false;
    sim::Tick membershipProbeInterval = sim::sec(10);

    /**
     * EXTENSION (paper Section 7: "if there are enough resources
     * these should be pre-allocated during channel set-up"). For
     * VIA-PRESS-5, register (pin) the whole cache region once at
     * start-up instead of pinning per cached file, trading memory
     * headroom for immunity to pin-exhaustion faults.
     */
    bool staticPinning = false;

    // Client-facing admission control.
    std::size_t acceptCap = 128;

    // Disks (two 10k rpm SCSI disks per node).
    std::uint32_t disksPerNode = 2;
    sim::Tick diskSeek = sim::msec(7);
    double diskBytesPerUsec = 40.0;

    // Intra-cluster message sizes.
    std::uint64_t fwdReqBytes = 300;
    std::uint64_t fileRespOverheadBytes = 200;
    std::uint64_t cacheUpdateBytes = 64;
    std::uint64_t cacheInfoChunkBytes = 32 * 1024;
    std::uint64_t cacheInfoEntryBytes = 16;
};

/** Substrate configuration for the TCP versions. */
proto::TcpConfig tcpConfigFor(Version v);

/** Substrate configuration for the VIA versions. */
proto::ViaConfig viaConfigFor(Version v);

} // namespace performa::press

#endif // PERFORMA_PRESS_CONFIG_HH
