#include "core/performability.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace performa::model {

ResolvedStages
resolveStages(const MeasuredBehavior &mb, double mttr_sec,
              const EnvParams &env)
{
    ResolvedStages r;
    r.tput = mb.tput;
    if (mb.latency.present)
        r.fracWithin = mb.latency.fracWithin;

    if (mb.detected) {
        // A: fault occurrence -> detection (measured latency).
        r.durSec[StageA] = std::min(mb.dur[StageA], mttr_sec);
        // B: reconfiguration transient (measured).
        r.durSec[StageB] = mb.dur[StageB];
        // C: stable degraded regime until the component is repaired.
        r.durSec[StageC] = std::max(
            0.0, mttr_sec - r.durSec[StageA] - r.durSec[StageB]);
        // D: post-recovery transient (measured).
        r.durSec[StageD] = mb.dur[StageD];
    } else {
        // Never detected: the whole repair window is spent in stage A
        // (e.g. TCP stalling through a link fault), followed by the
        // recovery transient.
        r.durSec[StageA] = mttr_sec;
        r.durSec[StageB] = 0.0;
        r.tput[StageB] = mb.tput[StageA];
        r.durSec[StageC] = 0.0;
        r.tput[StageC] = mb.tput[StageA];
        r.durSec[StageD] = mb.dur[StageD];
        // Mirror the throughput remap in the goodput fractions.
        r.fracWithin[StageB] = r.fracWithin[StageA];
        r.fracWithin[StageC] = r.fracWithin[StageA];
    }

    if (mb.healed) {
        // Stage E equals normal operation: no degraded time there.
        r.durSec[StageE] = 0.0;
        r.tput[StageE] = mb.normalTput;
        r.durSec[StageF] = 0.0;
        r.durSec[StageG] = 0.0;
        r.tput[StageF] = 0.0;
        r.tput[StageG] = mb.normalTput;
        if (mb.latency.present) {
            r.fracWithin[StageE] = mb.latency.fracWithinNormal;
            r.fracWithin[StageG] = mb.latency.fracWithinNormal;
        }
    } else {
        // The cluster stays splintered until the operator steps in.
        r.durSec[StageE] = env.operatorResponseSec;
        r.durSec[StageF] = env.resetDurationSec;
        r.tput[StageF] = 0.0;
        r.durSec[StageG] = env.warmupSec;
        // Warm-up after reset looks like the reconfiguration
        // transient unless phase 1 measured it directly.
        if (r.tput[StageG] <= 0.0) {
            r.tput[StageG] = mb.tput[StageB];
            r.fracWithin[StageG] = r.fracWithin[StageB];
        }
    }
    return r;
}

double
performabilityMetric(double tn, double aa, double ideal)
{
    if (aa >= 1.0)
        aa = 1.0 - 1e-12; // perfectly available: avoid log(1) = 0
    if (aa <= 0.0)
        return 0.0;
    return tn * std::log(ideal) / std::log(aa);
}

PerfResult
PerformabilityModel::evaluate(const EnvParams &env) const
{
    PerfResult res;
    res.normalTput = normalTput_;

    double tn = normalTput_;
    if (tn <= 0)
        FATAL("PerformabilityModel needs a positive normal throughput");

    double sum_w = 0.0;
    double degraded_tput = 0.0;

    // SLO-goodput view: every registered behaviour must carry latency
    // data, and the goodput baseline Tn_slo averages the per-behaviour
    // normal-operation SLO fractions.
    bool slo_valid = !entries_.empty();
    double frac_normal_sum = 0.0;
    for (const auto &e : entries_) {
        if (!e.mb.latency.present)
            slo_valid = false;
        frac_normal_sum += e.mb.latency.fracWithinNormal;
    }
    double tn_slo =
        slo_valid ? tn * frac_normal_sum /
                        static_cast<double>(entries_.size())
                  : 0.0;
    if (tn_slo <= 0.0)
        slo_valid = false;
    double degraded_goodput = 0.0;

    for (const auto &e : entries_) {
        ResolvedStages rs = resolveStages(e.mb, e.fc.mttrSec, env);
        // Aggregate over all `count` components of this class.
        double rate = e.fc.rate(); // faults per second, whole class
        double w = rate * rs.totalDuration();
        double t = 0.0;
        for (int s = 0; s < numStages; ++s)
            t += rate * rs.durSec[s] * rs.tput[s];

        sum_w += w;
        degraded_tput += t;

        FaultContribution c;
        c.name = e.fc.name;
        c.kind = e.fc.kind;
        c.degradedWeight = w;
        double deficit = 0.0;
        for (int s = 0; s < numStages; ++s)
            deficit += rate * rs.durSec[s] *
                       std::max(0.0, tn - rs.tput[s]);
        c.unavailability = deficit / tn;

        if (slo_valid) {
            double g = 0.0;
            double slo_deficit = 0.0;
            for (int s = 0; s < numStages; ++s) {
                double good = rs.tput[s] * rs.fracWithin[s];
                g += rate * rs.durSec[s] * good;
                slo_deficit += rate * rs.durSec[s] *
                               std::max(0.0, tn_slo - good);
            }
            degraded_goodput += g;
            c.sloUnavailability = slo_deficit / tn_slo;
        }
        res.breakdown.push_back(std::move(c));
    }

    if (sum_w > 1.0) {
        // The fault load saturates the model's single-fault-at-a-time
        // assumption; clamp (the paper's loads stay far from this).
        double scale = 1.0 / sum_w;
        sum_w = 1.0;
        degraded_tput *= scale;
        degraded_goodput *= scale;
        for (auto &c : res.breakdown) {
            c.unavailability *= scale;
            c.sloUnavailability *= scale;
        }
    }

    res.avgTput = (1.0 - sum_w) * tn + degraded_tput;
    res.availability = res.avgTput / tn;
    res.unavailability = 1.0 - res.availability;
    res.performability = performabilityMetric(
        tn, res.availability, env.idealAvailability);

    if (slo_valid) {
        res.sloValid = true;
        res.sloNormalTput = tn_slo;
        res.sloAvgTput = (1.0 - sum_w) * tn_slo + degraded_goodput;
        res.sloAvailability = res.sloAvgTput / tn_slo;
        res.sloUnavailability = 1.0 - res.sloAvailability;
        res.sloPerformability = performabilityMetric(
            tn_slo, res.sloAvailability, env.idealAvailability);
    }
    return res;
}

} // namespace performa::model
