#include "core/performability.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace performa::model {

ResolvedStages
resolveStages(const MeasuredBehavior &mb, double mttr_sec,
              const EnvParams &env)
{
    ResolvedStages r;
    r.tput = mb.tput;

    if (mb.detected) {
        // A: fault occurrence -> detection (measured latency).
        r.durSec[StageA] = std::min(mb.dur[StageA], mttr_sec);
        // B: reconfiguration transient (measured).
        r.durSec[StageB] = mb.dur[StageB];
        // C: stable degraded regime until the component is repaired.
        r.durSec[StageC] = std::max(
            0.0, mttr_sec - r.durSec[StageA] - r.durSec[StageB]);
        // D: post-recovery transient (measured).
        r.durSec[StageD] = mb.dur[StageD];
    } else {
        // Never detected: the whole repair window is spent in stage A
        // (e.g. TCP stalling through a link fault), followed by the
        // recovery transient.
        r.durSec[StageA] = mttr_sec;
        r.durSec[StageB] = 0.0;
        r.tput[StageB] = mb.tput[StageA];
        r.durSec[StageC] = 0.0;
        r.tput[StageC] = mb.tput[StageA];
        r.durSec[StageD] = mb.dur[StageD];
    }

    if (mb.healed) {
        // Stage E equals normal operation: no degraded time there.
        r.durSec[StageE] = 0.0;
        r.tput[StageE] = mb.normalTput;
        r.durSec[StageF] = 0.0;
        r.durSec[StageG] = 0.0;
        r.tput[StageF] = 0.0;
        r.tput[StageG] = mb.normalTput;
    } else {
        // The cluster stays splintered until the operator steps in.
        r.durSec[StageE] = env.operatorResponseSec;
        r.durSec[StageF] = env.resetDurationSec;
        r.tput[StageF] = 0.0;
        r.durSec[StageG] = env.warmupSec;
        // Warm-up after reset looks like the reconfiguration
        // transient unless phase 1 measured it directly.
        if (r.tput[StageG] <= 0.0)
            r.tput[StageG] = mb.tput[StageB];
    }
    return r;
}

double
performabilityMetric(double tn, double aa, double ideal)
{
    if (aa >= 1.0)
        aa = 1.0 - 1e-12; // perfectly available: avoid log(1) = 0
    if (aa <= 0.0)
        return 0.0;
    return tn * std::log(ideal) / std::log(aa);
}

PerfResult
PerformabilityModel::evaluate(const EnvParams &env) const
{
    PerfResult res;
    res.normalTput = normalTput_;

    double tn = normalTput_;
    if (tn <= 0)
        FATAL("PerformabilityModel needs a positive normal throughput");

    double sum_w = 0.0;
    double degraded_tput = 0.0;

    for (const auto &e : entries_) {
        ResolvedStages rs = resolveStages(e.mb, e.fc.mttrSec, env);
        // Aggregate over all `count` components of this class.
        double rate = e.fc.rate(); // faults per second, whole class
        double w = rate * rs.totalDuration();
        double t = 0.0;
        for (int s = 0; s < numStages; ++s)
            t += rate * rs.durSec[s] * rs.tput[s];

        sum_w += w;
        degraded_tput += t;

        FaultContribution c;
        c.name = e.fc.name;
        c.kind = e.fc.kind;
        c.degradedWeight = w;
        double deficit = 0.0;
        for (int s = 0; s < numStages; ++s)
            deficit += rate * rs.durSec[s] *
                       std::max(0.0, tn - rs.tput[s]);
        c.unavailability = deficit / tn;
        res.breakdown.push_back(std::move(c));
    }

    if (sum_w > 1.0) {
        // The fault load saturates the model's single-fault-at-a-time
        // assumption; clamp (the paper's loads stay far from this).
        double scale = 1.0 / sum_w;
        sum_w = 1.0;
        degraded_tput *= scale;
        for (auto &c : res.breakdown)
            c.unavailability *= scale;
    }

    res.avgTput = (1.0 - sum_w) * tn + degraded_tput;
    res.availability = res.avgTput / tn;
    res.unavailability = 1.0 - res.availability;
    res.performability = performabilityMetric(
        tn, res.availability, env.idealAvailability);
    return res;
}

} // namespace performa::model
