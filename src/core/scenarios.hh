/**
 * @file
 * Scenario builders for the paper's Section 6: compose phase-1
 * measured behaviours with fault loads into per-version
 * performability results — the same-fault-load comparison (Fig. 6),
 * the pessimistic VIA loads (Figs. 7-10), and the crossover factor
 * quoted in the abstract ("approximately 4 times the rate").
 */

#ifndef PERFORMA_CORE_SCENARIOS_HH
#define PERFORMA_CORE_SCENARIOS_HH

#include <functional>

#include "core/performability.hh"
#include "press/config.hh"

namespace performa::model {

/** Supplies the phase-1 behaviour of (version, fault kind). */
using BehaviorLookup = std::function<MeasuredBehavior(
    press::Version, fault::FaultKind)>;

/** Knobs for one modeling scenario. */
struct ScenarioOptions
{
    /** Per-node application-fault MTTF (Table 3 "var"). */
    double appMttfSec = 30 * 86400.0;

    /**
     * VIA-only additions (zero = absent), per Section 6.3:
     * transient packet drops modeled as process crashes
     * (cluster-wide rate), extra application faults from the harder
     * programming model (per-node rate, split by the app mix), and
     * system faults from immature hardware/firmware modeled as
     * switch crashes.
     */
    double viaPacketDropMttfSec = 0.0;
    double viaExtraAppMttfSec = 0.0;
    double viaSystemFaultMttfSec = 0.0;

    /**
     * Crossover experiments: multiply the rates of VIA link, switch
     * and application faults by this factor.
     */
    double viaRateScale = 1.0;

    EnvParams env;
    int numNodes = 4;
};

/**
 * Build the phase-2 model for one version under @p opts.
 * @p lookup provides the measured behaviours; the version's normal
 * throughput is taken from its app-crash behaviour.
 */
PerformabilityModel buildModel(press::Version v,
                               const BehaviorLookup &lookup,
                               const ScenarioOptions &opts);

/** Convenience: build + evaluate. */
PerfResult evaluateScenario(press::Version v,
                            const BehaviorLookup &lookup,
                            const ScenarioOptions &opts);

/**
 * Find the factor by which the VIA version's link/switch/application
 * fault rates must grow for its performability to drop to the TCP
 * version's (bisection on viaRateScale). Returns the factor, or the
 * search bound if no crossing exists below it.
 */
double crossoverFactor(press::Version via_version,
                       press::Version tcp_version,
                       const BehaviorLookup &lookup,
                       const ScenarioOptions &base_opts,
                       double max_factor = 64.0);

} // namespace performa::model

#endif // PERFORMA_CORE_SCENARIOS_HH
