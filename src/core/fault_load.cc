#include "core/fault_load.hh"

namespace performa::model {

namespace {

constexpr double kMinute = 60.0;
constexpr double kHour = 3600.0;
constexpr double kDay = 86400.0;
constexpr double kWeek = 7 * kDay;
constexpr double kMonth = 30 * kDay;
constexpr double kYear = 365 * kDay;

} // namespace

double
appFaultShare(fault::FaultKind k)
{
    switch (k) {
      case fault::FaultKind::AppCrash:
        return 0.40;
      case fault::FaultKind::AppHang:
        return 0.40;
      case fault::FaultKind::BadParamNull:
        return 0.08;
      case fault::FaultKind::BadParamOffPtr:
        return 0.09;
      case fault::FaultKind::BadParamOffSize:
        return 0.02;
      default:
        return 0.0;
    }
}

std::vector<FaultClass>
table3FaultLoad(const FaultLoadParams &p)
{
    std::vector<FaultClass> load;
    double n = static_cast<double>(p.numNodes);

    load.push_back({"link down", fault::FaultKind::LinkDown, n,
                    6 * kMonth, 3 * kMinute});
    load.push_back({"switch down", fault::FaultKind::SwitchDown, 1,
                    kYear, kHour});
    load.push_back({"node crash", fault::FaultKind::NodeCrash, n,
                    2 * kWeek, 3 * kMinute});
    load.push_back({"node freeze", fault::FaultKind::NodeFreeze, n,
                    2 * kWeek, 3 * kMinute});
    load.push_back({"memory pinning", fault::FaultKind::PinExhaustion, n,
                    61 * kDay, 3 * kMinute});
    load.push_back({"memory allocation",
                    fault::FaultKind::KernelMemAlloc, n, 61 * kDay,
                    3 * kMinute});

    const fault::FaultKind app_kinds[] = {
        fault::FaultKind::AppCrash,
        fault::FaultKind::AppHang,
        fault::FaultKind::BadParamNull,
        fault::FaultKind::BadParamOffPtr,
        fault::FaultKind::BadParamOffSize,
    };
    const char *app_names[] = {
        "process crash", "process hang", "null pointer",
        "off-by-N pointer", "off-by-N size",
    };
    for (std::size_t i = 0; i < std::size(app_kinds); ++i) {
        double share = appFaultShare(app_kinds[i]);
        load.push_back({app_names[i], app_kinds[i], n,
                        p.appMttfSec / share, 3 * kMinute});
    }
    return load;
}

void
scaleRates(std::vector<FaultClass> &load,
           const std::vector<fault::FaultKind> &kinds, double k)
{
    if (k <= 0)
        return;
    for (auto &fc : load) {
        for (auto kind : kinds) {
            if (fc.kind == kind) {
                fc.mttfSec /= k;
                break;
            }
        }
    }
}

} // namespace performa::model
