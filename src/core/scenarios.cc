#include "core/scenarios.hh"

#include <cmath>

#include "sim/logging.hh"

namespace performa::model {

namespace {

constexpr double kHourSec = 3600.0;
constexpr double kAppMttr = 180.0;

} // namespace

PerformabilityModel
buildModel(press::Version v, const BehaviorLookup &lookup,
           const ScenarioOptions &opts)
{
    FaultLoadParams params;
    params.numNodes = opts.numNodes;
    params.appMttfSec = opts.appMttfSec;
    std::vector<FaultClass> load = table3FaultLoad(params);

    bool via = press::isVia(v);

    if (via && opts.viaRateScale != 1.0) {
        scaleRates(load,
                   {fault::FaultKind::LinkDown,
                    fault::FaultKind::SwitchDown,
                    fault::FaultKind::AppCrash,
                    fault::FaultKind::AppHang,
                    fault::FaultKind::BadParamNull,
                    fault::FaultKind::BadParamOffPtr,
                    fault::FaultKind::BadParamOffSize},
                   opts.viaRateScale);
    }

    if (via && opts.viaPacketDropMttfSec > 0.0) {
        // Transient packet loss resets the channel: behaves like a
        // process crash on VIA; TCP retransmission absorbs it. Drops
        // happen per NIC/link, so the rate is per node.
        load.push_back({"packet drop", fault::FaultKind::PacketDrop,
                        static_cast<double>(opts.numNodes),
                        opts.viaPacketDropMttfSec, kAppMttr});
    }
    if (via && opts.viaExtraAppMttfSec > 0.0) {
        const fault::FaultKind kinds[] = {
            fault::FaultKind::AppCrash,
            fault::FaultKind::AppHang,
            fault::FaultKind::BadParamNull,
            fault::FaultKind::BadParamOffPtr,
            fault::FaultKind::BadParamOffSize,
        };
        for (auto k : kinds) {
            load.push_back({"extra app bugs", k,
                            static_cast<double>(opts.numNodes),
                            opts.viaExtraAppMttfSec / appFaultShare(k),
                            kAppMttr});
        }
    }
    if (via && opts.viaSystemFaultMttfSec > 0.0) {
        // Hardware/firmware bugs in the SAN modeled as switch crashes.
        load.push_back({"system fault", fault::FaultKind::SwitchDown,
                        1.0, opts.viaSystemFaultMttfSec, kHourSec});
    }

    double tn = lookup(v, fault::FaultKind::AppCrash).normalTput;
    if (tn <= 0)
        FATAL("behaviour lookup returned no normal throughput for ",
              press::versionName(v));

    PerformabilityModel model(tn);
    for (const auto &fc : load) {
        // PacketDrop reuses the app-crash behaviour ("modeled as
        // application process crashes"); for TCP it has no effect, so
        // it is only ever added on VIA versions above.
        fault::FaultKind behaviour_kind =
            fc.kind == fault::FaultKind::PacketDrop
                ? fault::FaultKind::AppCrash
                : fc.kind;
        model.addFault(fc, lookup(v, behaviour_kind));
    }
    return model;
}

PerfResult
evaluateScenario(press::Version v, const BehaviorLookup &lookup,
                 const ScenarioOptions &opts)
{
    return buildModel(v, lookup, opts).evaluate(opts.env);
}

double
crossoverFactor(press::Version via_version, press::Version tcp_version,
                const BehaviorLookup &lookup,
                const ScenarioOptions &base_opts, double max_factor)
{
    ScenarioOptions tcp_opts = base_opts;
    tcp_opts.viaRateScale = 1.0;
    double p_tcp =
        evaluateScenario(tcp_version, lookup, tcp_opts).performability;

    auto p_via = [&](double k) {
        ScenarioOptions o = base_opts;
        o.viaRateScale = k;
        return evaluateScenario(via_version, lookup, o).performability;
    };

    if (p_via(1.0) <= p_tcp)
        return 1.0; // VIA never ahead to begin with
    if (p_via(max_factor) > p_tcp)
        return max_factor; // no crossing below the bound

    double lo = 1.0, hi = max_factor;
    for (int i = 0; i < 60; ++i) {
        double mid = 0.5 * (lo + hi);
        if (p_via(mid) > p_tcp)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace performa::model
