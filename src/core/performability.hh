/**
 * @file
 * Phase 2 of the methodology: combine per-fault 7-stage behaviours
 * with a fault load (MTTF/MTTR per component class) into average
 * throughput AT, average availability AA, and the performability
 * metric
 *
 *     P = Tn * log(A_I) / log(AA)
 *
 * where A_I is an ideal availability (0.99999). P scales linearly
 * with performance and, for small unavailability, inversely with
 * unavailability.
 *
 * The combination assumes uncorrelated faults with exponentially
 * distributed arrivals, queued so a single fault is in effect at a
 * time:
 *
 *     AT = (1 - sum_c W_c) * Tn
 *          + sum_c sum_{s=A..G} (D_c^s / MTTF_c) * T_c^s
 *     AA = AT / Tn,     W_c = (sum_s D_c^s) / MTTF_c
 */

#ifndef PERFORMA_CORE_PERFORMABILITY_HH
#define PERFORMA_CORE_PERFORMABILITY_HH

#include <string>
#include <vector>

#include "core/fault_load.hh"
#include "core/seven_stage.hh"

namespace performa::model {

/** Evaluator-supplied environmental parameters. */
struct EnvParams
{
    /** How long a splintered cluster waits for the operator (D_E). */
    double operatorResponseSec = 600.0;
    /** How long the reset itself takes at zero throughput (D_F). */
    double resetDurationSec = 60.0;
    /** Warm-up transient after the reset (D_G). */
    double warmupSec = 20.0;
    /** Ideal availability A_I in the performability metric. */
    double idealAvailability = 0.99999;
};

/**
 * Resolve the full stage table for one fault class: keep measured
 * durations for A/B/D, derive C from the component's MTTR, and
 * attach operator stages E/F/G when the service cannot heal itself.
 */
ResolvedStages resolveStages(const MeasuredBehavior &mb, double mttr_sec,
                             const EnvParams &env);

/** One fault class's share of the overall unavailability. */
struct FaultContribution
{
    std::string name;
    fault::FaultKind kind;
    double unavailability = 0.0; ///< contribution to (1 - AA)
    double degradedWeight = 0.0; ///< W_c (fraction of time in stages)
    /** Contribution to (1 - AA_slo); zero without latency data. */
    double sloUnavailability = 0.0;
};

/** Model output. */
struct PerfResult
{
    double normalTput = 0.0;      ///< Tn
    double avgTput = 0.0;         ///< AT
    double availability = 0.0;    ///< AA
    double unavailability = 0.0;  ///< 1 - AA
    double performability = 0.0;  ///< P
    std::vector<FaultContribution> breakdown;

    /**
     * The same metrics defined over SLO-goodput (requests served
     * within the latency SLO) instead of raw throughput. Valid only
     * when every registered behaviour carried latency data; the
     * throughput metrics above are always valid.
     */
    bool sloValid = false;
    double sloNormalTput = 0.0;     ///< Tn_slo = Tn * fracWithinNormal
    double sloAvgTput = 0.0;        ///< AT_slo
    double sloAvailability = 0.0;   ///< AA_slo
    double sloUnavailability = 0.0; ///< 1 - AA_slo
    double sloPerformability = 0.0; ///< P_slo
};

/** The performability metric by itself. */
double performabilityMetric(double tn, double aa, double ideal);

/**
 * The phase-2 model: add (fault class, measured behaviour) pairs,
 * then evaluate.
 */
class PerformabilityModel
{
  public:
    explicit PerformabilityModel(double normal_tput)
        : normalTput_(normal_tput)
    {}

    /** Register one fault class with its measured behaviour. */
    void
    addFault(const FaultClass &fc, const MeasuredBehavior &mb)
    {
        entries_.push_back({fc, mb});
    }

    std::size_t faultCount() const { return entries_.size(); }

    /** Evaluate AT, AA, P and the per-fault breakdown. */
    PerfResult evaluate(const EnvParams &env = {}) const;

  private:
    struct Entry
    {
        FaultClass fc;
        MeasuredBehavior mb;
    };

    double normalTput_;
    std::vector<Entry> entries_;
};

} // namespace performa::model

#endif // PERFORMA_CORE_PERFORMABILITY_HH
