/**
 * @file
 * The 7-stage piece-wise linear model of Figure 1 in the paper: a
 * service's throughput response to one fault is described by stages
 *
 *   A  degraded throughput from fault occurrence to detection,
 *   B  transient throughput while the system reconfigures,
 *   C  stable degraded regime until the component is repaired,
 *   D  transient throughput right after component recovery,
 *   E  stable regime after recovery (may stay degraded if the
 *      service cannot heal itself),
 *   F  throughput while an operator resets the server,
 *   G  transient throughput right after the reset.
 *
 * Phase 1 measures the stage throughputs and the measurable durations
 * (detection latency, transients); phase 2 substitutes environmental
 * durations (MTTR, operator response time) for the rest.
 */

#ifndef PERFORMA_CORE_SEVEN_STAGE_HH
#define PERFORMA_CORE_SEVEN_STAGE_HH

#include <array>

#include "sim/types.hh"

namespace performa::model {

/** Stage indices into the per-stage arrays. */
enum Stage : int
{
    StageA = 0,
    StageB,
    StageC,
    StageD,
    StageE,
    StageF,
    StageG,
};

inline constexpr int numStages = 7;

/** Stage letter for reports. */
constexpr char
stageLetter(int s)
{
    return static_cast<char>('A' + s);
}

/**
 * A latency service-level objective: "quantile of end-to-end latency
 * must stay at or below threshold" (e.g. p99 <= 500 ms).
 */
struct LatencySlo
{
    double quantile = 0.99;
    std::uint64_t thresholdUs = 0; ///< microseconds

    bool valid() const { return thresholdUs > 0; }
};

/**
 * Latency view of one measured behaviour: what fraction of responses
 * met the SLO threshold, per stage of the fault timeline, plus
 * normal-operation quantiles for reports. Attached to
 * MeasuredBehavior when phase 1 ran with latency recording; absent
 * (present == false) rows leave the throughput-only model unchanged.
 */
struct LatencySummary
{
    bool present = false;

    /** The SLO the fractions were computed against. */
    double sloQuantile = 0.0;
    double sloThresholdUs = 0.0;

    /** Fraction of normal-operation responses within the SLO. */
    double fracWithinNormal = 1.0;
    /** Fraction within the SLO during each fault stage. */
    std::array<double, numStages> fracWithin{1, 1, 1, 1, 1, 1, 1};

    /** Normal-operation end-to-end quantiles (microseconds). */
    double p50Us = 0.0;
    double p90Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    /** End-to-end p99 during each fault stage (microseconds). */
    std::array<double, numStages> stageP99Us{};
};

/**
 * What phase 1 measured for one (version, fault) pair.
 *
 * Durations for stages C, E, F and G are environmental and resolved
 * by the phase-2 model; only the throughput levels come from the
 * experiment for those stages.
 */
struct MeasuredBehavior
{
    /** Throughput under normal operation (requests/sec). */
    double normalTput = 0.0;

    /** Per-stage throughput levels (requests/sec). */
    std::array<double, numStages> tput{};

    /**
     * Measured durations in seconds. Only A (detection latency), B
     * (reconfiguration transient) and D (recovery transient) are
     * meaningful; the rest are resolved by the model.
     */
    std::array<double, numStages> dur{};

    /** The service noticed the fault before the component repaired. */
    bool detected = false;

    /**
     * The service returned to normal operation by itself; when false,
     * stage E persists at a degraded level until an operator resets
     * the cluster (stages F and G follow).
     */
    bool healed = true;

    /** Latency view (only when phase 1 recorded latencies). */
    LatencySummary latency;
};

/** Fully resolved stage durations + throughputs (phase 2). */
struct ResolvedStages
{
    std::array<double, numStages> tput{};
    std::array<double, numStages> durSec{};

    /**
     * SLO-goodput view: fraction of each stage's served requests that
     * met the latency SLO. tput[s] * fracWithin[s] is the stage's
     * goodput. All ones when the behaviour carried no latency data.
     */
    std::array<double, numStages> fracWithin{1, 1, 1, 1, 1, 1, 1};

    /** Total degraded time per fault occurrence (seconds). */
    double
    totalDuration() const
    {
        double t = 0;
        for (double d : durSec)
            t += d;
        return t;
    }
};

} // namespace performa::model

#endif // PERFORMA_CORE_SEVEN_STAGE_HH
