/**
 * @file
 * The 7-stage piece-wise linear model of Figure 1 in the paper: a
 * service's throughput response to one fault is described by stages
 *
 *   A  degraded throughput from fault occurrence to detection,
 *   B  transient throughput while the system reconfigures,
 *   C  stable degraded regime until the component is repaired,
 *   D  transient throughput right after component recovery,
 *   E  stable regime after recovery (may stay degraded if the
 *      service cannot heal itself),
 *   F  throughput while an operator resets the server,
 *   G  transient throughput right after the reset.
 *
 * Phase 1 measures the stage throughputs and the measurable durations
 * (detection latency, transients); phase 2 substitutes environmental
 * durations (MTTR, operator response time) for the rest.
 */

#ifndef PERFORMA_CORE_SEVEN_STAGE_HH
#define PERFORMA_CORE_SEVEN_STAGE_HH

#include <array>

#include "sim/types.hh"

namespace performa::model {

/** Stage indices into the per-stage arrays. */
enum Stage : int
{
    StageA = 0,
    StageB,
    StageC,
    StageD,
    StageE,
    StageF,
    StageG,
};

inline constexpr int numStages = 7;

/** Stage letter for reports. */
constexpr char
stageLetter(int s)
{
    return static_cast<char>('A' + s);
}

/**
 * What phase 1 measured for one (version, fault) pair.
 *
 * Durations for stages C, E, F and G are environmental and resolved
 * by the phase-2 model; only the throughput levels come from the
 * experiment for those stages.
 */
struct MeasuredBehavior
{
    /** Throughput under normal operation (requests/sec). */
    double normalTput = 0.0;

    /** Per-stage throughput levels (requests/sec). */
    std::array<double, numStages> tput{};

    /**
     * Measured durations in seconds. Only A (detection latency), B
     * (reconfiguration transient) and D (recovery transient) are
     * meaningful; the rest are resolved by the model.
     */
    std::array<double, numStages> dur{};

    /** The service noticed the fault before the component repaired. */
    bool detected = false;

    /**
     * The service returned to normal operation by itself; when false,
     * stage E persists at a degraded level until an operator resets
     * the cluster (stages F and G follow).
     */
    bool healed = true;
};

/** Fully resolved stage durations + throughputs (phase 2). */
struct ResolvedStages
{
    std::array<double, numStages> tput{};
    std::array<double, numStages> durSec{};

    /** Total degraded time per fault occurrence (seconds). */
    double
    totalDuration() const
    {
        double t = 0;
        for (double d : durSec)
            t += d;
        return t;
    }
};

} // namespace performa::model

#endif // PERFORMA_CORE_SEVEN_STAGE_HH
