/**
 * @file
 * Fault loads: the MTTF/MTTR table of the paper (Table 3), the
 * application-fault mix of Chillarege et al. used to split the
 * application fault rate (40% crash / 40% hang / 8% null pointer /
 * 9% off-by-N pointer / 2% off-by-N size), and helpers to scale and
 * extend the load for the sensitivity scenarios of Section 6.3.
 */

#ifndef PERFORMA_CORE_FAULT_LOAD_HH
#define PERFORMA_CORE_FAULT_LOAD_HH

#include <string>
#include <vector>

#include "faults/fault.hh"
#include "sim/types.hh"

namespace performa::model {

/**
 * One class of faults in the load: @c count identical components,
 * each failing independently with the given MTTF, repaired in MTTR.
 */
struct FaultClass
{
    std::string name;
    fault::FaultKind kind = fault::FaultKind::LinkDown;
    double count = 1.0;  ///< number of components of this class
    double mttfSec = 0.0;
    double mttrSec = 0.0;

    /** Aggregate fault rate of the class (faults/sec). */
    double
    rate() const
    {
        return mttfSec > 0 ? count / mttfSec : 0.0;
    }
};

/** Parameters of the Table 3 load. */
struct FaultLoadParams
{
    int numNodes = 4;
    /** Per-node application fault MTTF ("once per day" ... "once per
     *  month"); split across the five application fault classes. */
    double appMttfSec = 86400.0;
};

/** Application-fault share (Chillarege et al. distribution). */
double appFaultShare(fault::FaultKind k);

/**
 * Build the paper's Table 3 fault load. Durations: link 6 months /
 * 3 min; switch 1 year / 1 hour; node crash and freeze 2 weeks /
 * 3 min; memory pinning and allocation 61 days / 3 min; application
 * faults split per appFaultShare with 3 min MTTR.
 */
std::vector<FaultClass> table3FaultLoad(const FaultLoadParams &p);

/** Scale the MTTF of selected classes by 1/k (k times more faults). */
void scaleRates(std::vector<FaultClass> &load,
                const std::vector<fault::FaultKind> &kinds, double k);

} // namespace performa::model

#endif // PERFORMA_CORE_FAULT_LOAD_HH
