/**
 * @file
 * The bad-parameter fault-injection layer: a decorator interposed
 * between PRESS and the communication library, exactly like the
 * paper's software layer that "traps specific calls, modifies one or
 * more parameters, and then passes the call to the communication
 * library" (send()/recv() for sockets, VipPostSend()/VipPostRecv()
 * for VIPL).
 */

#ifndef PERFORMA_PROTO_INTERPOSE_HH
#define PERFORMA_PROTO_INTERPOSE_HH

#include <memory>
#include <optional>

#include "proto/comm.hh"

namespace performa::proto {

/** The three corrupted-parameter classes studied in the paper. */
enum class Corruption
{
    NullPointer, ///< data pointer replaced with NULL
    OffByNPtr,   ///< data pointer off by N bytes
    OffByNSize,  ///< buffer size off by N bytes
};

/**
 * Decorator that corrupts the parameters of the next send or receive
 * call, then restores transparent pass-through.
 */
class FaultInterposer : public ClusterComm
{
  public:
    explicit FaultInterposer(std::unique_ptr<ClusterComm> inner)
        : inner_(std::move(inner))
    {}

    /**
     * Corrupt the parameters of the next send()/VipPostSend() call.
     * @param n Offset in bytes for the off-by-N classes (0-100 per
     * the paper's observed dominant range).
     */
    void
    armSend(Corruption kind, int n = 16)
    {
        armedSend_ = kind;
        armedN_ = n;
    }

    /**
     * Corrupt the next posted receive descriptor / recv() buffer: the
     * next delivered message raises a fatal library error at this
     * (receiving) end.
     */
    void armRecv(Corruption kind, int n = 16)
    {
        armedRecv_ = kind;
        armedN_ = n;
    }

    bool sendArmed() const { return armedSend_.has_value(); }
    bool recvArmed() const { return armedRecv_.has_value(); }

    ClusterComm &inner() { return *inner_; }

    // ClusterComm interface -------------------------------------------

    void setCallbacks(CommCallbacks cbs) override;
    void start() override { inner_->start(); }
    void connect(sim::NodeId peer) override { inner_->connect(peer); }

    bool connected(sim::NodeId peer) const override
    {
        return inner_->connected(peer);
    }

    SendStatus send(sim::NodeId peer, AppMessage msg,
                    const SendParams &params) override;

    void sendDatagram(sim::NodeId peer, std::uint32_t kind,
                      sim::RcAny payload = {}) override
    {
        inner_->sendDatagram(peer, kind, std::move(payload));
    }

    void consumed(sim::NodeId peer) override { inner_->consumed(peer); }

    void disconnect(sim::NodeId peer) override
    {
        inner_->disconnect(peer);
    }

    void shutdown() override { inner_->shutdown(); }
    void vanish() override { inner_->vanish(); }

    void setAppReceiving(bool on) override
    {
        inner_->setAppReceiving(on);
    }

    sim::Tick sendCost(std::uint64_t bytes) const override
    {
        return inner_->sendCost(bytes);
    }

    /** Snapshot state: the armed-corruption latches (the inner comm
     *  endpoint is saved by its own hook). */
    struct Saved
    {
        std::optional<Corruption> armedSend;
        std::optional<Corruption> armedRecv;
        int armedN;
    };

    Saved save() const { return Saved{armedSend_, armedRecv_, armedN_}; }

    void
    restore(const Saved &s)
    {
        armedSend_ = s.armedSend;
        armedRecv_ = s.armedRecv;
        armedN_ = s.armedN;
    }

  private:
    std::unique_ptr<ClusterComm> inner_;
    CommCallbacks userCbs_;
    std::optional<Corruption> armedSend_;
    std::optional<Corruption> armedRecv_;
    int armedN_ = 16;
};

} // namespace performa::proto

#endif // PERFORMA_PROTO_INTERPOSE_HH
