#include "proto/tcp.hh"

#include <utility>

#include "sim/logging.hh"

namespace performa::proto {

// Connection identifiers come from Simulation::allocId(): unique
// within one simulated world, race-free across concurrent worlds.

TcpComm::TcpComm(osim::Node &node, TcpConfig cfg,
                 const std::unordered_map<sim::NodeId, net::PortId>
                     &peer_ports)
    : node_(node), cfg_(cfg), peerPorts_(peer_ports)
{
    for (const auto &[peer, port] : peerPorts_)
        portPeers_[port] = peer;

    node_.intraNet().setHandler(node_.intraPort(),
        [this](net::Frame &&f) { handleFrame(std::move(f)); });

    // A node crash wipes the kernel stack; peers only find out later
    // through retransmission timeouts or post-reboot RSTs.
    node_.onCrash([this] { vanish(); });
}

net::PortId
TcpComm::portOf(sim::NodeId peer) const
{
    auto it = peerPorts_.find(peer);
    if (it == peerPorts_.end())
        PANIC("tcp: unknown peer node ", peer);
    return it->second;
}

sim::NodeId
TcpComm::peerOfPort(net::PortId port) const
{
    auto it = portPeers_.find(port);
    return it == portPeers_.end() ? sim::invalidNode : it->second;
}

TcpComm::Conn *
TcpComm::findByPeer(sim::NodeId peer)
{
    auto it = active_.find(peer);
    if (it == active_.end())
        return nullptr;
    auto cit = conns_.find(it->second);
    return cit == conns_.end() ? nullptr : &cit->second;
}

const TcpComm::Conn *
TcpComm::findByPeer(sim::NodeId peer) const
{
    return const_cast<TcpComm *>(this)->findByPeer(peer);
}

sim::Tick
TcpComm::sendCost(std::uint64_t bytes) const
{
    return cfg_.costs.sendFixed +
           static_cast<sim::Tick>(cfg_.costs.sendPerKb *
                                  static_cast<double>(bytes) / 1024.0);
}

void
TcpComm::start()
{
    listening_ = true;
    appReceiving_ = true;
}

void
TcpComm::reset()
{
    auto &sim = node_.simulation();
    for (auto &[id, c] : conns_) {
        sim.events().cancel(c.rtoTimer);
        sim.events().cancel(c.memRetryTimer);
        sim.events().cancel(c.synTimer);
        if (c.skbufHeld && !c.sndQueue.empty())
            node_.kernelMem().free(c.sndQueue.front().wireBytes);
    }
    conns_.clear();
    active_.clear();
}

void
TcpComm::disconnect(sim::NodeId peer)
{
    auto it = active_.find(peer);
    if (it == active_.end())
        return;
    std::uint64_t id = it->second;
    auto cit = conns_.find(id);
    if (cit == conns_.end()) {
        active_.erase(it);
        return;
    }
    // App-initiated close: reset the wire side, no break callback.
    Conn c = std::move(cit->second);
    conns_.erase(cit);
    active_.erase(it);
    auto &sim = node_.simulation();
    sim.events().cancel(c.rtoTimer);
    sim.events().cancel(c.memRetryTimer);
    sim.events().cancel(c.synTimer);
    if (c.skbufHeld && !c.sndQueue.empty())
        node_.kernelMem().free(c.sndQueue.front().wireBytes);
    sendRawRst(peer, id);
    if (c.senderBlocked && cbs_.onSendReady)
        cbs_.onSendReady();
}

void
TcpComm::shutdown()
{
    // Process exit: the OS closes the sockets, so peers get resets.
    for (auto &[id, c] : conns_) {
        if (c.established)
            sendRawRst(c.peer, c.id);
    }
    reset();
    listening_ = false;
}

void
TcpComm::vanish()
{
    reset();
    listening_ = false;
}

void
TcpComm::setAppReceiving(bool on)
{
    appReceiving_ = on;
    if (on) {
        for (auto &[id, c] : conns_)
            scheduleDeliveries(c);
    }
}

void
TcpComm::connect(sim::NodeId peer)
{
    std::uint64_t id = node_.simulation().allocId();
    Conn &c = conns_[id];
    c.id = id;
    c.peer = peer;
    c.rto = cfg_.rtoInitial;
    c.rcvQueue.reserve(cfg_.rcvQueueMsgs);
    active_[peer] = id;

    net::Frame syn;
    syn.srcPort = node_.intraPort();
    syn.dstPort = portOf(peer);
    syn.proto = net::Proto::Tcp;
    syn.kind = Syn;
    syn.conn = id;
    syn.bytes = cfg_.headerBytes;
    node_.intraNet().send(std::move(syn));

    c.synTries = 1;
    c.synTimer = node_.simulation().scheduleIn(cfg_.connectTimeout,
        [this, id] { handleSynRetry(id); });
}

/** SYN retransmission / give-up logic for a pending connect. */
void
TcpComm::handleSynRetry(std::uint64_t id)
{
    auto it = conns_.find(id);
    if (it == conns_.end() || it->second.established)
        return;
    Conn &cc = it->second;
    if (cc.synTries >= cfg_.connectRetries) {
        sim::NodeId p = cc.peer;
        if (active_.count(p) && active_[p] == id)
            active_.erase(p);
        conns_.erase(it);
        if (cbs_.onConnectFailed)
            cbs_.onConnectFailed(p);
        return;
    }
    ++cc.synTries;
    net::Frame f;
    f.srcPort = node_.intraPort();
    f.dstPort = portOf(cc.peer);
    f.proto = net::Proto::Tcp;
    f.kind = Syn;
    f.conn = id;
    f.bytes = cfg_.headerBytes;
    node_.intraNet().send(std::move(f));
    cc.synTimer = node_.simulation().scheduleIn(
        cfg_.connectTimeout, [this, id] { handleSynRetry(id); });
}

bool
TcpComm::connected(sim::NodeId peer) const
{
    const Conn *c = findByPeer(peer);
    return c && c->established;
}

SendStatus
TcpComm::send(sim::NodeId peer, AppMessage msg, const SendParams &params)
{
    if (params.nullPointer) {
        // Synchronous detection: copy_from_user faults immediately.
        return SendStatus::Efault;
    }

    Conn *c = findByPeer(peer);
    if (!c || !c->established)
        return SendStatus::NotConnected;

    std::uint64_t wire = msg.bytes + cfg_.headerBytes;
    if (c->sndBytes + msg.bytes > cfg_.sndBufBytes) {
        c->senderBlocked = true;
        return SendStatus::WouldBlock;
    }

    OutMsg out;
    out.wireBytes = wire;
    out.seq = c->seqNext++;
    // A bad offset or size does not fail the send call; it silently
    // corrupts the byte stream from this message onward.
    out.desync = params.ptrOffset != 0 || params.sizeDelta != 0;
    c->sndBytes += msg.bytes;
    // Pool the payload once; retransmissions reuse the same block.
    out.msg = node_.simulation().makePayload<AppMessage>(std::move(msg));
    c->sndQueue.push_back(std::move(out));
    pump(*c);
    return SendStatus::Ok;
}

void
TcpComm::sendDatagram(sim::NodeId peer, std::uint32_t kind,
                      sim::RcAny payload)
{
    // Heartbeats need kernel buffers too: under the memory-exhaustion
    // fault they silently stop flowing.
    if (!node_.kernelMem().alloc(cfg_.datagramBytes))
        return;
    node_.kernelMem().free(cfg_.datagramBytes);

    net::Frame f;
    f.srcPort = node_.intraPort();
    f.dstPort = portOf(peer);
    f.proto = net::Proto::Datagram;
    f.kind = kind;
    f.bytes = cfg_.datagramBytes;
    f.payload = std::move(payload);
    node_.intraNet().send(std::move(f));
}

void
TcpComm::consumed(sim::NodeId peer)
{
    // Receive-side skbufs are probed (alloc+free) at acceptance, so
    // nothing to release here; kept for interface symmetry with VIA
    // credit returns.
    (void)peer;
}

void
TcpComm::pump(Conn &c)
{
    if (!c.established || c.inFlight || c.sndQueue.empty())
        return;

    OutMsg &m = c.sndQueue.front();
    if (!c.skbufHeld) {
        if (!node_.kernelMem().alloc(m.wireBytes)) {
            // Out of kernel memory: the segment stays queued in the
            // OS; retry the allocation shortly.
            std::uint64_t id = c.id;
            c.memRetryTimer = node_.simulation().scheduleIn(
                sim::msec(10), [this, id] {
                    auto it = conns_.find(id);
                    if (it != conns_.end())
                        pump(it->second);
                });
            return;
        }
        c.skbufHeld = true;
    }

    net::Frame f;
    f.srcPort = node_.intraPort();
    f.dstPort = portOf(c.peer);
    f.proto = net::Proto::Tcp;
    f.kind = Data;
    f.conn = c.id;
    f.seq = m.seq;
    f.bytes = m.wireBytes;
    f.corrupted = m.desync;
    f.payload = m.msg; // refcount bump, no copy
    node_.intraNet().send(std::move(f));

    c.inFlight = true;
    armRto(c);
}

void
TcpComm::armRto(Conn &c)
{
    std::uint64_t id = c.id;
    c.rtoTimer = node_.simulation().scheduleIn(c.rto,
        [this, id] { onRtoFired(id); });
}

void
TcpComm::onRtoFired(std::uint64_t conn_id)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    Conn &c = it->second;
    if (!c.inFlight)
        return;

    sim::Tick now = node_.simulation().now();
    if (c.firstFailAt == 0)
        c.firstFailAt = now;
    if (now - c.firstFailAt >= cfg_.abortTimeout) {
        abortConn(conn_id, BreakReason::Timeout, /*send_rst=*/true);
        return;
    }

    // Exponential backoff, then retransmit the in-flight message.
    c.rto = std::min<sim::Tick>(c.rto * 2, cfg_.rtoMax);
    if (node_.up() && !c.sndQueue.empty()) {
        OutMsg &m = c.sndQueue.front();
        net::Frame f;
        f.srcPort = node_.intraPort();
        f.dstPort = portOf(c.peer);
        f.proto = net::Proto::Tcp;
        f.kind = Data;
        f.conn = c.id;
        f.seq = m.seq;
        f.bytes = m.wireBytes;
        f.corrupted = m.desync;
        f.payload = m.msg; // same pooled block as the first transmit
        node_.intraNet().send(std::move(f));
    }
    armRto(c);
}

void
TcpComm::abortConn(std::uint64_t conn_id, BreakReason reason,
                   bool send_rst)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    Conn c = std::move(it->second);
    conns_.erase(it);
    if (active_.count(c.peer) && active_[c.peer] == conn_id)
        active_.erase(c.peer);

    auto &sim = node_.simulation();
    sim.events().cancel(c.rtoTimer);
    sim.events().cancel(c.memRetryTimer);
    sim.events().cancel(c.synTimer);
    if (c.skbufHeld && !c.sndQueue.empty())
        node_.kernelMem().free(c.sndQueue.front().wireBytes);

    if (send_rst)
        sendRawRst(c.peer, conn_id);

    sim::Trace::log(sim.now(), "tcp", "node ", node_.id(),
                    " connection to ", c.peer, " broken");

    bool was_established = c.established;
    bool was_blocked = c.senderBlocked;
    if (was_established && cbs_.onPeerBroken)
        cbs_.onPeerBroken(c.peer, reason);
    if (was_blocked && cbs_.onSendReady)
        cbs_.onSendReady();
}

void
TcpComm::sendRawRst(sim::NodeId peer, std::uint64_t conn_id)
{
    net::Frame f;
    f.srcPort = node_.intraPort();
    f.dstPort = portOf(peer);
    f.proto = net::Proto::Tcp;
    f.kind = Rst;
    f.conn = conn_id;
    f.bytes = cfg_.headerBytes;
    node_.intraNet().send(std::move(f));
}

void
TcpComm::handleFrame(net::Frame &&f)
{
    // A frozen node's kernel executes nothing: segments are neither
    // processed nor acknowledged, so peers keep retransmitting.
    if (!node_.up())
        return;

    if (f.proto == net::Proto::Datagram) {
        if (!listening_ || !appReceiving_)
            return;
        sim::NodeId peer = peerOfPort(f.srcPort);
        std::uint32_t kind = f.kind;
        node_.cpu().exec(sim::usec(5),
            [this, peer, kind, payload = std::move(f.payload)] {
                if (listening_ && appReceiving_ && cbs_.onDatagram)
                    cbs_.onDatagram(peer, kind, payload);
            });
        return;
    }

    switch (f.kind) {
      case Syn:
        handleSyn(f);
        break;
      case SynAck:
        handleSynAck(f);
        break;
      case Rst:
        handleRst(f);
        break;
      case Data:
        handleData(std::move(f));
        break;
      case Ack:
        handleAck(f);
        break;
      default:
        PANIC("tcp: unknown frame kind ", f.kind);
    }
}

void
TcpComm::handleSyn(const net::Frame &f)
{
    sim::NodeId peer = peerOfPort(f.srcPort);
    if (!listening_) {
        sendRawRst(peer, f.conn);
        return;
    }
    // Replace any stale connection to this peer.
    if (auto it = active_.find(peer); it != active_.end()) {
        auto cit = conns_.find(it->second);
        if (cit != conns_.end() && !cit->second.established &&
            peer > node_.id()) {
            // Simultaneous-connect tie-break: the lower node id's SYN
            // wins; the higher id ignores the incoming one and lets
            // its own pending connect complete.
            return;
        }
        bool was_blocked = false;
        if (cit != conns_.end()) {
            was_blocked = cit->second.senderBlocked;
            auto &sim = node_.simulation();
            sim.events().cancel(cit->second.rtoTimer);
            sim.events().cancel(cit->second.memRetryTimer);
            sim.events().cancel(cit->second.synTimer);
            if (cit->second.skbufHeld && !cit->second.sndQueue.empty())
                node_.kernelMem().free(
                    cit->second.sndQueue.front().wireBytes);
            conns_.erase(cit);
        }
        active_.erase(it);
        // A sender blocked on the replaced connection must retry on
        // the new one.
        if (was_blocked && cbs_.onSendReady)
            cbs_.onSendReady();
    }

    Conn &c = conns_[f.conn];
    c.id = f.conn;
    c.peer = peer;
    c.established = true;
    c.rto = cfg_.rtoInitial;
    c.rcvQueue.reserve(cfg_.rcvQueueMsgs);
    active_[peer] = f.conn;

    net::Frame ack;
    ack.srcPort = node_.intraPort();
    ack.dstPort = f.srcPort;
    ack.proto = net::Proto::Tcp;
    ack.kind = SynAck;
    ack.conn = f.conn;
    ack.bytes = cfg_.headerBytes;
    node_.intraNet().send(std::move(ack));

    if (cbs_.onPeerConnected)
        cbs_.onPeerConnected(peer);
}

void
TcpComm::handleSynAck(const net::Frame &f)
{
    auto it = conns_.find(f.conn);
    if (it == conns_.end() || it->second.established)
        return;
    Conn &c = it->second;
    c.established = true;
    node_.simulation().events().cancel(c.synTimer);
    if (cbs_.onPeerConnected)
        cbs_.onPeerConnected(c.peer);
    pump(c);
}

void
TcpComm::handleRst(const net::Frame &f)
{
    auto it = conns_.find(f.conn);
    if (it == conns_.end())
        return;
    Conn &c = it->second;
    if (!c.established) {
        // Connect refused.
        sim::NodeId peer = c.peer;
        node_.simulation().events().cancel(c.synTimer);
        if (active_.count(peer) && active_[peer] == f.conn)
            active_.erase(peer);
        conns_.erase(it);
        if (cbs_.onConnectFailed)
            cbs_.onConnectFailed(peer);
        return;
    }
    abortConn(f.conn, BreakReason::ConnReset, /*send_rst=*/false);
}

void
TcpComm::handleData(net::Frame &&f)
{
    auto it = conns_.find(f.conn);
    if (it == conns_.end()) {
        // Segment for a connection this incarnation does not know.
        sendRawRst(peerOfPort(f.srcPort), f.conn);
        return;
    }
    Conn &c = it->second;

    if (f.seq < c.seqExpected) {
        // Duplicate (our ack was lost); re-ack so the sender advances.
        net::Frame ack;
        ack.srcPort = node_.intraPort();
        ack.dstPort = f.srcPort;
        ack.proto = net::Proto::Tcp;
        ack.kind = Ack;
        ack.conn = f.conn;
        ack.seq = f.seq;
        ack.bytes = cfg_.headerBytes;
        node_.intraNet().send(std::move(ack));
        return;
    }
    if (f.seq > c.seqExpected)
        return; // out of order (cannot happen with one in flight)

    // Acceptance needs receive-queue space and an skbuf.
    if (c.rcvQueue.size() >= cfg_.rcvQueueMsgs)
        return; // silently dropped; sender retransmits
    if (!node_.kernelMem().alloc(f.bytes))
        return; // memory exhaustion: inbound segments are dropped
    node_.kernelMem().free(f.bytes);

    ++c.seqExpected;

    InMsg in;
    in.peer = c.peer;
    in.desync = f.corrupted;
    if (f.payload)
        in.msg = *f.payload.get<AppMessage>();
    c.rcvQueue.push_back(std::move(in));

    net::Frame ack;
    ack.srcPort = node_.intraPort();
    ack.dstPort = f.srcPort;
    ack.proto = net::Proto::Tcp;
    ack.kind = Ack;
    ack.conn = f.conn;
    ack.seq = f.seq;
    ack.bytes = cfg_.headerBytes;
    node_.intraNet().send(std::move(ack));

    scheduleDeliveries(c);
}

void
TcpComm::handleAck(const net::Frame &f)
{
    auto it = conns_.find(f.conn);
    if (it == conns_.end())
        return;
    Conn &c = it->second;
    if (!c.inFlight || c.sndQueue.empty() ||
        c.sndQueue.front().seq != f.seq)
        return;

    node_.simulation().events().cancel(c.rtoTimer);
    if (c.skbufHeld)
        node_.kernelMem().free(c.sndQueue.front().wireBytes);
    c.skbufHeld = false;
    c.sndBytes -= c.sndQueue.front().msg->bytes;
    c.sndQueue.pop_front();
    c.inFlight = false;
    c.firstFailAt = 0;
    c.rto = cfg_.rtoInitial;

    maybeUnblockSender(c);
    pump(c);
}

TcpComm::Conn
TcpComm::cloneConn(const Conn &c)
{
    Conn out;
    out.id = c.id;
    out.peer = c.peer;
    out.established = c.established;
    out.sndQueue = c.sndQueue.clone();
    out.sndBytes = c.sndBytes;
    out.seqNext = c.seqNext;
    out.inFlight = c.inFlight;
    out.skbufHeld = c.skbufHeld;
    out.rto = c.rto;
    out.firstFailAt = c.firstFailAt;
    out.rtoTimer = c.rtoTimer;
    out.memRetryTimer = c.memRetryTimer;
    out.senderBlocked = c.senderBlocked;
    out.synTries = c.synTries;
    out.synTimer = c.synTimer;
    out.seqExpected = c.seqExpected;
    out.rcvQueue = c.rcvQueue.clone();
    out.scheduledDeliveries = c.scheduledDeliveries;
    return out;
}

TcpComm::Saved
TcpComm::save() const
{
    Saved s;
    s.listening = listening_;
    s.appReceiving = appReceiving_;
    for (const auto &[id, c] : conns_)
        s.conns.emplace(id, cloneConn(c));
    s.active = active_;
    return s;
}

void
TcpComm::restore(const Saved &s)
{
    listening_ = s.listening;
    appReceiving_ = s.appReceiving;
    conns_.clear();
    for (const auto &[id, c] : s.conns)
        conns_.emplace(id, cloneConn(c));
    active_ = s.active;
}

void
TcpComm::maybeUnblockSender(Conn &c)
{
    if (c.senderBlocked && c.sndBytes <= (cfg_.sndBufBytes * 3) / 4) {
        c.senderBlocked = false;
        if (cbs_.onSendReady)
            cbs_.onSendReady();
    }
}

void
TcpComm::scheduleDeliveries(Conn &c)
{
    if (!appReceiving_)
        return;
    std::uint64_t id = c.id;
    while (c.scheduledDeliveries < c.rcvQueue.size()) {
        const InMsg &in = c.rcvQueue[c.scheduledDeliveries];
        ++c.scheduledDeliveries;
        sim::Tick cost = cfg_.costs.recvFixed +
            static_cast<sim::Tick>(cfg_.costs.recvPerKb *
                static_cast<double>(in.msg.bytes) / 1024.0);
        node_.cpu().exec(cost, [this, id] {
            auto it = conns_.find(id);
            if (it == conns_.end() || it->second.rcvQueue.empty() ||
                it->second.scheduledDeliveries == 0)
                return;
            --it->second.scheduledDeliveries;
            if (!appReceiving_) {
                // SIGSTOP raced the delivery: leave the message queued
                // for the next setAppReceiving(true).
                return;
            }
            InMsg msg = std::move(it->second.rcvQueue.front());
            it->second.rcvQueue.pop_front();
            if (msg.desync) {
                // The framing layer on top of the byte stream reads
                // garbage lengths: unrecoverable.
                if (cbs_.onFatalError)
                    cbs_.onFatalError("TCP byte stream desynchronized "
                                      "by bad send parameters");
                return;
            }
            if (cbs_.onMessage)
                cbs_.onMessage(msg.peer, std::move(msg.msg));
        });
    }
}

} // namespace performa::proto
