/**
 * @file
 * Message-level model of a kernel TCP stack, faithful to the
 * behaviours the paper's evaluation depends on:
 *
 *  - a byte-stream with framing on top: an off-by-N size or pointer
 *    fault desynchronizes the stream and surfaces as a fatal framing
 *    error at the receiver;
 *  - timeout-and-retry with exponential backoff: packet loss is
 *    assumed transient, so faults are detected only after very long
 *    abort timeouts (10-15 minutes);
 *  - RST semantics: a segment arriving at a host that does not know
 *    the connection (process died, node rebooted into a new
 *    incarnation) is answered with a reset, which is how peers
 *    eventually detect crashes;
 *  - kernel-memory coupling: every queued segment needs an skbuf; when
 *    the allocator fails (resource-exhaustion fault) outbound traffic
 *    stalls inside the OS and inbound segments are dropped;
 *  - synchronous EFAULT on a NULL user pointer.
 *
 * Granularity: one frame per application message (not per MSS
 * segment); retransmission, acking and windowing operate on message
 * frames. This preserves every timing behaviour the study measures
 * while keeping event counts tractable.
 */

#ifndef PERFORMA_PROTO_TCP_HH
#define PERFORMA_PROTO_TCP_HH

#include <cstdint>
#include <map>
#include <unordered_map>

#include "net/frame.hh"
#include "os/node.hh"
#include "proto/comm.hh"
#include "sim/ring_buffer.hh"
#include "sim/simulation.hh"

namespace performa::proto {

/** CPU cost parameters for one side of a message operation. */
struct CommCosts
{
    sim::Tick sendFixed = 0;   ///< per-send fixed CPU
    double sendPerKb = 0.0;    ///< per-KB send CPU (copies, checksum)
    sim::Tick recvFixed = 0;   ///< per-receive fixed CPU
    double recvPerKb = 0.0;    ///< per-KB receive CPU
    sim::Tick deliveryDelay = 0; ///< extra delivery latency (polling)
};

/** Tunables for the TCP model. */
struct TcpConfig
{
    std::uint64_t sndBufBytes = 128 * 1024; ///< per-connection send queue
    std::size_t rcvQueueMsgs = 16;          ///< per-connection recv queue
    sim::Tick rtoInitial = sim::msec(200);
    sim::Tick rtoMax = sim::sec(64);
    /**
     * Give up retransmitting and abort the connection after this long
     * without progress ("these timeouts tend to be very long, on the
     * order of 10-15 minutes").
     */
    sim::Tick abortTimeout = sim::minutes(15);
    sim::Tick connectTimeout = sim::sec(3);
    int connectRetries = 4;
    std::uint64_t headerBytes = 60;  ///< wire overhead per message
    std::uint64_t datagramBytes = 64;
    /** Default CPU costs: calibrated kernel-TCP values (see
     *  press::tcpConfigFor, which PRESS deployments use). */
    CommCosts costs{sim::usec(63), 12.0, sim::usec(74), 12.0, 0};
};

/**
 * The kernel TCP endpoint of one server process. Attached to a Node;
 * demultiplexes Proto::Tcp and Proto::Datagram frames from the
 * intra-cluster network.
 */
class TcpComm : public ClusterComm
{
  public:
    TcpComm(osim::Node &node, TcpConfig cfg,
            const std::unordered_map<sim::NodeId, net::PortId> &peer_ports);

    void setCallbacks(CommCallbacks cbs) override { cbs_ = std::move(cbs); }
    void start() override;
    void connect(sim::NodeId peer) override;
    bool connected(sim::NodeId peer) const override;
    SendStatus send(sim::NodeId peer, AppMessage msg,
                    const SendParams &params) override;
    void sendDatagram(sim::NodeId peer, std::uint32_t kind,
                      sim::RcAny payload = {}) override;
    void consumed(sim::NodeId peer) override;
    void disconnect(sim::NodeId peer) override;
    void shutdown() override;
    void vanish() override;
    void setAppReceiving(bool on) override;

    /** CPU the caller burns issuing a send of @p bytes. */
    sim::Tick sendCost(std::uint64_t bytes) const override;

    const TcpConfig &config() const { return cfg_; }

    /** Snapshot state: listen/receive flags and every connection
     *  (queues deep-copied, payload handles refcount-bumped). */
    struct Saved;

    Saved save() const;
    void restore(const Saved &s);

  private:
    enum FrameKind : std::uint32_t
    {
        Syn,
        SynAck,
        Rst,
        Data,
        Ack,
    };

    /**
     * What a queued outbound message looks like. The pooled payload is
     * created once at send() time; every (re)transmission attaches the
     * same handle to the wire frame (refcount bump), so the block is
     * recycled only when the final ack or abort drops the last
     * reference.
     */
    struct OutMsg
    {
        sim::Rc<AppMessage> msg;
        std::uint64_t wireBytes;
        std::uint64_t seq;
        /** Stream-desync fault riding on this message, if any. */
        bool desync = false;
    };

    struct InMsg
    {
        AppMessage msg;
        sim::NodeId peer;
        bool desync = false;
    };

    /** One direction-agnostic connection endpoint. */
    struct Conn
    {
        std::uint64_t id = 0;
        sim::NodeId peer = sim::invalidNode;
        bool established = false;

        // sender side
        sim::RingBuffer<OutMsg> sndQueue;
        std::uint64_t sndBytes = 0;
        std::uint64_t seqNext = 0;
        bool inFlight = false;
        bool skbufHeld = false; ///< in-flight frame holds kernel memory
        sim::Tick rto = 0;
        sim::Tick firstFailAt = 0; ///< 0 = progressing
        sim::EventHandle rtoTimer;
        sim::EventHandle memRetryTimer;
        bool senderBlocked = false;

        // connect side
        int synTries = 0;
        sim::EventHandle synTimer;

        // receiver side
        std::uint64_t seqExpected = 0;
        sim::RingBuffer<InMsg> rcvQueue;
        /** Deliveries queued on the CPU but not yet executed. */
        std::size_t scheduledDeliveries = 0;
    };

    void reset();
    void handleSynRetry(std::uint64_t conn_id);
    void handleFrame(net::Frame &&f);
    void handleSyn(const net::Frame &f);
    void handleSynAck(const net::Frame &f);
    void handleRst(const net::Frame &f);
    void handleData(net::Frame &&f);
    void handleAck(const net::Frame &f);

    /** Transmit (or re-transmit) the head of @p c's send queue. */
    void pump(Conn &c);
    void armRto(Conn &c);
    void onRtoFired(std::uint64_t conn_id);
    void abortConn(std::uint64_t conn_id, BreakReason reason,
                   bool send_rst);
    void sendRawRst(sim::NodeId peer, std::uint64_t conn_id);
    void scheduleDeliveries(Conn &c);
    void maybeUnblockSender(Conn &c);

    Conn *findByPeer(sim::NodeId peer);
    const Conn *findByPeer(sim::NodeId peer) const;

    net::PortId portOf(sim::NodeId peer) const;
    sim::NodeId peerOfPort(net::PortId port) const;

    osim::Node &node_;
    TcpConfig cfg_;
    CommCallbacks cbs_;
    std::unordered_map<sim::NodeId, net::PortId> peerPorts_;
    std::unordered_map<net::PortId, sim::NodeId> portPeers_;

    /** Deep-copy @p c (ring buffers cloned; timer handles are plain
     *  {slot, gen} triples that stay valid across a queue restore). */
    static Conn cloneConn(const Conn &c);

    bool listening_ = false;
    bool appReceiving_ = true;
    // Ordered maps, deliberately: shutdown()/setAppReceiving()/reset()
    // iterate the connection table with wire- and CPU-visible side
    // effects, so iteration order must be identical between a warmed
    // endpoint and its snapshot-restored fork.
    std::map<std::uint64_t, Conn> conns_;
    std::map<sim::NodeId, std::uint64_t> active_;
};

struct TcpComm::Saved
{
    bool listening;
    bool appReceiving;
    std::map<std::uint64_t, Conn> conns; ///< deep copies
    std::map<sim::NodeId, std::uint64_t> active;
};

} // namespace performa::proto

#endif // PERFORMA_PROTO_TCP_HH
