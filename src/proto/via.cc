#include "proto/via.hh"

#include <utility>

#include "sim/logging.hh"

namespace performa::proto {

// VI identifiers come from Simulation::allocId(): unique within one
// simulated world, race-free across concurrent worlds.

ViaComm::ViaComm(osim::Node &node, ViaConfig cfg,
                 const std::unordered_map<sim::NodeId, net::PortId>
                     &peer_ports)
    : node_(node), cfg_(cfg), peerPorts_(peer_ports)
{
    for (const auto &[peer, port] : peerPorts_)
        portPeers_[port] = peer;

    node_.intraNet().setHandler(node_.intraPort(),
        [this](net::Frame &&f) { handleFrame(std::move(f)); });

    node_.onCrash([this] { vanish(); });
}

net::PortId
ViaComm::portOf(sim::NodeId peer) const
{
    auto it = peerPorts_.find(peer);
    if (it == peerPorts_.end())
        PANIC("via: unknown peer node ", peer);
    return it->second;
}

sim::NodeId
ViaComm::peerOfPort(net::PortId port) const
{
    auto it = portPeers_.find(port);
    return it == portPeers_.end() ? sim::invalidNode : it->second;
}

ViaComm::Vi *
ViaComm::findByPeer(sim::NodeId peer)
{
    auto it = active_.find(peer);
    if (it == active_.end())
        return nullptr;
    auto vit = vis_.find(it->second);
    return vit == vis_.end() ? nullptr : &vit->second;
}

const ViaComm::Vi *
ViaComm::findByPeer(sim::NodeId peer) const
{
    return const_cast<ViaComm *>(this)->findByPeer(peer);
}

sim::Tick
ViaComm::sendCost(std::uint64_t bytes) const
{
    return cfg_.costs.sendFixed +
           static_cast<sim::Tick>(cfg_.costs.sendPerKb *
                                  static_cast<double>(bytes) / 1024.0);
}

void
ViaComm::start()
{
    // Pre-allocate: register every message buffer and descriptor up
    // front. This is the property that makes VIA immune to dynamic
    // kernel-memory exhaustion.
    if (!node_.pins().pin(cfg_.regBufferBytes)) {
        if (cbs_.onFatalError)
            cbs_.onFatalError("VIA: cannot register communication "
                              "buffers at start-up");
        return;
    }
    pinnedByUs_ += cfg_.regBufferBytes;
    listening_ = true;
    appReceiving_ = true;
}

void
ViaComm::reset()
{
    auto &sim = node_.simulation();
    for (auto &[id, vi] : vis_)
        sim.events().cancel(vi.connTimer);
    vis_.clear();
    active_.clear();
    if (pinnedByUs_ > 0) {
        node_.pins().unpin(pinnedByUs_);
        pinnedByUs_ = 0;
    }
}

void
ViaComm::disconnect(sim::NodeId peer)
{
    auto it = active_.find(peer);
    if (it == active_.end())
        return;
    std::uint64_t id = it->second;
    auto vit = vis_.find(id);
    active_.erase(it);
    if (vit == vis_.end())
        return;
    bool was_blocked = vit->second.senderBlocked;
    node_.simulation().events().cancel(vit->second.connTimer);
    vis_.erase(vit);
    sendControl(peer, BreakNotify, id);
    if (was_blocked && cbs_.onSendReady)
        cbs_.onSendReady();
}

void
ViaComm::shutdown()
{
    // Graceful process exit: tearing down VIs breaks the connections,
    // which peers interpret as node failure (PRESS semantics).
    for (auto &[id, vi] : vis_) {
        if (vi.established)
            sendControl(vi.peer, BreakNotify, vi.id);
    }
    reset();
    listening_ = false;
}

void
ViaComm::vanish()
{
    vis_.clear();
    active_.clear();
    // The node is gone; the pin accounting was reset with the node.
    pinnedByUs_ = 0;
    listening_ = false;
}

void
ViaComm::setAppReceiving(bool on)
{
    appReceiving_ = on;
    if (on) {
        for (auto &[id, vi] : vis_)
            scheduleDeliveries(vi);
    }
}

bool
ViaComm::registerMemory(std::uint64_t bytes)
{
    if (!node_.pins().pin(bytes))
        return false;
    pinnedByUs_ += bytes;
    return true;
}

void
ViaComm::deregisterMemory(std::uint64_t bytes)
{
    node_.pins().unpin(bytes);
    pinnedByUs_ = bytes > pinnedByUs_ ? 0 : pinnedByUs_ - bytes;
}

void
ViaComm::sendControl(sim::NodeId peer, FrameKind kind, std::uint64_t vi_id)
{
    net::Frame f;
    f.srcPort = node_.intraPort();
    f.dstPort = portOf(peer);
    f.proto = net::Proto::Via;
    f.kind = kind;
    f.conn = vi_id;
    f.bytes = cfg_.headerBytes;
    node_.intraNet().send(std::move(f));
}

void
ViaComm::connect(sim::NodeId peer)
{
    std::uint64_t id = node_.simulation().allocId();
    Vi &vi = vis_[id];
    vi.id = id;
    vi.peer = peer;
    vi.sndQueue.reserve(cfg_.credits);
    vi.rcvQueue.reserve(cfg_.credits);
    active_[peer] = id;
    vi.connTries = 1;
    sendControl(peer, ConnReq, id);
    vi.connTimer = node_.simulation().scheduleIn(cfg_.connectTimeout,
        [this, id] { handleConnRetry(id); });
}

void
ViaComm::handleConnRetry(std::uint64_t vi_id)
{
    auto it = vis_.find(vi_id);
    if (it == vis_.end() || it->second.established)
        return;
    Vi &vi = it->second;
    if (vi.connTries >= cfg_.connectRetries) {
        sim::NodeId p = vi.peer;
        if (active_.count(p) && active_[p] == vi_id)
            active_.erase(p);
        vis_.erase(it);
        if (cbs_.onConnectFailed)
            cbs_.onConnectFailed(p);
        return;
    }
    ++vi.connTries;
    sendControl(vi.peer, ConnReq, vi_id);
    vi.connTimer = node_.simulation().scheduleIn(cfg_.connectTimeout,
        [this, vi_id] { handleConnRetry(vi_id); });
}

bool
ViaComm::connected(sim::NodeId peer) const
{
    const Vi *vi = findByPeer(peer);
    return vi && vi->established;
}

SendStatus
ViaComm::send(sim::NodeId peer, AppMessage msg, const SendParams &params)
{
    if (params.faulty()) {
        // VIPL diagnoses the bad descriptor as a fatal completion
        // error. For remote-write modes the error is additionally
        // reported at the other end of the transfer ("the fault is
        // reported at both ends of the communication").
        if (remoteWrite() && connected(peer))
            sendControl(peer, ErrorNotify, active_[peer]);
        return SendStatus::Fatal;
    }

    Vi *vi = findByPeer(peer);
    if (!vi || !vi->established)
        return SendStatus::NotConnected;

    if (vi->remoteCredits == 0) {
        vi->senderBlocked = true;
        return SendStatus::WouldBlock;
    }

    --vi->remoteCredits;
    OutMsg out;
    out.wireBytes = msg.bytes + cfg_.headerBytes;
    out.msg = node_.simulation().makePayload<AppMessage>(std::move(msg));
    vi->sndQueue.push_back(std::move(out));
    pump(*vi);
    return SendStatus::Ok;
}

void
ViaComm::sendDatagram(sim::NodeId peer, std::uint32_t kind,
                      sim::RcAny payload)
{
    net::Frame f;
    f.srcPort = node_.intraPort();
    f.dstPort = portOf(peer);
    f.proto = net::Proto::Datagram;
    f.kind = kind;
    f.bytes = cfg_.datagramBytes;
    f.payload = std::move(payload);
    node_.intraNet().send(std::move(f));
}

void
ViaComm::consumed(sim::NodeId peer)
{
    // PRESS's explicit flow-control message: return one credit.
    Vi *vi = findByPeer(peer);
    if (!vi || !vi->established)
        return;
    sendControl(peer, Credit, vi->id);
}

void
ViaComm::pump(Vi &vi)
{
    if (!vi.established || vi.inFlight || vi.sndQueue.empty())
        return;

    OutMsg &m = vi.sndQueue.front();
    net::Frame f;
    f.srcPort = node_.intraPort();
    f.dstPort = portOf(vi.peer);
    f.proto = net::Proto::Via;
    f.kind = Data;
    f.conn = vi.id;
    f.bytes = m.wireBytes;
    f.payload = m.msg; // refcount bump, no copy
    vi.inFlight = true;

    std::uint64_t id = vi.id;
    node_.intraNet().send(std::move(f), [this, id](bool delivered) {
        auto it = vis_.find(id);
        if (it == vis_.end())
            return;
        if (!delivered) {
            // SAN loss: reliable-connection semantics are fail-stop.
            breakVi(id, BreakReason::TransportError, /*notify=*/true);
            return;
        }
        it->second.inFlight = false;
        if (!it->second.sndQueue.empty())
            it->second.sndQueue.pop_front();
        pump(it->second);
    });
}

void
ViaComm::breakVi(std::uint64_t vi_id, BreakReason reason, bool notify)
{
    auto it = vis_.find(vi_id);
    if (it == vis_.end())
        return;
    Vi vi = std::move(it->second);
    vis_.erase(it);
    if (active_.count(vi.peer) && active_[vi.peer] == vi_id)
        active_.erase(vi.peer);
    node_.simulation().events().cancel(vi.connTimer);

    if (notify)
        sendControl(vi.peer, BreakNotify, vi_id); // best effort

    sim::Trace::log(node_.simulation().now(), "via", "node ", node_.id(),
                    " VI to ", vi.peer, " broken");

    if (vi.established && cbs_.onPeerBroken)
        cbs_.onPeerBroken(vi.peer, reason);
    if (vi.senderBlocked && cbs_.onSendReady)
        cbs_.onSendReady();
}

void
ViaComm::handleFrame(net::Frame &&f)
{
    // The cLAN NIC acknowledges in hardware, so frames are accepted
    // even while the host OS is frozen; they queue in NIC/host memory
    // until the CPU runs again.
    if (f.proto == net::Proto::Datagram) {
        if (!listening_ || !appReceiving_ || !node_.up())
            return;
        sim::NodeId peer = peerOfPort(f.srcPort);
        std::uint32_t kind = f.kind;
        node_.cpu().exec(sim::usec(5),
            [this, peer, kind, payload = std::move(f.payload)] {
                if (listening_ && appReceiving_ && cbs_.onDatagram)
                    cbs_.onDatagram(peer, kind, payload);
            });
        return;
    }

    switch (f.kind) {
      case ConnReq:
        handleConnReq(f);
        break;
      case ConnAck: {
        auto it = vis_.find(f.conn);
        if (it == vis_.end() || it->second.established)
            return;
        Vi &vi = it->second;
        vi.established = true;
        vi.remoteCredits = cfg_.credits;
        node_.simulation().events().cancel(vi.connTimer);
        if (cbs_.onPeerConnected)
            cbs_.onPeerConnected(vi.peer);
        pump(vi);
        break;
      }
      case ConnRefused: {
        auto it = vis_.find(f.conn);
        if (it == vis_.end() || it->second.established)
            return;
        sim::NodeId peer = it->second.peer;
        node_.simulation().events().cancel(it->second.connTimer);
        if (active_.count(peer) && active_[peer] == f.conn)
            active_.erase(peer);
        vis_.erase(it);
        if (cbs_.onConnectFailed)
            cbs_.onConnectFailed(peer);
        break;
      }
      case Data:
        handleData(std::move(f));
        break;
      case Credit: {
        auto it = vis_.find(f.conn);
        if (it == vis_.end() || !it->second.established)
            return;
        Vi &vi = it->second;
        ++vi.remoteCredits;
        if (vi.senderBlocked) {
            vi.senderBlocked = false;
            if (cbs_.onSendReady)
                cbs_.onSendReady();
        }
        break;
      }
      case BreakNotify:
        breakVi(f.conn, BreakReason::TransportError, /*notify=*/false);
        break;
      case ErrorNotify:
        // RDMA completion error surfaced by our NIC: fatal for the
        // process (PRESS fail-fast).
        if (listening_ && cbs_.onFatalError) {
            node_.cpu().exec(sim::usec(5), [this] {
                if (listening_ && cbs_.onFatalError)
                    cbs_.onFatalError("VIA: remote DMA completion error");
            });
        }
        break;
      default:
        PANIC("via: unknown frame kind ", f.kind);
    }
}

void
ViaComm::handleConnReq(const net::Frame &f)
{
    sim::NodeId peer = peerOfPort(f.srcPort);
    if (!listening_) {
        sendControl(peer, ConnRefused, f.conn);
        return;
    }
    if (auto it = active_.find(peer); it != active_.end()) {
        if (it->second == f.conn) {
            // Duplicate ConnReq (our ack was lost): re-ack.
            sendControl(peer, ConnAck, f.conn);
            return;
        }
        auto vit = vis_.find(it->second);
        if (vit != vis_.end() && !vit->second.established &&
            peer > node_.id()) {
            // Simultaneous connect race: both ends issued ConnReqs.
            // Deterministic tie-break: the lower node id's request
            // wins, so the higher id ignores the incoming one and
            // lets its own pending request complete.
            return;
        }
        // Stale (or losing) VI to this peer: drop it quietly. If a
        // sender was blocked on it, wake it up so its queued sends
        // retry on the replacement VI.
        bool was_blocked = false;
        if (vit != vis_.end()) {
            was_blocked = vit->second.senderBlocked;
            node_.simulation().events().cancel(vit->second.connTimer);
            vis_.erase(vit);
        }
        active_.erase(it);
        if (was_blocked && cbs_.onSendReady)
            cbs_.onSendReady();
    }

    Vi &vi = vis_[f.conn];
    vi.id = f.conn;
    vi.peer = peer;
    vi.established = true;
    vi.remoteCredits = cfg_.credits;
    vi.sndQueue.reserve(cfg_.credits);
    vi.rcvQueue.reserve(cfg_.credits);
    active_[peer] = f.conn;

    sendControl(peer, ConnAck, f.conn);
    if (cbs_.onPeerConnected)
        cbs_.onPeerConnected(peer);
}

void
ViaComm::handleData(net::Frame &&f)
{
    auto it = vis_.find(f.conn);
    if (it == vis_.end()) {
        // Data for a VI this incarnation does not know: tell the
        // sender the connection is dead.
        sendControl(peerOfPort(f.srcPort), BreakNotify, f.conn);
        return;
    }
    Vi &vi = it->second;

    InMsg in;
    in.peer = vi.peer;
    if (f.payload)
        in.msg = *f.payload.get<AppMessage>();
    vi.rcvQueue.push_back(std::move(in));
    scheduleDeliveries(vi);
}

ViaComm::Vi
ViaComm::cloneVi(const Vi &vi)
{
    Vi out;
    out.id = vi.id;
    out.peer = vi.peer;
    out.established = vi.established;
    out.remoteCredits = vi.remoteCredits;
    out.sndQueue = vi.sndQueue.clone();
    out.inFlight = vi.inFlight;
    out.senderBlocked = vi.senderBlocked;
    out.rcvQueue = vi.rcvQueue.clone();
    out.scheduledDeliveries = vi.scheduledDeliveries;
    out.connTries = vi.connTries;
    out.connTimer = vi.connTimer;
    return out;
}

ViaComm::Saved
ViaComm::save() const
{
    Saved s;
    s.listening = listening_;
    s.appReceiving = appReceiving_;
    s.pinnedByUs = pinnedByUs_;
    for (const auto &[id, vi] : vis_)
        s.vis.emplace(id, cloneVi(vi));
    s.active = active_;
    return s;
}

void
ViaComm::restore(const Saved &s)
{
    listening_ = s.listening;
    appReceiving_ = s.appReceiving;
    pinnedByUs_ = s.pinnedByUs;
    vis_.clear();
    for (const auto &[id, vi] : s.vis)
        vis_.emplace(id, cloneVi(vi));
    active_ = s.active;
}

void
ViaComm::scheduleDeliveries(Vi &vi)
{
    if (!appReceiving_)
        return;
    std::uint64_t id = vi.id;
    while (vi.scheduledDeliveries < vi.rcvQueue.size()) {
        const InMsg &in = vi.rcvQueue[vi.scheduledDeliveries];
        ++vi.scheduledDeliveries;
        sim::Tick cost = cfg_.costs.recvFixed +
            static_cast<sim::Tick>(cfg_.costs.recvPerKb *
                static_cast<double>(in.msg.bytes) / 1024.0);

        auto deliver = [this, id] {
            auto vit = vis_.find(id);
            if (vit == vis_.end() || vit->second.rcvQueue.empty() ||
                vit->second.scheduledDeliveries == 0)
                return;
            --vit->second.scheduledDeliveries;
            if (!appReceiving_)
                return; // SIGSTOP raced; retried on SIGCONT
            InMsg msg = std::move(vit->second.rcvQueue.front());
            vit->second.rcvQueue.pop_front();
            if (cbs_.onMessage)
                cbs_.onMessage(msg.peer, std::move(msg.msg));
        };

        if (polled()) {
            // The message sits in the remote-write buffer until the
            // server's main loop polls it.
            node_.simulation().scheduleIn(cfg_.pollDelay,
                [this, cost, deliver] {
                    node_.cpu().exec(cost, deliver);
                });
        } else {
            // Interrupt-driven reception.
            node_.cpu().exec(cost, deliver);
        }
    }
}

} // namespace performa::proto
