/**
 * @file
 * The intra-cluster communication interface PRESS programs against.
 *
 * Two implementations exist, mirroring the paper: a kernel-level TCP
 * byte-stream stack (TcpComm) and a user-level VIA stack (ViaComm)
 * with three messaging modes (send/receive, remote write, remote
 * write + zero copy). The interface is deliberately narrow so that
 * the server's behaviour differences under faults come from the
 * substrates, not from different server code.
 */

#ifndef PERFORMA_PROTO_COMM_HH
#define PERFORMA_PROTO_COMM_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/pool.hh"
#include "sim/types.hh"

namespace performa::proto {

/**
 * An application-level message. The comm layers only care about the
 * size (which drives copies and wire time); @c body carries the
 * PRESS-level content.
 */
struct AppMessage
{
    std::uint32_t type = 0;        ///< PRESS message type
    std::uint64_t bytes = 0;       ///< logical payload size
    sim::RcAny body;               ///< PRESS payload (pooled, type-erased)
    bool corrupted = false;        ///< payload is garbage (fault)
};

/**
 * Parameters of one send call as they reach the communication
 * library. The fault-injection interposition layer flips these to
 * model the paper's bad-parameter application faults.
 */
struct SendParams
{
    bool nullPointer = false;  ///< data pointer is NULL
    std::int32_t ptrOffset = 0; ///< off-by-N data pointer (bytes)
    std::int64_t sizeDelta = 0; ///< off-by-N size (bytes)

    bool faulty() const
    {
        return nullPointer || ptrOffset != 0 || sizeDelta != 0;
    }
};

/** Synchronous result of a send call. */
enum class SendStatus
{
    Ok,         ///< accepted (delivery is asynchronous)
    WouldBlock, ///< no buffer space / credits; wait for onSendReady
    NotConnected, ///< no established channel to that peer
    Efault,     ///< synchronous bad-pointer detection (TCP)
    Fatal,      ///< unrecoverable library error (VIA descriptor fault)
};

/** Why a channel to a peer broke. */
enum class BreakReason
{
    ConnReset,      ///< peer closed / RST (process died or rebooted)
    Timeout,        ///< retransmission gave up (TCP abort)
    TransportError, ///< SAN-level loss => fail-stop break (VIA)
};

/** Callbacks a ClusterComm user installs. */
struct CommCallbacks
{
    /** A message from @p peer was handed to the application. */
    std::function<void(sim::NodeId, AppMessage &&)> onMessage;

    /** A channel to @p peer is now established (either initiative). */
    std::function<void(sim::NodeId)> onPeerConnected;

    /** An outgoing connect() to @p peer failed. */
    std::function<void(sim::NodeId)> onConnectFailed;

    /** The channel to @p peer broke. */
    std::function<void(sim::NodeId, BreakReason)> onPeerBroken;

    /** Space/credits freed after a SendStatus::WouldBlock. */
    std::function<void()> onSendReady;

    /**
     * The library hit a fatal error (bad descriptor, framing desync).
     * PRESS reacts fail-fast: it terminates the process.
     */
    std::function<void(const std::string &)> onFatalError;

    /** An unreliable datagram (heartbeat, join message) arrived. */
    std::function<void(sim::NodeId, std::uint32_t,
                       sim::RcAny)> onDatagram;
};

/**
 * Abstract intra-cluster communication endpoint for one server
 * process. Lifetime follows the process: start() on process start,
 * shutdown() on graceful exit, vanish() when the node crashes.
 */
class ClusterComm
{
  public:
    virtual ~ClusterComm() = default;

    /** Install application callbacks (before start()). */
    virtual void setCallbacks(CommCallbacks cbs) = 0;

    /** Process started: allocate endpoints and start listening. */
    virtual void start() = 0;

    /** Asynchronously connect to @p peer (result via callbacks). */
    virtual void connect(sim::NodeId peer) = 0;

    /** @return true if a channel to @p peer is established. */
    virtual bool connected(sim::NodeId peer) const = 0;

    /**
     * Send @p msg to @p peer. @p params carries the (possibly
     * corrupted) call parameters.
     */
    virtual SendStatus send(sim::NodeId peer, AppMessage msg,
                            const SendParams &params = {}) = 0;

    /**
     * Fire-and-forget datagram (heartbeats, join protocol). Consumes
     * kernel memory on TCP-style stacks; silently dropped on loss.
     */
    virtual void sendDatagram(sim::NodeId peer, std::uint32_t kind,
                              sim::RcAny payload = {}) = 0;

    /**
     * The application consumed one received message; used by the
     * flow-control machinery (TCP window / VIA credits).
     */
    virtual void consumed(sim::NodeId peer) = 0;

    /**
     * Close the channel to one peer (reconfiguration excluded it).
     * The peer sees a reset/break; no local callback fires.
     */
    virtual void disconnect(sim::NodeId peer) = 0;

    /** Graceful process exit: close channels (peers see RST/break). */
    virtual void shutdown() = 0;

    /** Node crash: wipe local state without any wire traffic. */
    virtual void vanish() = 0;

    /** SIGSTOP / SIGCONT: gate delivery of messages to the app. */
    virtual void setAppReceiving(bool on) = 0;

    /**
     * CPU microseconds the calling thread burns to issue a send of
     * @p bytes (syscall + copies for TCP; descriptor post for VIA).
     */
    virtual sim::Tick sendCost(std::uint64_t bytes) const = 0;
};

} // namespace performa::proto

#endif // PERFORMA_PROTO_COMM_HH
