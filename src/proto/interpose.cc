#include "proto/interpose.hh"

#include <utility>

namespace performa::proto {

void
FaultInterposer::setCallbacks(CommCallbacks cbs)
{
    userCbs_ = std::move(cbs);

    CommCallbacks wrapped = userCbs_;
    wrapped.onMessage = [this](sim::NodeId peer, AppMessage &&msg) {
        if (armedRecv_) {
            // The receive call ran with a corrupted buffer descriptor:
            // the library reports a fatal error instead of data (EFAULT
            // for sockets, an error-status completion for VIPL).
            armedRecv_.reset();
            if (userCbs_.onFatalError)
                userCbs_.onFatalError(
                    "receive call failed: corrupted buffer parameters");
            return;
        }
        if (userCbs_.onMessage)
            userCbs_.onMessage(peer, std::move(msg));
    };
    inner_->setCallbacks(std::move(wrapped));
}

SendStatus
FaultInterposer::send(sim::NodeId peer, AppMessage msg,
                      const SendParams &params)
{
    SendParams p = params;
    if (armedSend_) {
        switch (*armedSend_) {
          case Corruption::NullPointer:
            p.nullPointer = true;
            break;
          case Corruption::OffByNPtr:
            p.ptrOffset = armedN_;
            break;
          case Corruption::OffByNSize:
            p.sizeDelta = armedN_;
            break;
        }
        armedSend_.reset();
    }
    return inner_->send(peer, std::move(msg), p);
}

} // namespace performa::proto
