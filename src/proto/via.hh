/**
 * @file
 * Model of a user-level VIA (Virtual Interface Architecture) provider
 * over a cLAN-style SAN, with the properties the paper's evaluation
 * depends on:
 *
 *  - reliable-connection fail-stop semantics: any packet loss breaks
 *    the connection immediately (SAN fabrics treat loss as
 *    catastrophic, not congestion), so fault detection is near
 *    instantaneous;
 *  - pre-allocated resources: descriptors and message buffers are
 *    registered (pinned) at start-up, making the stack immune to
 *    kernel-memory exhaustion, unlike TCP;
 *  - credit-based flow control driven by explicit flow-control
 *    messages (as PRESS implements over VIA);
 *  - three messaging modes matching VIA-PRESS-0/3/5: interrupt-driven
 *    send/receive, remote memory writes with receiver polling, and
 *    remote writes with zero-copy data transfers;
 *  - descriptor-status error reporting: a bad parameter surfaces as a
 *    fatal completion error at the sender, and for remote-write modes
 *    at BOTH endpoints of the transfer;
 *  - hardware (NIC-level) acknowledgement: a frozen host's NIC still
 *    acks, so connections survive OS hangs, but credits stop being
 *    returned and senders stall.
 */

#ifndef PERFORMA_PROTO_VIA_HH
#define PERFORMA_PROTO_VIA_HH

#include <cstdint>
#include <map>
#include <unordered_map>

#include "net/frame.hh"
#include "os/node.hh"
#include "proto/comm.hh"
#include "proto/tcp.hh" // for CommCosts
#include "sim/ring_buffer.hh"
#include "sim/simulation.hh"

namespace performa::proto {

/** Messaging mode, mapping to the VIA-PRESS versions. */
enum class ViaMode
{
    SendRecv,            ///< VIA-PRESS-0: regular messages, interrupts
    RemoteWrite,         ///< VIA-PRESS-3: RDMA writes, polling
    RemoteWriteZeroCopy, ///< VIA-PRESS-5: RDMA + zero-copy data
};

/** Tunables for the VIA model. */
struct ViaConfig
{
    ViaMode mode = ViaMode::SendRecv;
    std::uint32_t credits = 32;    ///< pre-posted descriptors / slots
    /** Mean extra delivery latency for polled (RDMA) modes. */
    sim::Tick pollDelay = sim::usec(50);
    /** Message buffers registered (pinned) at service start. */
    std::uint64_t regBufferBytes = 4ull << 20;
    std::uint64_t headerBytes = 40;
    std::uint64_t datagramBytes = 64;
    sim::Tick connectTimeout = sim::sec(1);
    int connectRetries = 3;
    /** Default CPU costs: calibrated VIA send/receive values (see
     *  press::viaConfigFor, which PRESS deployments use). */
    CommCosts costs{sim::usec(21), 9.0, sim::usec(42), 9.0, 0};
};

/**
 * The VIA provider + VIPL library endpoint for one server process.
 */
class ViaComm : public ClusterComm
{
  public:
    ViaComm(osim::Node &node, ViaConfig cfg,
            const std::unordered_map<sim::NodeId, net::PortId>
                &peer_ports);

    void setCallbacks(CommCallbacks cbs) override { cbs_ = std::move(cbs); }
    void start() override;
    void connect(sim::NodeId peer) override;
    bool connected(sim::NodeId peer) const override;
    SendStatus send(sim::NodeId peer, AppMessage msg,
                    const SendParams &params) override;
    void sendDatagram(sim::NodeId peer, std::uint32_t kind,
                      sim::RcAny payload = {}) override;
    void consumed(sim::NodeId peer) override;
    void disconnect(sim::NodeId peer) override;
    void shutdown() override;
    void vanish() override;
    void setAppReceiving(bool on) override;

    /** CPU the caller burns posting a send of @p bytes. */
    sim::Tick sendCost(std::uint64_t bytes) const override;

    /**
     * Register (pin) application memory, e.g. VIA-PRESS-5's cached
     * file pages. @return false when the pinnable-page budget is
     * exhausted.
     */
    bool registerMemory(std::uint64_t bytes);

    /** Deregister (unpin) previously registered memory. */
    void deregisterMemory(std::uint64_t bytes);

    /** @return true if start-up registration succeeded. */
    bool started() const { return listening_; }

    const ViaConfig &config() const { return cfg_; }

    /** Snapshot state: flags, pinned-byte accounting and every VI
     *  (queues deep-copied, payload handles refcount-bumped). */
    struct Saved;

    Saved save() const;
    void restore(const Saved &s);

  private:
    enum FrameKind : std::uint32_t
    {
        ConnReq,
        ConnAck,
        ConnRefused,
        Data,
        Credit,
        BreakNotify, ///< graceful close / error: peer should break too
        ErrorNotify, ///< RDMA completion error raised at the remote end
    };

    /** Pooled once at send(); the wire frame shares the handle. */
    struct OutMsg
    {
        sim::Rc<AppMessage> msg;
        std::uint64_t wireBytes;
    };

    struct InMsg
    {
        AppMessage msg;
        sim::NodeId peer;
    };

    struct Vi
    {
        std::uint64_t id = 0;
        sim::NodeId peer = sim::invalidNode;
        bool established = false;

        std::uint32_t remoteCredits = 0;
        sim::RingBuffer<OutMsg> sndQueue;
        bool inFlight = false;
        bool senderBlocked = false;

        sim::RingBuffer<InMsg> rcvQueue;
        std::size_t scheduledDeliveries = 0;

        int connTries = 0;
        sim::EventHandle connTimer;
    };

    void reset();
    void handleFrame(net::Frame &&f);
    void handleConnReq(const net::Frame &f);
    void handleData(net::Frame &&f);
    void pump(Vi &vi);
    void breakVi(std::uint64_t vi_id, BreakReason reason, bool notify);
    void scheduleDeliveries(Vi &vi);
    void sendControl(sim::NodeId peer, FrameKind kind, std::uint64_t vi_id);
    void handleConnRetry(std::uint64_t vi_id);

    Vi *findByPeer(sim::NodeId peer);
    const Vi *findByPeer(sim::NodeId peer) const;
    net::PortId portOf(sim::NodeId peer) const;
    sim::NodeId peerOfPort(net::PortId port) const;

    bool polled() const { return cfg_.mode != ViaMode::SendRecv; }
    bool remoteWrite() const { return cfg_.mode != ViaMode::SendRecv; }

    osim::Node &node_;
    ViaConfig cfg_;
    CommCallbacks cbs_;
    std::unordered_map<sim::NodeId, net::PortId> peerPorts_;
    std::unordered_map<net::PortId, sim::NodeId> portPeers_;

    /** Deep-copy @p vi (ring buffers cloned). */
    static Vi cloneVi(const Vi &vi);

    bool listening_ = false;
    bool appReceiving_ = true;
    std::uint64_t pinnedByUs_ = 0; ///< total we registered (for reset)
    std::map<std::uint64_t, Vi> vis_;
    std::map<sim::NodeId, std::uint64_t> active_;
};

struct ViaComm::Saved
{
    bool listening;
    bool appReceiving;
    std::uint64_t pinnedByUs;
    std::map<std::uint64_t, Vi> vis; ///< deep copies
    std::map<sim::NodeId, std::uint64_t> active;
};

} // namespace performa::proto

#endif // PERFORMA_PROTO_VIA_HH
