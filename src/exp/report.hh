/**
 * @file
 * Text reporting for benches and examples: per-second throughput
 * series (the paper's Figures 2-5), stage tables, and paper-vs-
 * measured comparison rows.
 */

#ifndef PERFORMA_EXP_REPORT_HH
#define PERFORMA_EXP_REPORT_HH

#include <cstdio>
#include <string>

#include "core/seven_stage.hh"
#include "exp/experiment.hh"

namespace performa::exp {

/**
 * Print the served-throughput series between @p from and @p to with
 * @p step-second resolution, one "t  tput" row per line plus a coarse
 * ASCII bar, and inline marker annotations.
 */
void printSeries(const ExperimentResult &res, sim::Tick from,
                 sim::Tick to, sim::Tick step = sim::sec(5),
                 std::FILE *out = stdout);

/** Print the markers of a run. */
void printMarkers(const ExperimentResult &res, std::FILE *out = stdout);

/** Print an extracted 7-stage behaviour. */
void printBehavior(const model::MeasuredBehavior &mb,
                   std::FILE *out = stdout);

/**
 * Dump the run's per-second served/failed/offered series to a CSV
 * file (columns: t_sec, served, failed, offered) for external
 * plotting. @return false if the file could not be written.
 */
bool writeSeriesCsv(const ExperimentResult &res,
                    const std::string &path);

} // namespace performa::exp

#endif // PERFORMA_EXP_REPORT_HH
