/**
 * @file
 * Time markers collected during a phase-1 experiment. They mechanize
 * the instrumentation the paper's evaluators read off their server
 * logs and throughput graphs: when the fault went in, when the
 * service detected it (first exclusion or fail-fast), when the
 * component recovered, when nodes rejoined, and whether the operator
 * had to step in.
 */

#ifndef PERFORMA_EXP_MARKERS_HH
#define PERFORMA_EXP_MARKERS_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace performa::exp {

/** What a marker records. */
enum class MarkerKind
{
    Inject,        ///< fault applied
    Recover,       ///< faulty component repaired / restored
    Exclude,       ///< a server excluded a node from its member set
    MemberUp,      ///< a server added a node to its member set
    FailFast,      ///< a server terminated on a fatal comm error
    GiveUp,        ///< a restarted server gave up rejoining
    Started,       ///< a server process (re)started
    OperatorReset, ///< operator restarted the cluster
};

const char *markerName(MarkerKind k);

struct Marker
{
    sim::Tick t = 0;
    MarkerKind kind = MarkerKind::Inject;
    sim::NodeId node = sim::invalidNode;  ///< observing node
    sim::NodeId other = sim::invalidNode; ///< subject node, if any
    std::string detail;
};

/** Append-only marker log with simple queries. */
class MarkerLog
{
  public:
    void
    add(sim::Tick t, MarkerKind kind,
        sim::NodeId node = sim::invalidNode,
        sim::NodeId other = sim::invalidNode, std::string detail = {})
    {
        markers_.push_back(Marker{t, kind, node, other,
                                  std::move(detail)});
    }

    const std::vector<Marker> &all() const { return markers_; }

    /** First marker of @p kind at or after @p from. */
    std::optional<Marker>
    firstAfter(MarkerKind kind, sim::Tick from) const
    {
        for (const auto &m : markers_) {
            if (m.kind == kind && m.t >= from)
                return m;
        }
        return std::nullopt;
    }

    /** Last marker of @p kind, if any. */
    std::optional<Marker>
    last(MarkerKind kind) const
    {
        for (auto it = markers_.rbegin(); it != markers_.rend(); ++it) {
            if (it->kind == kind)
                return *it;
        }
        return std::nullopt;
    }

    /** Count of markers of @p kind in [from, to). */
    std::size_t
    count(MarkerKind kind, sim::Tick from = 0,
          sim::Tick to = sim::maxTick) const
    {
        std::size_t n = 0;
        for (const auto &m : markers_) {
            if (m.kind == kind && m.t >= from && m.t < to)
                ++n;
        }
        return n;
    }

  private:
    std::vector<Marker> markers_;
};

} // namespace performa::exp

#endif // PERFORMA_EXP_MARKERS_HH
