/**
 * @file
 * Model validation by long-run simulation. The phase-2 model assumes
 * uncorrelated, exponentially arriving faults with one fault in
 * effect at a time (Section 2.2). Here we check it empirically: draw
 * fault arrivals from compressed MTTFs, run a long simulation with an
 * operator watchdog, measure availability directly, and compare with
 * the model's prediction built from single-fault behaviours measured
 * at the same fault durations. Agreement should be good while the
 * total degraded weight (sum of W_c) is small and degrade gracefully
 * as faults start to overlap.
 */

#ifndef PERFORMA_EXP_LONG_RUN_HH
#define PERFORMA_EXP_LONG_RUN_HH

#include <vector>

#include "exp/experiment.hh"
#include "faults/fault.hh"
#include "press/config.hh"

namespace performa::exp {

/** One fault class in the validation load. */
struct ValidationFault
{
    fault::FaultKind kind = fault::FaultKind::AppCrash;
    /** Per-node mean time to failure (compressed for simulation). */
    double mttfPerNodeSec = 600.0;
    /** Fault duration (the class's compressed MTTR). */
    sim::Tick duration = sim::sec(30);
};

/** Configuration of one validation run. */
struct LongRunConfig
{
    press::Version version = press::Version::TcpPressHb;
    std::vector<ValidationFault> faults;
    sim::Tick duration = sim::minutes(30);
    /** Operator watchdog: reset the cluster after this long
     *  continuously splintered. */
    sim::Tick operatorResponse = sim::sec(60);
    std::uint64_t seed = 99;
    bool robustMembership = false;
};

/** A sensible default load for validation sweeps. */
std::vector<ValidationFault> defaultValidationLoad(double scale = 1.0);

/** What a validation run produces. */
struct LongRunResult
{
    double normalTput = 0.0;
    double measuredAvailability = 0.0;  ///< long-run AT / Tn
    double predictedAvailability = 0.0; ///< phase-2 model
    double sumDegradedWeight = 0.0;     ///< model's sum of W_c
    std::uint64_t faultsInjected = 0;
    std::uint64_t operatorResets = 0;

    double
    absoluteError() const
    {
        double d = measuredAvailability - predictedAvailability;
        return d < 0 ? -d : d;
    }
};

/**
 * Measure single-fault behaviours for the load, build the model,
 * then run the fault storm and compare.
 */
LongRunResult validateModel(const LongRunConfig &cfg);

} // namespace performa::exp

#endif // PERFORMA_EXP_LONG_RUN_HH
