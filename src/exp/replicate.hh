/**
 * @file
 * Multi-seed replication of phase-1 experiments: repeat the same
 * fault injection under different random seeds and aggregate the
 * extracted behaviours (mean levels, dispersion, outcome votes).
 * Scientific hygiene for anything quoted from a single run.
 */

#ifndef PERFORMA_EXP_REPLICATE_HH
#define PERFORMA_EXP_REPLICATE_HH

#include <array>
#include <vector>

#include "exp/stages.hh"

namespace performa::exp {

/** Aggregated behaviour over several seeds. */
struct BehaviorEnsemble
{
    /** Field-wise mean behaviour; detected/healed by majority vote. */
    model::MeasuredBehavior mean;
    /** Per-stage throughput standard deviation (req/s). */
    std::array<double, model::numStages> tputStddev{};
    double tnStddev = 0.0;
    int runs = 0;
    int detectedVotes = 0;
    int healedVotes = 0;

    /** Every seed agreed on the qualitative outcome. */
    bool
    unanimous() const
    {
        return (detectedVotes == 0 || detectedVotes == runs) &&
               (healedVotes == 0 || healedVotes == runs);
    }
};

/**
 * Run @p cfg once per seed and aggregate. @p cfg.seed is overridden
 * by each entry of @p seeds.
 */
BehaviorEnsemble replicateBehavior(ExperimentConfig cfg,
                                   const std::vector<std::uint64_t>
                                       &seeds,
                                   const ExtractionParams &params = {});

} // namespace performa::exp

#endif // PERFORMA_EXP_REPLICATE_HH
