#include "exp/stages.hh"

#include <algorithm>
#include <cmath>
#include <utility>

namespace performa::exp {

using model::MeasuredBehavior;
using model::StageA;
using model::StageB;
using model::StageC;
using model::StageD;
using model::StageE;
using model::StageF;
using model::StageG;

namespace {

/**
 * Mean served rate over [from, to), or @p fallback when the window is
 * too short (< 1 s) to carry a meaningful sample.
 */
double
rateOr(const ExperimentResult &res, sim::Tick from, sim::Tick to,
       double fallback)
{
    if (to < from + sim::sec(1))
        return fallback;
    return res.served.meanRate(from, to);
}

/** quantile() with empty-histogram NaN mapped to 0 (for reports). */
double
quantileOr0(const sim::LatencyHistogram &h, double q)
{
    double v = h.quantile(q);
    return std::isnan(v) ? 0.0 : v;
}

} // namespace

model::MeasuredBehavior
extractBehavior(const ExperimentResult &res, const fault::FaultSpec &spec,
                const ExtractionParams &p)
{
    MeasuredBehavior mb;
    mb.normalTput = res.normalThroughput;

    const sim::Tick inject = res.injectAt;
    const sim::Tick end = res.runLength;

    // Wall-clock window each stage's throughput level is read from;
    // the latency summary slices the histogram timeline at the same
    // boundaries. {0, 0} = no direct window (level was remapped).
    std::array<std::pair<sim::Tick, sim::Tick>, model::numStages>
        win{};

    // Detection: the first exclusion or fail-fast after injection.
    auto excl = res.markers.firstAfter(MarkerKind::Exclude, inject);
    auto ff = res.markers.firstAfter(MarkerKind::FailFast, inject);
    sim::Tick t_detect = sim::maxTick;
    if (excl)
        t_detect = std::min(t_detect, excl->t);
    if (ff)
        t_detect = std::min(t_detect, ff->t);
    mb.detected = t_detect != sim::maxTick;

    // Component repair: end of the transient window for faults with a
    // duration; the process restart for application faults.
    sim::Tick t_repair;
    if (fault::hasDuration(spec.kind)) {
        t_repair = inject + spec.duration;
    } else {
        auto started = res.markers.last(MarkerKind::Started);
        t_repair = (started && started->t > inject) ? started->t
                                                    : inject;
    }
    t_repair = std::min(t_repair, end);

    if (mb.detected) {
        sim::Tick tA1 = std::min(t_detect, end);
        mb.dur[StageA] = sim::toSeconds(tA1 - inject);
        // Sub-second detection windows carry no meaningful rate
        // sample; the stage contributes ~nothing anyway.
        mb.tput[StageA] = rateOr(res, inject, tA1, mb.normalTput);
        win[StageA] = {inject, tA1};

        sim::Tick tB1 = std::min(tA1 + p.reconfigTransient, end);
        mb.dur[StageB] = sim::toSeconds(tB1 - tA1);
        mb.tput[StageB] = rateOr(res, tA1, tB1, mb.tput[StageA]);
        win[StageB] = {tA1, tB1};

        // Stable degraded regime C: between the reconfiguration
        // transient and the component repair.
        mb.tput[StageC] =
            rateOr(res, tB1, t_repair, mb.tput[StageB]);
        mb.dur[StageC] = sim::toSeconds(
            t_repair > tB1 ? t_repair - tB1 : 0);
        win[StageC] = {tB1, t_repair};
    } else {
        // Undetected: one degraded regime from injection to repair.
        mb.dur[StageA] = sim::toSeconds(t_repair - inject);
        mb.tput[StageA] = rateOr(res, inject, t_repair, mb.normalTput);
        mb.tput[StageB] = mb.tput[StageA];
        mb.tput[StageC] = mb.tput[StageA];
        win[StageA] = {inject, t_repair};
        win[StageB] = win[StageA];
        win[StageC] = win[StageA];
    }

    // Recovery transient D right after repair, ending at the
    // stabilization point: the first moment the 5-second mean reaches
    // 93% of the final stable level. This absorbs effects like TCP's
    // retransmission backoff delaying the resume well past the
    // component repair.
    sim::Tick tE1 = end > sim::sec(2) ? end - sim::sec(2) : end;
    sim::Tick tail0 = tE1 > sim::sec(20) ? tE1 - sim::sec(20) : 0;
    double final_level = res.served.meanRate(tail0, tE1);

    sim::Tick stab = tE1;
    for (sim::Tick t = t_repair; t + sim::sec(5) <= tE1;
         t += sim::sec(1)) {
        if (res.served.meanRate(t, t + sim::sec(5)) >=
            p.healedThreshold * final_level) {
            stab = t;
            break;
        }
    }
    sim::Tick tD1 = std::max(stab, std::min(t_repair +
                                            p.recoveryTransient, tE1));
    mb.dur[StageD] = sim::toSeconds(tD1 > t_repair ? tD1 - t_repair : 0);
    mb.tput[StageD] = rateOr(res, t_repair, tD1, mb.normalTput);
    win[StageD] = {t_repair, tD1};

    // Stable post-recovery regime E.
    sim::Tick tE0 = tD1;
    mb.tput[StageE] = rateOr(res, tE0, tE1, mb.tput[StageD]);
    win[StageE] = {tE0, tE1};

    mb.healed = !res.endSplintered &&
                mb.tput[StageE] >= p.healedThreshold * mb.normalTput;
    if (mb.healed)
        mb.tput[StageE] = mb.normalTput;

    mb.tput[StageF] = 0.0;
    mb.tput[StageG] = mb.tput[StageB];

    if (p.slo && p.slo->valid()) {
        const sim::StageLatencyTimeline &tl = res.latency;
        const std::uint64_t th = p.slo->thresholdUs;
        constexpr auto total = sim::LatencyStage::Total;

        model::LatencySummary &ls = mb.latency;
        ls.present = true;
        ls.sloQuantile = p.slo->quantile;
        ls.sloThresholdUs = static_cast<double>(th);

        // Normal operation: the same pre-fault window the normal
        // throughput is read from.
        sim::Tick n0 = inject > sim::sec(20) ? inject - sim::sec(20)
                                             : sim::Tick(0);
        sim::LatencyHistogram normal = tl.window(total, n0, inject);
        ls.fracWithinNormal = normal.fractionAtOrBelow(th);
        ls.p50Us = quantileOr0(normal, 0.50);
        ls.p90Us = quantileOr0(normal, 0.90);
        ls.p99Us = quantileOr0(normal, 0.99);
        ls.p999Us = quantileOr0(normal, 0.999);

        for (int s = 0; s < model::numStages; ++s) {
            auto [from, to] = win[s];
            if (to <= from)
                continue; // no window: keep the all-within default
            sim::LatencyHistogram h = tl.window(total, from, to);
            ls.fracWithin[s] = h.fractionAtOrBelow(th);
            ls.stageP99Us[s] = quantileOr0(h, 0.99);
        }
        // Stage G's level was taken from B; mirror its latency view.
        ls.fracWithin[StageG] = ls.fracWithin[StageB];
        ls.stageP99Us[StageG] = ls.stageP99Us[StageB];
    }
    return mb;
}

} // namespace performa::exp
