/**
 * @file
 * The phase-1 behaviour database: measured 7-stage behaviours for
 * every (PRESS version, fault kind) pair. Benches measure once and
 * cache to a CSV file so the modeling figures (6-10) and the
 * crossover analysis can be regenerated quickly.
 */

#ifndef PERFORMA_EXP_BEHAVIOR_DB_HH
#define PERFORMA_EXP_BEHAVIOR_DB_HH

#include <map>
#include <string>
#include <utility>

#include "core/scenarios.hh"
#include "core/seven_stage.hh"
#include "exp/experiment.hh"
#include "faults/fault.hh"
#include "press/config.hh"

namespace performa::exp {

/**
 * The experiment configuration used to measure one pair: injection at
 * 60 s, the fault lasting its Table 3 MTTR, and a tail long enough to
 * observe recovery (or the lack of it).
 */
ExperimentConfig experimentFor(press::Version v, fault::FaultKind k);

/** Measured behaviours for all (version, fault) pairs. */
class BehaviorDb
{
  public:
    using Key = std::pair<press::Version, fault::FaultKind>;

    /** Measure one pair by running the phase-1 experiment. */
    static model::MeasuredBehavior measure(press::Version v,
                                           fault::FaultKind k);

    /**
     * Ensure every (version, fault) pair is present: load cached rows
     * from @p cache_path when it exists, measure the rest in parallel
     * on the campaign worker pool (PERFORMA_JOBS workers; see
     * campaign/phase1.hh for the determinism contract), and rewrite
     * the cache atomically. @p progress (optional) is invoked per
     * pair — cached pairs first in grid order, then measured pairs in
     * completion order. Implemented in campaign/phase1.cc; link
     * performa_campaign (or the `performa` umbrella).
     */
    void ensureAll(const std::string &cache_path,
                   std::function<void(press::Version,
                                      fault::FaultKind, bool)>
                       progress = {});

    bool has(press::Version v, fault::FaultKind k) const;
    const model::MeasuredBehavior &get(press::Version v,
                                       fault::FaultKind k) const;
    void set(press::Version v, fault::FaultKind k,
             const model::MeasuredBehavior &mb);

    /**
     * Expected cache fingerprint: a short description of everything a
     * cached row's bytes depend on (seed-scheme version, grid axes,
     * SLO). When set, save() stamps it into the CSV as a leading
     * `# fingerprint:` comment and load() REJECTS any file whose
     * fingerprint differs — including legacy files with none — so a
     * stale cache is re-measured instead of silently merged. An empty
     * expectation (the default) accepts anything.
     */
    void setFingerprint(std::string fp) { fingerprint_ = std::move(fp); }
    const std::string &fingerprint() const { return fingerprint_; }

    bool load(const std::string &path);
    void save(const std::string &path) const;

    /** Adapter for the phase-2 scenario builders. */
    model::BehaviorLookup lookup() const;

    std::size_t size() const { return rows_.size(); }

  private:
    std::map<Key, model::MeasuredBehavior> rows_;
    std::string fingerprint_;
};

} // namespace performa::exp

#endif // PERFORMA_EXP_BEHAVIOR_DB_HH
