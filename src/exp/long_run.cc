#include "exp/long_run.hh"

#include "core/performability.hh"
#include "exp/stages.hh"
#include "faults/injector.hh"
#include "sim/simulation.hh"
#include "loadgen/client_farm.hh"

namespace performa::exp {

std::vector<ValidationFault>
defaultValidationLoad(double scale)
{
    // Self-healing faults plus one splinter-inducing class, so the
    // operator stages get exercised too. MTTFs are per node. At
    // scale 1 the total degraded weight stays small (the model's
    // valid regime); larger scales push into fault overlap, where the
    // single-fault-at-a-time assumption visibly breaks.
    return {
        {fault::FaultKind::AppCrash, 7200.0 / scale, sim::sec(12)},
        {fault::FaultKind::AppHang, 7200.0 / scale, sim::sec(30)},
        {fault::FaultKind::KernelMemAlloc, 10800.0 / scale,
         sim::sec(30)},
        {fault::FaultKind::LinkDown, 14400.0 / scale, sim::sec(30)},
    };
}

namespace {

/**
 * Measure the single-fault behaviour of @p vf for @p version at the
 * validation durations (not the canonical Table 3 MTTRs).
 */
model::MeasuredBehavior
measureFor(press::Version version, const ValidationFault &vf,
           bool robust_membership)
{
    ExperimentConfig cfg = defaultExperimentConfig(version);
    cfg.cluster.press.robustMembership = robust_membership;
    fault::FaultSpec spec;
    spec.kind = vf.kind;
    spec.target = 3;
    spec.injectAt = cfg.injectAt;
    spec.duration = vf.duration;
    cfg.fault = spec;
    cfg.duration = cfg.injectAt + vf.duration + sim::sec(120);
    ExperimentResult res = runExperiment(cfg);
    return extractBehavior(res, spec);
}

/** Model MTTR of a validation fault (seconds). */
double
mttrOf(const ValidationFault &vf)
{
    if (fault::hasDuration(vf.kind))
        return sim::toSeconds(vf.duration);
    // App crash: repair = daemon restart (plus a beat to rejoin).
    return 12.0;
}

} // namespace

LongRunResult
validateModel(const LongRunConfig &cfg)
{
    LongRunResult out;

    // ---- Phase 1 + 2: per-fault behaviours and the prediction. ----
    std::vector<model::MeasuredBehavior> behaviors;
    for (const auto &vf : cfg.faults)
        behaviors.push_back(
            measureFor(cfg.version, vf, cfg.robustMembership));

    double tn = behaviors.front().normalTput;
    out.normalTput = tn;

    model::EnvParams env;
    env.operatorResponseSec = sim::toSeconds(cfg.operatorResponse);
    env.resetDurationSec = 5.0;
    env.warmupSec = 10.0;

    model::PerformabilityModel pmodel(tn);
    for (std::size_t i = 0; i < cfg.faults.size(); ++i) {
        const auto &vf = cfg.faults[i];
        model::FaultClass fc;
        fc.name = fault::faultName(vf.kind);
        fc.kind = vf.kind;
        fc.count = 4.0;
        fc.mttfSec = vf.mttfPerNodeSec;
        fc.mttrSec = mttrOf(vf);
        pmodel.addFault(fc, behaviors[i]);
    }
    model::PerfResult prediction = pmodel.evaluate(env);
    out.predictedAvailability = prediction.availability;
    for (const auto &c : prediction.breakdown)
        out.sumDegradedWeight += c.degradedWeight;

    // ---- The long run: a fault storm against the live cluster. ----
    sim::Simulation sim(cfg.seed);
    press::ClusterConfig ccfg;
    ccfg.press.version = cfg.version;
    ccfg.press.robustMembership = cfg.robustMembership;
    press::Cluster cluster(sim, ccfg);

    wl::WorkloadConfig wcfg;
    wcfg.requestRate = press::paperThroughput(cfg.version) * 1.15;
    wcfg.numFiles = 68000;
    wl::ClientFarm farm(sim, cluster.clientNet(),
                        cluster.serverClientPorts(),
                        cluster.clientMachinePorts(), wcfg);

    fault::Injector injector(sim, cluster);

    cluster.startAll();
    sim.runUntil(sim::sec(2));
    cluster.prewarm(wcfg.numFiles);
    farm.start();

    const sim::Tick warmup = sim::sec(20);
    const sim::Tick horizon = cfg.duration;

    // Per-class Poisson arrival processes over the 4 nodes.
    std::uint64_t faults = 0;
    std::function<void(std::size_t)> arm = [&](std::size_t idx) {
        const ValidationFault &vf = cfg.faults[idx];
        sim::Tick mean = static_cast<sim::Tick>(
            vf.mttfPerNodeSec / 4.0 * 1e6);
        sim::Tick gap = sim.rng().exponential(mean);
        sim.scheduleIn(gap, [&, idx] {
            if (sim.now() >= horizon)
                return;
            fault::FaultSpec spec;
            spec.kind = cfg.faults[idx].kind;
            spec.target = static_cast<sim::NodeId>(
                sim.rng().uniformInt(0, 3));
            spec.injectAt = sim.now();
            spec.duration = cfg.faults[idx].duration;
            injector.injectNow(spec);
            ++faults;
            arm(idx);
        });
    };
    for (std::size_t i = 0; i < cfg.faults.size(); ++i)
        arm(i);

    // Operator watchdog: reset a persistently splintered cluster.
    sim::Tick splintered_since = 0;
    std::uint64_t resets = 0;
    std::function<void()> watchdog = [&] {
        if (sim.now() < horizon) {
            if (!cluster.splintered()) {
                splintered_since = 0;
            } else {
                if (splintered_since == 0)
                    splintered_since = sim.now();
                else if (sim.now() - splintered_since >=
                         cfg.operatorResponse) {
                    cluster.operatorReset();
                    splintered_since = 0;
                    ++resets;
                }
            }
            sim.scheduleIn(sim::sec(5), watchdog);
        }
    };
    sim.scheduleIn(sim::sec(5), watchdog);

    sim.runUntil(horizon);
    farm.stop();

    out.faultsInjected = faults;
    out.operatorResets = resets;
    double long_run_tput = farm.served().meanRate(warmup, horizon);
    out.measuredAvailability = tn > 0 ? long_run_tput / tn : 0.0;
    if (out.measuredAvailability > 1.0)
        out.measuredAvailability = 1.0;
    return out;
}

} // namespace performa::exp
