/**
 * @file
 * Phase 1 of the methodology: run one PRESS version under a
 * saturating client load, inject a single fault, and record the
 * throughput/availability time series plus event markers.
 */

#ifndef PERFORMA_EXP_EXPERIMENT_HH
#define PERFORMA_EXP_EXPERIMENT_HH

#include <optional>
#include <set>
#include <vector>

#include "exp/markers.hh"
#include "faults/fault.hh"
#include "net/network.hh"
#include "press/cluster.hh"
#include "sim/latency_histogram.hh"
#include "sim/time_series.hh"
#include "loadgen/client_farm.hh"
#include "loadgen/load_profile.hh"

namespace performa::exp {

/** One experiment's parameters. */
struct ExperimentConfig
{
    press::ClusterConfig cluster;
    wl::WorkloadConfig workload;
    /** Workload shape; the default reproduces the paper's flat load
     *  byte-for-byte (see loadgen/load_profile.hh). */
    wl::LoadProfileSpec profile;
    std::optional<fault::FaultSpec> fault;
    sim::Tick injectAt = sim::sec(60);
    sim::Tick duration = sim::sec(210); ///< total run length
    std::optional<sim::Tick> operatorResetAt;
    std::uint64_t seed = 42;
};

/**
 * Sensible defaults for a given version: saturating offered load and
 * a working set that exercises the cooperative cache.
 */
ExperimentConfig defaultExperimentConfig(press::Version v);

/** Everything a phase-1 run produces. */
struct ExperimentResult
{
    sim::TimeSeries served{sim::sec(1)};
    sim::TimeSeries failed{sim::sec(1)};
    sim::TimeSeries offered{sim::sec(1)};
    /** Per-stage latency histograms in per-second slices. */
    sim::StageLatencyTimeline latency;
    MarkerLog markers;

    /** Mean served rate in the pre-fault steady window. */
    double normalThroughput = 0.0;
    /** Fraction of offered requests served over the whole run. */
    double availability = 0.0;
    /** Cooperating-set sizes per server at the end of the run. */
    std::vector<std::size_t> finalMembers;
    /** Live servers no longer form one cooperating cluster. */
    bool endSplintered = false;
    sim::Tick runLength = 0;
    sim::Tick injectAt = 0;
    /**
     * End-of-run NIC counters for each intra-cluster port (indexed by
     * PortId == node index): traffic totals plus drops by cause.
     */
    std::vector<net::PortStats> intraPortStats;

    /** Mean served rate over [from, to). */
    double
    meanRate(sim::Tick from, sim::Tick to) const
    {
        return served.meanRate(from, to);
    }
};

/**
 * Build the world, warm it, drive it, inject, record. One call = one
 * fault-injection experiment, as in Section 5 of the paper.
 */
ExperimentResult runExperiment(const ExperimentConfig &cfg);

} // namespace performa::exp

#endif // PERFORMA_EXP_EXPERIMENT_HH
