/**
 * @file
 * Phase 1 of the methodology: run one PRESS version under a
 * saturating client load, inject a single fault, and record the
 * throughput/availability time series plus event markers.
 */

#ifndef PERFORMA_EXP_EXPERIMENT_HH
#define PERFORMA_EXP_EXPERIMENT_HH

#include <optional>
#include <set>
#include <vector>

#include <memory>

#include "exp/markers.hh"
#include "faults/fault.hh"
#include "faults/injector.hh"
#include "net/network.hh"
#include "press/cluster.hh"
#include "sim/latency_histogram.hh"
#include "sim/simulation.hh"
#include "sim/snapshot.hh"
#include "sim/time_series.hh"
#include "loadgen/client_farm.hh"
#include "loadgen/load_profile.hh"

namespace performa::exp {

/** One experiment's parameters. */
struct ExperimentConfig
{
    press::ClusterConfig cluster;
    wl::WorkloadConfig workload;
    /** Workload shape; the default reproduces the paper's flat load
     *  byte-for-byte (see loadgen/load_profile.hh). */
    wl::LoadProfileSpec profile;
    std::optional<fault::FaultSpec> fault;
    sim::Tick injectAt = sim::sec(60);
    sim::Tick duration = sim::sec(210); ///< total run length
    std::optional<sim::Tick> operatorResetAt;
    std::uint64_t seed = 42;
};

/**
 * Sensible defaults for a given version: saturating offered load and
 * a working set that exercises the cooperative cache.
 */
ExperimentConfig defaultExperimentConfig(press::Version v);

/** Everything a phase-1 run produces. */
struct ExperimentResult
{
    sim::TimeSeries served{sim::sec(1)};
    sim::TimeSeries failed{sim::sec(1)};
    sim::TimeSeries offered{sim::sec(1)};
    /** Per-stage latency histograms in per-second slices. */
    sim::StageLatencyTimeline latency;
    MarkerLog markers;

    /** Mean served rate in the pre-fault steady window. */
    double normalThroughput = 0.0;
    /** Fraction of offered requests served over the whole run. */
    double availability = 0.0;
    /** Cooperating-set sizes per server at the end of the run. */
    std::vector<std::size_t> finalMembers;
    /** Live servers no longer form one cooperating cluster. */
    bool endSplintered = false;
    sim::Tick runLength = 0;
    sim::Tick injectAt = 0;
    /**
     * End-of-run NIC counters for each intra-cluster port (indexed by
     * PortId == node index): traffic totals plus drops by cause.
     */
    std::vector<net::PortStats> intraPortStats;

    /** Mean served rate over [from, to). */
    double
    meanRate(sim::Tick from, sim::Tick to) const
    {
        return served.meanRate(from, to);
    }
};

/**
 * One phase-1 world, split into a fault-free warm phase and an
 * inject-and-measure phase so a whole fault grid can share one
 * warm-up:
 *
 *   Experiment e(cfg);
 *   e.warmUp();                       // [0, cfg.injectAt], no fault
 *   sim::Snapshot snap = e.snapshot();
 *   for (auto &fault : grid) {
 *       e.forkFrom(snap);             // rewind to the warm point
 *       auto res = e.injectAndMeasure(fault);
 *   }
 *
 * The fresh path (runExperiment) is warmUp() followed directly by
 * injectAndMeasure() — no snapshot round-trip — so fork-vs-fresh
 * byte-equality genuinely tests restore fidelity.
 *
 * In both paths the fault is applied at exactly cfg.injectAt, after
 * every event scheduled at or before that tick has executed.
 */
class Experiment
{
  public:
    explicit Experiment(ExperimentConfig cfg);

    /** Build the world and run the fault-free phase [0, injectAt];
     *  the clock is left at exactly cfg.injectAt. */
    void warmUp();

    /** Capture the warmed world (call right after warmUp()). */
    sim::Snapshot snapshot() const;

    /** Rewind the world to @p snap (the warm-up point). */
    void forkFrom(const sim::Snapshot &snap);

    /** Inject @p f (if any) at the warm-up point, run to
     *  @p duration (0 = cfg.duration; must be <= cfg.duration so the
     *  reserved series capacity covers it) and collect the result.
     *  Callable repeatedly, once per forkFrom(). */
    ExperimentResult
    injectAndMeasure(const std::optional<fault::FaultSpec> &f,
                     sim::Tick duration = 0);

    /** Inject-and-measure with the config's own fault. */
    ExperimentResult injectAndMeasure();

    const ExperimentConfig &config() const { return cfg_; }
    press::Cluster &cluster() { return *cluster_; }
    sim::Simulation &sim() { return sim_; }

  private:
    ExperimentConfig cfg_;
    sim::Simulation sim_;
    std::unique_ptr<press::Cluster> cluster_;
    std::unique_ptr<wl::LoadGenerator> farm_;
    std::unique_ptr<fault::Injector> injector_;
    MarkerLog markers_;
    sim::SnapshotRegistry registry_;
    bool warmed_ = false;
};

/**
 * Build the world, warm it, drive it, inject, record. One call = one
 * fault-injection experiment, as in Section 5 of the paper.
 */
ExperimentResult runExperiment(const ExperimentConfig &cfg);

} // namespace performa::exp

#endif // PERFORMA_EXP_EXPERIMENT_HH
