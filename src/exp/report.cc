#include "exp/report.hh"

#include <algorithm>
#include <fstream>
#include <string>

namespace performa::exp {

void
printSeries(const ExperimentResult &res, sim::Tick from, sim::Tick to,
            sim::Tick step, std::FILE *out)
{
    double peak = 1.0;
    for (sim::Tick t = from; t + step <= to; t += step)
        peak = std::max(peak, res.served.meanRate(t, t + step));

    for (sim::Tick t = from; t + step <= to; t += step) {
        double r = res.served.meanRate(t, t + step);
        int bar = static_cast<int>(50.0 * r / peak + 0.5);
        std::string b(static_cast<std::size_t>(bar), '#');

        // Annotate markers falling in this bucket.
        std::string notes;
        for (const auto &m : res.markers.all()) {
            if (m.t >= t && m.t < t + step) {
                if (!notes.empty())
                    notes += "; ";
                notes += markerName(m.kind);
                if (!m.detail.empty())
                    notes += ":" + m.detail;
            }
        }
        std::fprintf(out, "  t=%5.0fs  %7.0f req/s  |%-50s|%s%s\n",
                     sim::toSeconds(t), r, b.c_str(),
                     notes.empty() ? "" : "  << ", notes.c_str());
    }
}

void
printMarkers(const ExperimentResult &res, std::FILE *out)
{
    for (const auto &m : res.markers.all()) {
        std::fprintf(out, "  [%8.2fs] %-14s node=%d other=%d %s\n",
                     sim::toSeconds(m.t), markerName(m.kind),
                     m.node == sim::invalidNode ? -1
                                                : static_cast<int>(m.node),
                     m.other == sim::invalidNode
                         ? -1
                         : static_cast<int>(m.other),
                     m.detail.c_str());
    }
}

void
printBehavior(const model::MeasuredBehavior &mb, std::FILE *out)
{
    std::fprintf(out,
                 "  Tn=%.0f req/s  detected=%s  healed=%s\n",
                 mb.normalTput, mb.detected ? "yes" : "no",
                 mb.healed ? "yes" : "no");
    for (int s = 0; s < model::numStages; ++s) {
        std::fprintf(out, "    stage %c: tput=%7.0f  dur=%7.1fs%s\n",
                     model::stageLetter(s), mb.tput[s], mb.dur[s],
                     (s == model::StageC || s >= model::StageE)
                         ? "  (duration resolved by the model)"
                         : "");
    }
}

bool
writeSeriesCsv(const ExperimentResult &res, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "t_sec,served,failed,offered\n";
    std::size_t n = std::max({res.served.size(), res.failed.size(),
                              res.offered.size()});
    for (std::size_t i = 0; i < n; ++i) {
        out << i << ',' << res.served.count(i) << ','
            << res.failed.count(i) << ',' << res.offered.count(i)
            << '\n';
    }
    return true;
}

} // namespace performa::exp
