/**
 * @file
 * Mechanized phase-1 analysis: map an experiment's throughput series
 * and markers onto the 7-stage model (what the paper's evaluators did
 * by reading graphs and logs).
 */

#ifndef PERFORMA_EXP_STAGES_HH
#define PERFORMA_EXP_STAGES_HH

#include <optional>

#include "core/seven_stage.hh"
#include "exp/experiment.hh"
#include "faults/fault.hh"

namespace performa::exp {

/** Windows used when reading stages off the series. */
struct ExtractionParams
{
    sim::Tick reconfigTransient = sim::sec(10); ///< stage-B window
    sim::Tick recoveryTransient = sim::sec(15); ///< stage-D window
    double healedThreshold = 0.93; ///< stage E >= this fraction of Tn

    /**
     * When set, fill MeasuredBehavior::latency by slicing the
     * experiment's latency timeline at the same stage boundaries the
     * throughput levels are read from.
     */
    std::optional<model::LatencySlo> slo;
};

/**
 * Extract the measured behaviour of one (version, fault) experiment.
 * @p spec must be the fault that was injected.
 */
model::MeasuredBehavior extractBehavior(const ExperimentResult &res,
                                        const fault::FaultSpec &spec,
                                        const ExtractionParams &p = {});

} // namespace performa::exp

#endif // PERFORMA_EXP_STAGES_HH
