#include "exp/replicate.hh"

#include <cmath>

#include "sim/logging.hh"

namespace performa::exp {

BehaviorEnsemble
replicateBehavior(ExperimentConfig cfg,
                  const std::vector<std::uint64_t> &seeds,
                  const ExtractionParams &params)
{
    if (seeds.empty())
        FATAL("replicateBehavior needs at least one seed");
    if (!cfg.fault)
        FATAL("replicateBehavior needs a fault to inject");

    BehaviorEnsemble out;
    out.runs = static_cast<int>(seeds.size());

    std::vector<model::MeasuredBehavior> all;
    all.reserve(seeds.size());
    for (std::uint64_t seed : seeds) {
        cfg.seed = seed;
        ExperimentResult res = runExperiment(cfg);
        all.push_back(extractBehavior(res, *cfg.fault, params));
    }

    double n = static_cast<double>(all.size());
    for (const auto &mb : all) {
        out.mean.normalTput += mb.normalTput / n;
        for (int s = 0; s < model::numStages; ++s) {
            auto i = static_cast<std::size_t>(s);
            out.mean.tput[i] += mb.tput[i] / n;
            out.mean.dur[i] += mb.dur[i] / n;
        }
        out.detectedVotes += mb.detected ? 1 : 0;
        out.healedVotes += mb.healed ? 1 : 0;
    }
    out.mean.detected = out.detectedVotes * 2 > out.runs;
    out.mean.healed = out.healedVotes * 2 > out.runs;

    if (all.size() > 1) {
        double tn_m2 = 0;
        std::array<double, model::numStages> m2{};
        for (const auto &mb : all) {
            double d = mb.normalTput - out.mean.normalTput;
            tn_m2 += d * d;
            for (int s = 0; s < model::numStages; ++s) {
                auto i = static_cast<std::size_t>(s);
                double ds = mb.tput[i] - out.mean.tput[i];
                m2[i] += ds * ds;
            }
        }
        out.tnStddev = std::sqrt(tn_m2 / (n - 1));
        for (int s = 0; s < model::numStages; ++s) {
            auto i = static_cast<std::size_t>(s);
            out.tputStddev[i] = std::sqrt(m2[i] / (n - 1));
        }
    }
    return out;
}

} // namespace performa::exp
