#include "exp/experiment.hh"

#include <memory>

#include "faults/injector.hh"
#include "loadgen/generator.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace performa::exp {

const char *
markerName(MarkerKind k)
{
    switch (k) {
      case MarkerKind::Inject:
        return "inject";
      case MarkerKind::Recover:
        return "recover";
      case MarkerKind::Exclude:
        return "exclude";
      case MarkerKind::MemberUp:
        return "member-up";
      case MarkerKind::FailFast:
        return "fail-fast";
      case MarkerKind::GiveUp:
        return "give-up";
      case MarkerKind::Started:
        return "started";
      case MarkerKind::OperatorReset:
        return "operator-reset";
    }
    return "?";
}

ExperimentConfig
defaultExperimentConfig(press::Version v)
{
    ExperimentConfig cfg;
    cfg.cluster.press.version = v;
    // Saturating open-loop load: ~15% above the version's near-peak
    // throughput, so measured throughput tracks server capacity.
    cfg.workload.requestRate = press::paperThroughput(v) * 1.15;
    // Slightly larger than the 4-node aggregate cache (65536 files),
    // like the paper's largest-working-set trace: the cooperative
    // cache runs full, so losing cache capacity costs real misses.
    cfg.workload.numFiles = 68000;
    return cfg;
}

Experiment::Experiment(ExperimentConfig cfg)
    : cfg_(std::move(cfg)), sim_(cfg_.seed)
{
    if (cfg_.profile.pareto.enabled)
        cfg_.cluster.press.fileSizeFn =
            wl::makeFileSizeFn(cfg_.profile.pareto);
    if (cfg_.profile.reserveSlices == 0)
        cfg_.profile.reserveSlices =
            static_cast<std::size_t>(cfg_.duration / sim::sec(1)) + 2;

    cluster_ = std::make_unique<press::Cluster>(sim_, cfg_.cluster);
    farm_ = wl::makeLoadGenerator(
        sim_, cluster_->clientNet(), cluster_->serverClientPorts(),
        cluster_->clientMachinePorts(), cfg_.workload, cfg_.profile);

    // Wire up marker collection (into the experiment-owned log, which
    // the snapshot registry saves and restores like any component).
    for (std::uint32_t i = 0; i < cluster_->numNodes(); ++i) {
        press::ServerHooks hooks;
        hooks.onExclude = [this](sim::NodeId self, sim::NodeId failed) {
            markers_.add(sim_.now(), MarkerKind::Exclude, self, failed);
        };
        hooks.onMemberUp = [this](sim::NodeId self, sim::NodeId joined) {
            markers_.add(sim_.now(), MarkerKind::MemberUp, self, joined);
        };
        hooks.onFailFast = [this](sim::NodeId self,
                                  const std::string &why) {
            markers_.add(sim_.now(), MarkerKind::FailFast, self,
                         sim::invalidNode, why);
        };
        hooks.onGiveUp = [this](sim::NodeId self) {
            markers_.add(sim_.now(), MarkerKind::GiveUp, self);
        };
        hooks.onStarted = [this](sim::NodeId self) {
            markers_.add(sim_.now(), MarkerKind::Started, self);
        };
        cluster_->server(i).setHooks(hooks);
    }

    injector_ = std::make_unique<fault::Injector>(sim_, *cluster_);
    injector_->setEventFn([this](sim::Tick t, const std::string &what,
                                 sim::NodeId node) {
        MarkerKind k = what.rfind("inject", 0) == 0 ? MarkerKind::Inject
                                                    : MarkerKind::Recover;
        markers_.add(t, k, node, sim::invalidNode, what);
    });

    // Snapshot wiring, bottom-up: the simulation core first (clock,
    // RNG, event queue), then every cluster component, the load
    // generator, and finally the experiment's own marker log.
    registry_.attach(sim_);
    cluster_->registerWith(registry_);
    farm_->registerWith(registry_);
    registry_.add(
        [this] { return std::make_shared<const MarkerLog>(markers_); },
        [this](const void *s) {
            markers_ = *static_cast<const MarkerLog *>(s);
        });
}

void
Experiment::warmUp()
{
    // Bring the world up: form the cluster, pre-warm the caches to
    // the steady-state file placement, then open the client valves.
    cluster_->startAll();
    sim_.runUntil(sim::sec(2));
    cluster_->prewarm(cfg_.workload.numFiles);
    farm_->start();

    if (cfg_.operatorResetAt) {
        sim_.schedule(*cfg_.operatorResetAt, [this] {
            markers_.add(sim_.now(), MarkerKind::OperatorReset);
            cluster_->operatorReset();
        });
    }

    // Drive the fault-free phase. Every event at or before injectAt
    // executes and the clock stops at exactly injectAt, so both the
    // fresh and the fork path see an identical world at the fault
    // point.
    sim_.runUntil(cfg_.injectAt);
    warmed_ = true;
}

sim::Snapshot
Experiment::snapshot() const
{
    return registry_.capture();
}

void
Experiment::forkFrom(const sim::Snapshot &snap)
{
    registry_.forkFrom(snap);
}

ExperimentResult
Experiment::injectAndMeasure(const std::optional<fault::FaultSpec> &f,
                             sim::Tick duration)
{
    if (!warmed_)
        PANIC("injectAndMeasure() before warmUp()");
    if (duration == 0)
        duration = cfg_.duration;

    if (f) {
        fault::FaultSpec spec = *f;
        spec.injectAt = cfg_.injectAt;
        injector_->injectNow(spec);
    }

    sim_.runUntil(duration);
    farm_->stop();

    ExperimentResult res;
    res.injectAt = cfg_.injectAt;
    res.runLength = duration;
    res.markers = markers_;

    // Copy out the series (they span the whole run, warm-up included).
    res.served = farm_->served();
    res.failed = farm_->failed();
    res.offered = farm_->offered();
    res.latency = farm_->timeline();

    // Steady-state throughput just before injection (or over the
    // second half of a fault-free run).
    sim::Tick t_from = f ? cfg_.injectAt - sim::sec(20) : duration / 2;
    sim::Tick t_to = f ? cfg_.injectAt : duration;
    res.normalThroughput = res.served.meanRate(t_from, t_to);

    res.availability =
        farm_->totalOffered()
            ? static_cast<double>(farm_->totalServed()) /
                  static_cast<double>(farm_->totalOffered())
            : 0.0;

    for (std::uint32_t i = 0; i < cluster_->numNodes(); ++i)
        res.finalMembers.push_back(cluster_->server(i).members().size());
    res.endSplintered = cluster_->splintered();

    net::Network &intra = cluster_->intraNet();
    for (std::size_t p = 0; p < intra.numPorts(); ++p)
        res.intraPortStats.push_back(
            intra.portStats(static_cast<net::PortId>(p)));

    return res;
}

ExperimentResult
Experiment::injectAndMeasure()
{
    return injectAndMeasure(cfg_.fault);
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    Experiment e(cfg);
    e.warmUp();
    return e.injectAndMeasure();
}

} // namespace performa::exp
