#include "exp/experiment.hh"

#include "faults/injector.hh"
#include "loadgen/generator.hh"
#include "sim/simulation.hh"

namespace performa::exp {

const char *
markerName(MarkerKind k)
{
    switch (k) {
      case MarkerKind::Inject:
        return "inject";
      case MarkerKind::Recover:
        return "recover";
      case MarkerKind::Exclude:
        return "exclude";
      case MarkerKind::MemberUp:
        return "member-up";
      case MarkerKind::FailFast:
        return "fail-fast";
      case MarkerKind::GiveUp:
        return "give-up";
      case MarkerKind::Started:
        return "started";
      case MarkerKind::OperatorReset:
        return "operator-reset";
    }
    return "?";
}

ExperimentConfig
defaultExperimentConfig(press::Version v)
{
    ExperimentConfig cfg;
    cfg.cluster.press.version = v;
    // Saturating open-loop load: ~15% above the version's near-peak
    // throughput, so measured throughput tracks server capacity.
    cfg.workload.requestRate = press::paperThroughput(v) * 1.15;
    // Slightly larger than the 4-node aggregate cache (65536 files),
    // like the paper's largest-working-set trace: the cooperative
    // cache runs full, so losing cache capacity costs real misses.
    cfg.workload.numFiles = 68000;
    return cfg;
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    sim::Simulation sim(cfg.seed);

    press::ClusterConfig clusterCfg = cfg.cluster;
    wl::LoadProfileSpec profile = cfg.profile;
    if (profile.pareto.enabled)
        clusterCfg.press.fileSizeFn = wl::makeFileSizeFn(profile.pareto);
    if (profile.reserveSlices == 0)
        profile.reserveSlices =
            static_cast<std::size_t>(cfg.duration / sim::sec(1)) + 2;

    press::Cluster cluster(sim, clusterCfg);
    auto farmPtr = wl::makeLoadGenerator(
        sim, cluster.clientNet(), cluster.serverClientPorts(),
        cluster.clientMachinePorts(), cfg.workload, profile);
    wl::LoadGenerator &farm = *farmPtr;

    ExperimentResult res;
    res.injectAt = cfg.injectAt;
    res.runLength = cfg.duration;

    // Wire up marker collection.
    for (std::uint32_t i = 0; i < cluster.numNodes(); ++i) {
        press::ServerHooks hooks;
        hooks.onExclude = [&res, &sim](sim::NodeId self,
                                       sim::NodeId failed) {
            res.markers.add(sim.now(), MarkerKind::Exclude, self, failed);
        };
        hooks.onMemberUp = [&res, &sim](sim::NodeId self,
                                        sim::NodeId joined) {
            res.markers.add(sim.now(), MarkerKind::MemberUp, self,
                            joined);
        };
        hooks.onFailFast = [&res, &sim](sim::NodeId self,
                                        const std::string &why) {
            res.markers.add(sim.now(), MarkerKind::FailFast, self,
                            sim::invalidNode, why);
        };
        hooks.onGiveUp = [&res, &sim](sim::NodeId self) {
            res.markers.add(sim.now(), MarkerKind::GiveUp, self);
        };
        hooks.onStarted = [&res, &sim](sim::NodeId self) {
            res.markers.add(sim.now(), MarkerKind::Started, self);
        };
        cluster.server(i).setHooks(hooks);
    }

    fault::Injector injector(sim, cluster);
    injector.setEventFn([&res](sim::Tick t, const std::string &what,
                               sim::NodeId node) {
        MarkerKind k = what.rfind("inject", 0) == 0 ? MarkerKind::Inject
                                                    : MarkerKind::Recover;
        res.markers.add(t, k, node, sim::invalidNode, what);
    });

    // Bring the world up: form the cluster, pre-warm the caches to
    // the steady-state file placement, then open the client valves.
    cluster.startAll();
    sim.runUntil(sim::sec(2));
    cluster.prewarm(cfg.workload.numFiles);
    farm.start();

    if (cfg.fault) {
        fault::FaultSpec spec = *cfg.fault;
        spec.injectAt = cfg.injectAt;
        injector.schedule(spec);
    }

    if (cfg.operatorResetAt) {
        sim.schedule(*cfg.operatorResetAt, [&] {
            res.markers.add(sim.now(), MarkerKind::OperatorReset);
            cluster.operatorReset();
        });
    }

    sim.runUntil(cfg.duration);
    farm.stop();

    // Copy out the series.
    res.served = farm.served();
    res.failed = farm.failed();
    res.offered = farm.offered();
    res.latency = farm.stealTimeline();

    // Steady-state throughput just before injection (or over the
    // second half of a fault-free run).
    sim::Tick t_from = cfg.fault ? cfg.injectAt - sim::sec(20)
                                 : cfg.duration / 2;
    sim::Tick t_to = cfg.fault ? cfg.injectAt : cfg.duration;
    res.normalThroughput = res.served.meanRate(t_from, t_to);

    res.availability =
        farm.totalOffered()
            ? static_cast<double>(farm.totalServed()) /
                  static_cast<double>(farm.totalOffered())
            : 0.0;

    for (std::uint32_t i = 0; i < cluster.numNodes(); ++i)
        res.finalMembers.push_back(cluster.server(i).members().size());
    res.endSplintered = cluster.splintered();

    net::Network &intra = cluster.intraNet();
    for (std::size_t p = 0; p < intra.numPorts(); ++p)
        res.intraPortStats.push_back(
            intra.portStats(static_cast<net::PortId>(p)));

    return res;
}

} // namespace performa::exp
