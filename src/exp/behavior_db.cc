#include "exp/behavior_db.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/stages.hh"
#include "sim/logging.hh"

namespace performa::exp {

ExperimentConfig
experimentFor(press::Version v, fault::FaultKind k)
{
    ExperimentConfig cfg = defaultExperimentConfig(v);
    fault::FaultSpec spec;
    spec.kind = k;
    spec.target = 3; // never the lowest-ID node (it answers rejoins)
    spec.injectAt = cfg.injectAt;

    // Transient faults last their Table 3 MTTR so measured stage
    // boundaries line up with the model's repair times.
    switch (k) {
      case fault::FaultKind::SwitchDown:
        spec.duration = sim::hours(1);
        break;
      case fault::FaultKind::LinkDown:
      case fault::FaultKind::NodeCrash:
      case fault::FaultKind::NodeFreeze:
      case fault::FaultKind::KernelMemAlloc:
      case fault::FaultKind::PinExhaustion:
      case fault::FaultKind::AppHang:
        spec.duration = sim::minutes(3);
        break;
      default:
        spec.duration = 0;
        break;
    }

    cfg.fault = spec;
    sim::Tick tail = sim::sec(150);
    cfg.duration = cfg.injectAt + spec.duration + tail;
    if (k == fault::FaultKind::AppCrash ||
        k == fault::FaultKind::BadParamNull ||
        k == fault::FaultKind::BadParamOffPtr ||
        k == fault::FaultKind::BadParamOffSize ||
        k == fault::FaultKind::PacketDrop) {
        cfg.duration = cfg.injectAt + sim::sec(180);
    }
    return cfg;
}

model::MeasuredBehavior
BehaviorDb::measure(press::Version v, fault::FaultKind k)
{
    ExperimentConfig cfg = experimentFor(v, k);
    ExperimentResult res = runExperiment(cfg);
    return extractBehavior(res, *cfg.fault);
}

// ensureAll lives in campaign/phase1.cc: measurement of the missing
// grid points is sharded across the campaign worker pool.

bool
BehaviorDb::has(press::Version v, fault::FaultKind k) const
{
    return rows_.count({v, k}) != 0;
}

const model::MeasuredBehavior &
BehaviorDb::get(press::Version v, fault::FaultKind k) const
{
    auto it = rows_.find({v, k});
    if (it == rows_.end())
        FATAL("BehaviorDb: no behaviour for ", press::versionName(v),
              " / ", fault::faultName(k));
    return it->second;
}

void
BehaviorDb::set(press::Version v, fault::FaultKind k,
                const model::MeasuredBehavior &mb)
{
    rows_[{v, k}] = mb;
}

model::BehaviorLookup
BehaviorDb::lookup() const
{
    return [this](press::Version v, fault::FaultKind k) {
        return get(v, k);
    };
}

namespace {
const char kFingerprintPrefix[] = "# fingerprint: ";
} // namespace

bool
BehaviorDb::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    std::getline(in, line); // fingerprint comment or column header
    std::string fileFp;
    if (line.rfind(kFingerprintPrefix, 0) == 0) {
        fileFp = line.substr(sizeof(kFingerprintPrefix) - 1);
        std::getline(in, line); // column header
    }
    // A stale cache (different seed scheme, axes, or SLO — or a
    // legacy file with no fingerprint at all) must be re-measured,
    // never merged.
    if (!fingerprint_.empty() && fileFp != fingerprint_)
        return false;
    // Caches written with latency recording carry extra columns.
    bool hasLatency = line.find(",lat,") != std::string::npos;
    while (std::getline(in, line)) {
        std::istringstream ss(line);
        std::string field;
        auto next = [&]() {
            std::getline(ss, field, ',');
            return field;
        };
        int v = std::stoi(next());
        int k = std::stoi(next());
        model::MeasuredBehavior mb;
        mb.normalTput = std::stod(next());
        mb.detected = std::stoi(next()) != 0;
        mb.healed = std::stoi(next()) != 0;
        for (int s = 0; s < model::numStages; ++s)
            mb.tput[s] = std::stod(next());
        for (int s = 0; s < model::numStages; ++s)
            mb.dur[s] = std::stod(next());
        if (hasLatency) {
            model::LatencySummary &ls = mb.latency;
            ls.present = std::stoi(next()) != 0;
            ls.sloQuantile = std::stod(next());
            ls.sloThresholdUs = std::stod(next());
            ls.fracWithinNormal = std::stod(next());
            ls.p50Us = std::stod(next());
            ls.p90Us = std::stod(next());
            ls.p99Us = std::stod(next());
            ls.p999Us = std::stod(next());
            for (int s = 0; s < model::numStages; ++s)
                ls.fracWithin[s] = std::stod(next());
            for (int s = 0; s < model::numStages; ++s)
                ls.stageP99Us[s] = std::stod(next());
        }
        rows_[{static_cast<press::Version>(v),
               static_cast<fault::FaultKind>(k)}] = mb;
    }
    return true;
}

void
BehaviorDb::save(const std::string &path) const
{
    // Write-to-temp + rename: an interrupted run must never leave a
    // truncated cache that a later run silently loads as complete.
    std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    if (!out)
        return;
    // The plain (paper) grid keeps its historical byte-identical
    // format; latency columns appear only when some row carries them.
    bool anyLatency = false;
    for (const auto &[key, mb] : rows_)
        if (mb.latency.present)
            anyLatency = true;
    if (!fingerprint_.empty())
        out << kFingerprintPrefix << fingerprint_ << "\n";
    out << "version,fault,tn,detected,healed";
    for (int s = 0; s < model::numStages; ++s)
        out << ",tput" << model::stageLetter(s);
    for (int s = 0; s < model::numStages; ++s)
        out << ",dur" << model::stageLetter(s);
    if (anyLatency) {
        out << ",lat,sloq,slous,fracN,p50,p90,p99,p999";
        for (int s = 0; s < model::numStages; ++s)
            out << ",frac" << model::stageLetter(s);
        for (int s = 0; s < model::numStages; ++s)
            out << ",p99" << model::stageLetter(s);
    }
    out << "\n";
    for (const auto &[key, mb] : rows_) {
        out << static_cast<int>(key.first) << ','
            << static_cast<int>(key.second) << ',' << mb.normalTput
            << ',' << (mb.detected ? 1 : 0) << ','
            << (mb.healed ? 1 : 0);
        for (int s = 0; s < model::numStages; ++s)
            out << ',' << mb.tput[s];
        for (int s = 0; s < model::numStages; ++s)
            out << ',' << mb.dur[s];
        if (anyLatency) {
            const model::LatencySummary &ls = mb.latency;
            out << ',' << (ls.present ? 1 : 0) << ',' << ls.sloQuantile
                << ',' << ls.sloThresholdUs << ',' << ls.fracWithinNormal
                << ',' << ls.p50Us << ',' << ls.p90Us << ',' << ls.p99Us
                << ',' << ls.p999Us;
            for (int s = 0; s < model::numStages; ++s)
                out << ',' << ls.fracWithin[s];
            for (int s = 0; s < model::numStages; ++s)
                out << ',' << ls.stageP99Us[s];
        }
        out << "\n";
    }
    out.flush();
    if (!out) {
        std::remove(tmp.c_str());
        return;
    }
    out.close();
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
}

} // namespace performa::exp
