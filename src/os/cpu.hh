/**
 * @file
 * Serially-executing CPU model. PRESS is structured around one main
 * coordinating thread per node; the Cpu models that thread's execution
 * time: work items are charged a cost in microseconds and complete in
 * FIFO order. Pausing the Cpu models blocking (a send with no buffer
 * space), SIGSTOP, and node freezes.
 */

#ifndef PERFORMA_OS_CPU_HH
#define PERFORMA_OS_CPU_HH

#include <cstdint>

#include "sim/ring_buffer.hh"
#include "sim/simulation.hh"
#include "sim/small_fn.hh"
#include "sim/types.hh"

namespace performa::osim {

/**
 * A single execution lane with a FIFO run queue.
 *
 * Work submitted while the lane is busy or paused waits; throughput
 * under saturation therefore emerges naturally from per-item costs.
 */
class Cpu
{
  public:
    explicit Cpu(sim::Simulation &s) : sim_(s) {}

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /**
     * Queue a work item costing @p cost microseconds; @p done runs
     * when the item retires. Small completions (the common `this` +
     * id captures) are stored inline, allocation-free.
     */
    void exec(sim::Tick cost, sim::SmallFn done);

    /**
     * Suspend processing. Pauses nest (a node freeze on top of a
     * blocked send requires two resumes). The in-flight item, if any,
     * is allowed to retire.
     */
    void pause();

    /** Undo one pause(). */
    void resume();

    /** Drop all queued work and any in-flight item (node crash). */
    void clear();

    bool paused() const { return pauseCount_ > 0; }
    bool idle() const { return !running_ && queue_.empty(); }
    std::size_t queueLength() const { return queue_.size(); }

    /** Total microseconds of work retired (utilization accounting). */
    sim::Tick busyTime() const { return busyTime_; }

    /** Snapshot state: run queue and in-flight item (completions
     *  clone()d), pause depth, generation and accounting. */
    struct Saved;

    Saved save() const;
    void restore(const Saved &s);

  private:
    struct Item
    {
        sim::Tick cost;
        sim::SmallFn done;
    };

    /** Start the next item if the lane is free. */
    void maybeStart();

    sim::Simulation &sim_;
    sim::RingBuffer<Item> queue_;
    Item inflight_{}; ///< item being executed; keeps the completion
                      ///< event's capture down to {this, generation}
    bool running_ = false;
    int pauseCount_ = 0;
    std::uint64_t generation_ = 0; ///< invalidates in-flight completions
    sim::Tick busyTime_ = 0;
};

struct Cpu::Saved
{
    sim::RingBuffer<Item> queue;
    Item inflight;
    bool running;
    int pauseCount;
    std::uint64_t generation;
    sim::Tick busyTime;
};

} // namespace performa::osim

#endif // PERFORMA_OS_CPU_HH
