/**
 * @file
 * The contract between a node's monitor daemon and the application it
 * supervises. Mendosus runs a user-level daemon on each node that
 * starts the server process, delivers SIGSTOP/SIGCONT/SIGKILL to it,
 * and restarts it; Service is the process-side half of that protocol.
 */

#ifndef PERFORMA_OS_SERVICE_HH
#define PERFORMA_OS_SERVICE_HH

namespace performa::osim {

/** Why a service process terminated. */
enum class ExitReason
{
    Killed,    ///< SIGKILL from the fault injector (app crash fault)
    FailFast,  ///< the server terminated itself on a fatal comm error
    GaveUp,    ///< rejoin attempts exhausted; waits for the operator
    NodeCrash, ///< the whole node went down
};

/**
 * A supervised application process (implemented by press::Server).
 */
class Service
{
  public:
    virtual ~Service() = default;

    /** (Re)start the process with a fresh state. */
    virtual void start() = 0;

    /** SIGSTOP: the process stops consuming CPU and timers. */
    virtual void sigStop() = 0;

    /** SIGCONT: resume after a SIGSTOP. */
    virtual void sigCont() = 0;

    /**
     * Terminate the process.
     * @param silent true when the node itself died, so the OS never
     * got a chance to close sockets (no FIN/RST to peers).
     */
    virtual void terminate(bool silent) = 0;

    /** @return true while the process exists (running or stopped). */
    virtual bool alive() const = 0;
};

} // namespace performa::osim

#endif // PERFORMA_OS_SERVICE_HH
