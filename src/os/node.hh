/**
 * @file
 * One cluster node: CPU, kernel memory, pinnable-page budget, network
 * attachment, power/freeze lifecycle, and the Mendosus-style monitor
 * daemon that supervises the server process.
 */

#ifndef PERFORMA_OS_NODE_HH
#define PERFORMA_OS_NODE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/network.hh"
#include "os/cpu.hh"
#include "os/memory.hh"
#include "os/service.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"

namespace performa::osim {

/** Sizing and timing knobs for a node. */
struct NodeConfig
{
    /** Kernel memory pool backing skbuf allocations. */
    std::uint64_t kernelMemBytes = 64ull << 20;
    /** Pinnable-page budget (most of the 206 MB of physical memory). */
    std::uint64_t pinLimitBytes = 180ull << 20;
    /** Delay from node power-up to the daemon launching the service. */
    sim::Tick serviceStartDelay = sim::sec(5);
    /** Daemon delay before restarting a dead service process. */
    sim::Tick serviceRestartDelay = sim::sec(10);
};

/**
 * A cluster node. The node owns the hardware/OS state; the protocol
 * stacks and the PRESS server attach to it.
 */
class Node
{
  public:
    enum class State
    {
        Up,
        Down,   ///< crashed; nothing runs, ports are dark
        Frozen, ///< OS hung; NIC hardware alive, nothing executes
    };

    Node(sim::Simulation &s, sim::NodeId id, net::Network &intra_net,
         net::PortId intra_port, net::Network &client_net,
         net::PortId client_port, NodeConfig cfg = {});

    sim::NodeId id() const { return id_; }
    State state() const { return state_; }
    bool up() const { return state_ == State::Up; }
    bool frozen() const { return state_ == State::Frozen; }

    /**
     * Reboot count; a rebooted node is a different "incarnation", which
     * is how TCP peers eventually get RSTs for stale connections.
     */
    std::uint64_t incarnation() const { return incarnation_; }

    Cpu &cpu() { return cpu_; }
    KernelMemory &kernelMem() { return kernelMem_; }
    PinManager &pins() { return pins_; }

    net::Network &intraNet() { return intraNet_; }
    net::PortId intraPort() const { return intraPort_; }
    net::Network &clientNet() { return clientNet_; }
    net::PortId clientPort() const { return clientPort_; }

    sim::Simulation &simulation() { return sim_; }
    const NodeConfig &config() const { return cfg_; }

    /// @name Power and freeze lifecycle (driven by the fault injector)
    /// @{

    /** Hard-reboot fault: power off now, back up after @p downtime. */
    void crash(sim::Tick downtime);

    /** Node-freeze fault: the OS hangs for @p duration. */
    void freeze(sim::Tick duration);

    /** @} */

    /// @name Monitor daemon
    /// @{

    /** Register the supervised service (started on the next boot). */
    void attachService(Service *svc);

    /** Launch the service immediately (initial cluster bring-up). */
    void startServiceNow();

    /** SIGKILL the service; the daemon restarts it (app crash fault). */
    void killService();

    /** SIGSTOP / SIGCONT the service (app hang fault). */
    void stopService();
    void contService();

    /**
     * Called by the service itself when it exits voluntarily.
     * FailFast exits are restarted by the daemon; GaveUp exits wait
     * for the operator.
     */
    void serviceSelfExited(ExitReason reason);

    /** Operator intervention: restart the service with a clean state. */
    void operatorRestartService();

    /** @} */

    /// @name Lifecycle notifications (for protocol stacks)
    /// @{
    void onCrash(std::function<void()> fn) { crashFns_.push_back(fn); }
    void onReboot(std::function<void()> fn) { rebootFns_.push_back(fn); }
    void onFreeze(std::function<void()> fn) { freezeFns_.push_back(fn); }
    void onUnfreeze(std::function<void()> fn) { unfreezeFns_.push_back(fn); }
    /** @} */

    /**
     * Snapshot state: lifecycle plus the owned CPU/memory managers.
     * The attached service and lifecycle callbacks are wiring, saved
     * by their own components (press::Server) or not mutable at all.
     */
    struct Saved
    {
        State state;
        std::uint64_t incarnation;
        bool restartPending;
        Cpu::Saved cpu;
        KernelMemory::Saved kernelMem;
        PinManager::Saved pins;
    };

    Saved
    save() const
    {
        return Saved{state_,           incarnation_,     restartPending_,
                     cpu_.save(),      kernelMem_.save(), pins_.save()};
    }

    void
    restore(const Saved &s)
    {
        state_ = s.state;
        incarnation_ = s.incarnation;
        restartPending_ = s.restartPending;
        cpu_.restore(s.cpu);
        kernelMem_.restore(s.kernelMem);
        pins_.restore(s.pins);
    }

  private:
    void setPorts(bool up);
    void reboot();

    sim::Simulation &sim_;
    sim::NodeId id_;
    net::Network &intraNet_;
    net::PortId intraPort_;
    net::Network &clientNet_;
    net::PortId clientPort_;
    NodeConfig cfg_;

    State state_ = State::Up;
    std::uint64_t incarnation_ = 1;

    Cpu cpu_;
    KernelMemory kernelMem_;
    PinManager pins_;

    Service *service_ = nullptr;
    bool restartPending_ = false;

    std::vector<std::function<void()>> crashFns_;
    std::vector<std::function<void()>> rebootFns_;
    std::vector<std::function<void()>> freezeFns_;
    std::vector<std::function<void()>> unfreezeFns_;
};

} // namespace performa::osim

#endif // PERFORMA_OS_NODE_HH
