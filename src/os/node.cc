#include "os/node.hh"

#include "sim/logging.hh"

namespace performa::osim {

Node::Node(sim::Simulation &s, sim::NodeId id, net::Network &intra_net,
           net::PortId intra_port, net::Network &client_net,
           net::PortId client_port, NodeConfig cfg)
    : sim_(s), id_(id), intraNet_(intra_net), intraPort_(intra_port),
      clientNet_(client_net), clientPort_(client_port), cfg_(cfg),
      cpu_(s), kernelMem_(cfg.kernelMemBytes), pins_(cfg.pinLimitBytes)
{
}

void
Node::setPorts(bool up)
{
    intraNet_.setPortUp(intraPort_, up);
    clientNet_.setPortUp(clientPort_, up);
}

void
Node::crash(sim::Tick downtime)
{
    if (state_ == State::Down)
        return;
    sim::Trace::log(sim_.now(), "node", "node ", id_, " crashed (down ",
                    sim::toSeconds(downtime), "s)");
    if (state_ == State::Frozen) {
        // Crashing while frozen: the pending unfreeze event will see
        // the node rebooted and do nothing, so undo the freeze's CPU
        // pause here or it would leak past the reboot.
        cpu_.resume();
    }
    state_ = State::Down;
    setPorts(false);
    cpu_.clear();
    cpu_.pause(); // nothing executes while down
    kernelMem_.reset();
    pins_.reset();
    if (service_ && service_->alive())
        service_->terminate(/*silent=*/true);
    for (auto &fn : crashFns_)
        fn();
    sim_.scheduleIn(downtime, [this] { reboot(); });
}

void
Node::reboot()
{
    sim::Trace::log(sim_.now(), "node", "node ", id_, " rebooted");
    ++incarnation_;
    state_ = State::Up;
    setPorts(true);
    cpu_.resume();
    for (auto &fn : rebootFns_)
        fn();
    // Mendosus starts another PRESS process automatically after boot.
    if (service_) {
        sim_.scheduleIn(cfg_.serviceStartDelay, [this] {
            if (state_ == State::Up && service_ && !service_->alive())
                service_->start();
        });
    }
}

void
Node::freeze(sim::Tick duration)
{
    if (state_ != State::Up)
        return;
    sim::Trace::log(sim_.now(), "node", "node ", id_, " froze (",
                    sim::toSeconds(duration), "s)");
    state_ = State::Frozen;
    cpu_.pause();
    for (auto &fn : freezeFns_)
        fn();
    sim_.scheduleIn(duration, [this] {
        if (state_ != State::Frozen)
            return; // crashed while frozen
        state_ = State::Up;
        cpu_.resume();
        sim::Trace::log(sim_.now(), "node", "node ", id_, " unfroze");
        for (auto &fn : unfreezeFns_)
            fn();
    });
}

void
Node::attachService(Service *svc)
{
    service_ = svc;
}

void
Node::startServiceNow()
{
    if (!service_)
        PANIC("node ", id_, " has no attached service");
    if (!service_->alive())
        service_->start();
}

void
Node::killService()
{
    if (!service_ || !service_->alive() || state_ == State::Down)
        return;
    service_->terminate(/*silent=*/false);
    // The daemon notices the death and restarts the process.
    if (!restartPending_) {
        restartPending_ = true;
        sim_.scheduleIn(cfg_.serviceRestartDelay, [this] {
            restartPending_ = false;
            if (state_ == State::Up && service_ && !service_->alive())
                service_->start();
        });
    }
}

void
Node::stopService()
{
    if (service_ && service_->alive() && state_ != State::Down)
        service_->sigStop();
}

void
Node::contService()
{
    if (service_ && service_->alive() && state_ != State::Down)
        service_->sigCont();
}

void
Node::serviceSelfExited(ExitReason reason)
{
    if (reason == ExitReason::GaveUp) {
        sim::Trace::log(sim_.now(), "daemon", "node ", id_,
                        " service gave up; waiting for operator");
        return; // availability cost: needs operator intervention
    }
    if (reason == ExitReason::FailFast && !restartPending_) {
        restartPending_ = true;
        sim_.scheduleIn(cfg_.serviceRestartDelay, [this] {
            restartPending_ = false;
            if (state_ == State::Up && service_ && !service_->alive())
                service_->start();
        });
    }
}

void
Node::operatorRestartService()
{
    if (state_ != State::Up || !service_)
        return;
    if (service_->alive())
        service_->terminate(/*silent=*/false);
    service_->start();
}

} // namespace performa::osim
