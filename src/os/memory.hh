/**
 * @file
 * Per-node memory managers targeted by the resource-exhaustion faults
 * of the paper (Table 2):
 *
 *  - KernelMemory models the kernel allocator that hands out skbufs
 *    for TCP; the fault injector can force allocations to fail, which
 *    stalls outbound TCP traffic and drops inbound segments.
 *  - PinManager models the pinnable-physical-page budget consumed by
 *    VIA memory registration; the injector can lower the threshold,
 *    which makes further pin requests fail (exactly how the authors
 *    patched the cLAN driver).
 */

#ifndef PERFORMA_OS_MEMORY_HH
#define PERFORMA_OS_MEMORY_HH

#include <cstdint>

namespace performa::osim {

/**
 * The kernel page/skbuf allocator for one node.
 */
class KernelMemory
{
  public:
    explicit KernelMemory(std::uint64_t capacity_bytes)
        : capacity_(capacity_bytes)
    {}

    /**
     * Try to allocate @p bytes of kernel memory.
     * @return false when the injected fault is active or the pool is
     * exhausted.
     */
    bool
    alloc(std::uint64_t bytes)
    {
        if (failInjected_ || used_ + bytes > capacity_)
            return false;
        used_ += bytes;
        return true;
    }

    /** Release @p bytes back to the pool. */
    void
    free(std::uint64_t bytes)
    {
        used_ = bytes > used_ ? 0 : used_ - bytes;
    }

    /** Force all further allocations to fail (fault injection). */
    void setFailInjected(bool on) { failInjected_ = on; }
    bool failInjected() const { return failInjected_; }

    std::uint64_t used() const { return used_; }
    std::uint64_t capacity() const { return capacity_; }

    /** Node reboot: empty the pool and clear injected faults. */
    void
    reset()
    {
        used_ = 0;
        failInjected_ = false;
    }

    /** Snapshot state (capacity is configuration). */
    struct Saved
    {
        std::uint64_t used;
        bool failInjected;
    };

    Saved save() const { return Saved{used_, failInjected_}; }

    void
    restore(const Saved &s)
    {
        used_ = s.used;
        failInjected_ = s.failInjected;
    }

  private:
    std::uint64_t capacity_;
    std::uint64_t used_ = 0;
    bool failInjected_ = false;
};

/**
 * The pinnable-page accountant for one node. Linux 2.2-era kernels
 * limited pinned pages to a fraction of physical memory; VIA memory
 * registration pins pages, so VIA-PRESS-5's dynamic cache pinning can
 * run into this limit.
 */
class PinManager
{
  public:
    explicit PinManager(std::uint64_t limit_bytes) : limit_(limit_bytes) {}

    /**
     * Try to pin @p bytes.
     * @return false when the (possibly fault-lowered) limit would be
     * exceeded.
     */
    bool
    pin(std::uint64_t bytes)
    {
        if (pinned_ + bytes > effectiveLimit())
            return false;
        pinned_ += bytes;
        return true;
    }

    /** Unpin @p bytes. */
    void
    unpin(std::uint64_t bytes)
    {
        pinned_ = bytes > pinned_ ? 0 : pinned_ - bytes;
    }

    /**
     * Fault injection: clamp the limit to @p bytes (the modified cLAN
     * driver's adjustable threshold). Pass ~0 to restore.
     */
    void setInjectedLimit(std::uint64_t bytes) { injectedLimit_ = bytes; }

    std::uint64_t
    effectiveLimit() const
    {
        return injectedLimit_ < limit_ ? injectedLimit_ : limit_;
    }

    std::uint64_t pinned() const { return pinned_; }
    std::uint64_t limit() const { return limit_; }

    /** Node reboot. */
    void
    reset()
    {
        pinned_ = 0;
        injectedLimit_ = ~std::uint64_t(0);
    }

    /** Snapshot state (the configured limit is not mutable). */
    struct Saved
    {
        std::uint64_t pinned;
        std::uint64_t injectedLimit;
    };

    Saved save() const { return Saved{pinned_, injectedLimit_}; }

    void
    restore(const Saved &s)
    {
        pinned_ = s.pinned;
        injectedLimit_ = s.injectedLimit;
    }

  private:
    std::uint64_t limit_;
    std::uint64_t pinned_ = 0;
    std::uint64_t injectedLimit_ = ~std::uint64_t(0);
};

} // namespace performa::osim

#endif // PERFORMA_OS_MEMORY_HH
