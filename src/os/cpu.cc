#include "os/cpu.hh"

#include <utility>

namespace performa::osim {

void
Cpu::exec(sim::Tick cost, std::function<void()> done)
{
    queue_.push_back(Item{cost, std::move(done)});
    maybeStart();
}

void
Cpu::pause()
{
    ++pauseCount_;
}

void
Cpu::resume()
{
    if (pauseCount_ > 0)
        --pauseCount_;
    maybeStart();
}

void
Cpu::clear()
{
    queue_.clear();
    ++generation_; // orphan any in-flight completion
    running_ = false;
}

void
Cpu::maybeStart()
{
    if (running_ || pauseCount_ > 0 || queue_.empty())
        return;
    running_ = true;
    Item item = std::move(queue_.front());
    queue_.pop_front();
    std::uint64_t gen = generation_;
    sim_.scheduleIn(item.cost,
        [this, gen, cost = item.cost, done = std::move(item.done)] {
            if (gen != generation_)
                return; // cleared (node crashed) while in flight
            busyTime_ += cost;
            running_ = false;
            done();
            maybeStart();
        });
}

} // namespace performa::osim
