#include "os/cpu.hh"

#include <utility>

namespace performa::osim {

void
Cpu::exec(sim::Tick cost, sim::SmallFn done)
{
    queue_.push_back(Item{cost, std::move(done)});
    maybeStart();
}

void
Cpu::pause()
{
    ++pauseCount_;
}

void
Cpu::resume()
{
    if (pauseCount_ > 0)
        --pauseCount_;
    maybeStart();
}

void
Cpu::clear()
{
    queue_.clear();
    ++generation_; // orphan any in-flight completion
    inflight_.done.reset();
    running_ = false;
}

Cpu::Saved
Cpu::save() const
{
    Saved s;
    s.queue = queue_.clone(
        [](const Item &it) { return Item{it.cost, it.done.clone()}; });
    s.inflight = Item{inflight_.cost, inflight_.done.clone()};
    s.running = running_;
    s.pauseCount = pauseCount_;
    s.generation = generation_;
    s.busyTime = busyTime_;
    return s;
}

void
Cpu::restore(const Saved &s)
{
    queue_ = s.queue.clone(
        [](const Item &it) { return Item{it.cost, it.done.clone()}; });
    inflight_ = Item{s.inflight.cost, s.inflight.done.clone()};
    running_ = s.running;
    pauseCount_ = s.pauseCount;
    generation_ = s.generation;
    busyTime_ = s.busyTime;
}

void
Cpu::maybeStart()
{
    if (running_ || pauseCount_ > 0 || queue_.empty())
        return;
    running_ = true;
    inflight_ = std::move(queue_.front());
    queue_.pop_front();
    std::uint64_t gen = generation_;
    // The item itself parks in inflight_, so the completion event
    // captures only {this, gen} and always stays in SmallFn's inline
    // buffer.
    sim_.scheduleIn(inflight_.cost, [this, gen] {
        if (gen != generation_)
            return; // cleared (node crashed) while in flight
        busyTime_ += inflight_.cost;
        running_ = false;
        // Move out before invoking: the completion may call exec(),
        // which starts the next item and overwrites inflight_.
        sim::SmallFn done = std::move(inflight_.done);
        done();
        maybeStart();
    });
}

} // namespace performa::osim
