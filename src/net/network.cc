#include "net/network.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace performa::net {

Network::Network(sim::Simulation &s, NetworkConfig cfg)
    : sim_(s), cfg_(cfg)
{
}

PortId
Network::addPort()
{
    ports_.emplace_back();
    return static_cast<PortId>(ports_.size() - 1);
}

void
Network::setHandler(PortId port, Handler h)
{
    ports_.at(port).handler = std::move(h);
}

void
Network::setPortUp(PortId port, bool up)
{
    ports_.at(port).up = up;
}

void
Network::setLinkUp(PortId port, bool up)
{
    ports_.at(port).linkUp = up;
}

void
Network::setSwitchUp(bool up)
{
    switchUp_ = up;
}

sim::Tick
Network::txTime(std::uint64_t bytes) const
{
    // Ceiling, not floor: a partially-filled final microsecond still
    // occupies the wire, and flooring would undercharge every size that
    // is not a multiple of bytesPerUsec.
    double us = static_cast<double>(bytes) / cfg_.bytesPerUsec;
    sim::Tick t = static_cast<sim::Tick>(us);
    if (static_cast<double>(t) < us)
        ++t;
    return t == 0 ? 1 : t;
}

std::uint32_t
Network::acquireSlot()
{
    if (freeHead_ != noSlot) {
        std::uint32_t slot = freeHead_;
        freeHead_ = inflight_[slot].next;
        return slot;
    }
    inflight_.emplace_back();
    return static_cast<std::uint32_t>(inflight_.size() - 1);
}

void
Network::send(Frame &&frame, Outcome outcome)
{
    Port &src = ports_.at(frame.srcPort);
    Port &dst = ports_.at(frame.dstPort);

    sim::Tick now = sim_.now();
    bool path_ok = src.up && src.linkUp && switchUp_ && dst.linkUp &&
                   dst.up;

    if (!path_ok) {
        ++dropped_;
        // Charge the sender's NIC with the first down component,
        // checking hosts before links before the switch.
        if (!src.up || !dst.up)
            ++src.stats.dropPortDown;
        else if (!src.linkUp || !dst.linkUp)
            ++src.stats.dropLinkDown;
        else
            ++src.stats.dropSwitchDown;
        if (outcome) {
            // Hardware-ack timeout: the sender-side NIC learns of the
            // loss after a short round-trip-scale delay. Park only the
            // callback; the event captures {this, slot}.
            sim::Tick when = now + 2 * cfg_.linkLatency +
                             cfg_.switchLatency + sim::usec(20);
            std::uint32_t slot = acquireSlot();
            InFlight &rec = inflight_[slot];
            rec.outcome = std::move(outcome);
            rec.deliver = false;
            sim_.schedule(when, [this, slot] { fireInFlight(slot); });
        }
        return;
    }

    src.stats.framesSent++;
    src.stats.bytesSent += frame.bytes;

    // Uplink serialization, store-and-forward, downlink serialization.
    sim::Tick ser = txTime(frame.bytes);
    sim::Tick tx_start = std::max(now, src.txBusyUntil);
    sim::Tick tx_done = tx_start + ser;
    src.txBusyUntil = tx_done;

    sim::Tick at_switch = tx_done + cfg_.linkLatency + cfg_.switchLatency;
    sim::Tick rx_start = std::max(at_switch, dst.rxBusyUntil);
    sim::Tick rx_done = rx_start + ser + cfg_.linkLatency;
    dst.rxBusyUntil = rx_done;

    std::uint32_t slot = acquireSlot();
    InFlight &rec = inflight_[slot];
    rec.frame = std::move(frame);
    rec.outcome = std::move(outcome);
    rec.deliver = true;
    sim_.schedule(rx_done, [this, slot] { fireInFlight(slot); });
}

Network::Saved
Network::save() const
{
    Saved s;
    s.ports.reserve(ports_.size());
    for (const Port &p : ports_)
        s.ports.push_back(Saved::PortState{p.up, p.linkUp, p.txBusyUntil,
                                           p.rxBusyUntil, p.stats});
    s.switchUp = switchUp_;
    s.dropped = dropped_;
    s.delivered = delivered_;
    s.inflight = inflight_;
    s.freeHead = freeHead_;
    return s;
}

void
Network::restore(const Saved &s)
{
    if (s.ports.size() != ports_.size())
        PANIC("network restore with a different port count");
    for (std::size_t i = 0; i < ports_.size(); ++i) {
        Port &p = ports_[i];
        const Saved::PortState &ps = s.ports[i];
        p.up = ps.up;
        p.linkUp = ps.linkUp;
        p.txBusyUntil = ps.txBusyUntil;
        p.rxBusyUntil = ps.rxBusyUntil;
        p.stats = ps.stats;
    }
    switchUp_ = s.switchUp;
    dropped_ = s.dropped;
    delivered_ = s.delivered;
    inflight_ = s.inflight;
    freeHead_ = s.freeHead;
}

void
Network::fireInFlight(std::uint32_t slot)
{
    // Move the record's contents out and release the slot *first*: the
    // handler below may send more frames, which can grow inflight_ and
    // invalidate the reference (and should be able to reuse the slot).
    Frame f = std::move(inflight_[slot].frame);
    Outcome cb = std::move(inflight_[slot].outcome);
    bool deliver = inflight_[slot].deliver;
    inflight_[slot].next = freeHead_;
    freeHead_ = slot;

    if (!deliver) {
        // Parked hardware-ack drop notification.
        cb(false);
        return;
    }

    Port &d = ports_.at(f.dstPort);
    // Re-check the receiving side: components that died while the
    // frame was in flight still cause a loss.
    if (!d.up || !d.linkUp || !switchUp_) {
        ++dropped_;
        ++ports_.at(f.srcPort).stats.dropDiedInFlight;
        if (cb)
            cb(false);
        return;
    }
    ++delivered_;
    d.stats.framesReceived++;
    d.stats.bytesReceived += f.bytes;
    if (d.handler)
        d.handler(std::move(f));
    if (cb)
        cb(true);
}

} // namespace performa::net
