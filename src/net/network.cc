#include "net/network.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace performa::net {

Network::Network(sim::Simulation &s, NetworkConfig cfg)
    : sim_(s), cfg_(cfg)
{
}

PortId
Network::addPort()
{
    ports_.emplace_back();
    return static_cast<PortId>(ports_.size() - 1);
}

void
Network::setHandler(PortId port, Handler h)
{
    ports_.at(port).handler = std::move(h);
}

void
Network::setPortUp(PortId port, bool up)
{
    ports_.at(port).up = up;
}

void
Network::setLinkUp(PortId port, bool up)
{
    ports_.at(port).linkUp = up;
}

void
Network::setSwitchUp(bool up)
{
    switchUp_ = up;
}

sim::Tick
Network::txTime(std::uint64_t bytes) const
{
    double us = static_cast<double>(bytes) / cfg_.bytesPerUsec;
    sim::Tick t = static_cast<sim::Tick>(us);
    return t == 0 ? 1 : t;
}

void
Network::send(Frame &&frame, Outcome outcome)
{
    Port &src = ports_.at(frame.srcPort);
    Port &dst = ports_.at(frame.dstPort);

    sim::Tick now = sim_.now();
    bool path_ok = src.up && src.linkUp && switchUp_ && dst.linkUp &&
                   dst.up;

    if (!path_ok) {
        ++dropped_;
        if (outcome) {
            // Hardware-ack timeout: the sender-side NIC learns of the
            // loss after a short round-trip-scale delay.
            sim::Tick when = now + 2 * cfg_.linkLatency +
                             cfg_.switchLatency + sim::usec(20);
            sim_.schedule(when,
                          [cb = std::move(outcome)] { cb(false); });
        }
        return;
    }

    // Uplink serialization, store-and-forward, downlink serialization.
    sim::Tick ser = txTime(frame.bytes);
    sim::Tick tx_start = std::max(now, src.txBusyUntil);
    sim::Tick tx_done = tx_start + ser;
    src.txBusyUntil = tx_done;

    sim::Tick at_switch = tx_done + cfg_.linkLatency + cfg_.switchLatency;
    sim::Tick rx_start = std::max(at_switch, dst.rxBusyUntil);
    sim::Tick rx_done = rx_start + ser + cfg_.linkLatency;
    dst.rxBusyUntil = rx_done;

    PortId dst_port = frame.dstPort;
    sim_.schedule(rx_done,
        [this, dst_port, f = std::move(frame),
         cb = std::move(outcome)]() mutable {
            Port &d = ports_.at(dst_port);
            // Re-check the receiving side: components that died while
            // the frame was in flight still cause a loss.
            if (!d.up || !d.linkUp || !switchUp_) {
                ++dropped_;
                if (cb)
                    cb(false);
                return;
            }
            ++delivered_;
            if (d.handler)
                d.handler(std::move(f));
            if (cb)
                cb(true);
        });
}

} // namespace performa::net
