/**
 * @file
 * The unit of transfer on the simulated fabric. Protocol stacks wrap
 * application messages into frames; the network only looks at sizes
 * and endpoints.
 */

#ifndef PERFORMA_NET_FRAME_HH
#define PERFORMA_NET_FRAME_HH

#include <cstdint>

#include "sim/pool.hh"
#include "sim/types.hh"

namespace performa::net {

/** Which stack a delivered frame should be demultiplexed to. */
enum class Proto : std::uint8_t
{
    Tcp,      ///< reliable byte-stream segments
    Datagram, ///< unreliable datagrams (heartbeats)
    Via,      ///< VIA send/receive and RDMA packets
    Client,   ///< client-server HTTP traffic (ideal network)
};

/**
 * One frame in flight. @c payload is a type-erased pooled handle to
 * whatever the sending stack attached (an application message, a
 * descriptor, ...); the receiving stack knows the concrete type from
 * @c kind. Copying/retransmitting a frame only bumps the payload
 * refcount — payload blocks live in the Simulation's PayloadPool.
 */
struct Frame
{
    std::uint32_t srcPort = 0;  ///< sending network port
    std::uint32_t dstPort = 0;  ///< receiving network port
    Proto proto = Proto::Tcp;   ///< demux target on the receiver
    std::uint32_t kind = 0;     ///< stack-private frame type
    std::uint64_t conn = 0;     ///< stack-private channel identifier
    std::uint64_t bytes = 0;    ///< wire size, drives serialization
    std::uint64_t seq = 0;      ///< stack-private sequence number
    bool corrupted = false;     ///< payload bytes are garbage
    sim::RcAny payload;         ///< type-erased pooled content
};

} // namespace performa::net

#endif // PERFORMA_NET_FRAME_HH
