/**
 * @file
 * A star-topology network: every port hangs off one central switch via
 * a full-duplex link. This is the shape of the paper's testbed (a
 * Giganet cLAN switch connecting four server nodes and the client
 * machines).
 *
 * Fault hooks: each port's link can be cut, the switch can be taken
 * down, and each port (i.e. its host node) can be powered off. Frames
 * that meet a down component are dropped; the sender may register an
 * outcome callback, which models NIC-level (hardware) acknowledgement
 * for SAN-style fabrics. Stacks that should not get free drop
 * information (TCP) simply ignore the callback and run their own
 * timers.
 *
 * Hot-path design (§2.2 of DESIGN.md): an accepted frame is parked in
 * a slab of reusable in-flight records and the delivery event
 * captures only {network, slot} — a 16-byte POD that always fits
 * SmallFn's inline buffer, so a frame hop performs no allocation once
 * the slab has warmed up (the same trick osim::Cpu uses for its
 * completion events).
 */

#ifndef PERFORMA_NET_NETWORK_HH
#define PERFORMA_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "net/frame.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"

namespace performa::net {

/** Index of a port on a Network. */
using PortId = std::uint32_t;

/**
 * Fabric parameters. Defaults approximate a 1 Gb/s cLAN: ~5 us
 * end-to-end latency and 125 bytes/us of link bandwidth.
 */
struct NetworkConfig
{
    sim::Tick linkLatency = sim::usec(3);   ///< per-link propagation
    sim::Tick switchLatency = sim::usec(1); ///< store-and-forward cost
    double bytesPerUsec = 125.0;            ///< link bandwidth
};

/**
 * Per-port NIC counters. Sent/received count the port's own traffic;
 * the drop counters are charged to the *sending* port (the NIC that
 * failed to get its frame through), broken down by the first down
 * component on the path at transmission time, plus frames that met a
 * component which died while they were in flight.
 */
struct PortStats
{
    std::uint64_t framesSent = 0;     ///< frames accepted onto the wire
    std::uint64_t bytesSent = 0;
    std::uint64_t framesReceived = 0; ///< frames delivered to the handler
    std::uint64_t bytesReceived = 0;
    std::uint64_t dropPortDown = 0;   ///< an endpoint host was down
    std::uint64_t dropLinkDown = 0;   ///< a link to the switch was cut
    std::uint64_t dropSwitchDown = 0; ///< the central switch was down
    std::uint64_t dropDiedInFlight = 0; ///< path died during flight

    std::uint64_t
    drops() const
    {
        return dropPortDown + dropLinkDown + dropSwitchDown +
               dropDiedInFlight;
    }
};

/**
 * The simulated fabric. One instance is used (faultable) for
 * intra-cluster traffic and a second (never faulted) for
 * client-server traffic, mirroring how Mendosus distinguishes the two
 * classes when injecting network faults.
 */
class Network
{
  public:
    using Handler = std::function<void(Frame &&)>;
    using Outcome = std::function<void(bool delivered)>;

    Network(sim::Simulation &s, NetworkConfig cfg = {});

    /** Add a port; returns its id (sequential from 0). */
    PortId addPort();

    /** Install the delivery handler for @p port. */
    void setHandler(PortId port, Handler h);

    /** Power a port's host up or down (node crash / reboot). */
    void setPortUp(PortId port, bool up);

    /** Cut or restore the link between @p port and the switch. */
    void setLinkUp(PortId port, bool up);

    /** Take the central switch down or bring it back. */
    void setSwitchUp(bool up);

    bool portUp(PortId port) const { return ports_.at(port).up; }
    bool linkUp(PortId port) const { return ports_.at(port).linkUp; }
    bool switchUp() const { return switchUp_; }

    /**
     * Inject @p frame from @p frame.srcPort toward @p frame.dstPort.
     *
     * The frame's fate is decided from the component states along the
     * path at transmission time; @p outcome (if any) fires with
     * delivered=true at delivery or delivered=false shortly after the
     * drop (hardware-ack timeout).
     */
    void send(Frame &&frame, Outcome outcome = {});

    /** Frames dropped so far (for tests and stats). */
    std::uint64_t dropped() const { return dropped_; }

    /** Frames delivered so far. */
    std::uint64_t delivered() const { return delivered_; }

    /** NIC counters for @p port. */
    const PortStats &portStats(PortId port) const
    {
        return ports_.at(port).stats;
    }

    /** Number of ports (for stats iteration). */
    std::size_t numPorts() const { return ports_.size(); }

    /**
     * Snapshot state: per-port fault/serialization/counter state, the
     * fabric-wide flags and counters, and the in-flight slab (frames
     * copy by payload-refcount bump). Port handlers are configuration
     * wired at construction and are not part of the saved state; the
     * in-flight slab is restored slot for slot so pending delivery
     * events (which capture {this, slot}) find their frames again.
     */
    struct Saved;

    Saved save() const;
    void restore(const Saved &s);

  private:
    struct Port
    {
        bool up = true;
        bool linkUp = true;
        sim::Tick txBusyUntil = 0; ///< uplink serialization horizon
        sim::Tick rxBusyUntil = 0; ///< downlink serialization horizon
        Handler handler;
        PortStats stats;
    };

    /**
     * A frame (or drop notification) between transmission and its
     * delivery event. Slab-pooled; the scheduled event captures only
     * {this, slot}.
     */
    struct InFlight
    {
        Frame frame;
        Outcome outcome;
        std::uint32_t next = 0; ///< free-list link while unused
        bool deliver = false;   ///< false: hardware-ack drop report
    };

    static constexpr std::uint32_t noSlot = ~std::uint32_t(0);

    /** Serialization delay for @p bytes on one link. */
    sim::Tick txTime(std::uint64_t bytes) const;

    /** Take a free in-flight record (growing the slab if needed). */
    std::uint32_t acquireSlot();

    /** The delivery/drop event for the record in @p slot fired. */
    void fireInFlight(std::uint32_t slot);

    sim::Simulation &sim_;
    NetworkConfig cfg_;
    std::vector<Port> ports_;
    bool switchUp_ = true;
    std::uint64_t dropped_ = 0;
    std::uint64_t delivered_ = 0;
    std::vector<InFlight> inflight_;
    std::uint32_t freeHead_ = noSlot;
};

struct Network::Saved
{
    /** Mutable half of a Port (the handler stays wired in place). */
    struct PortState
    {
        bool up;
        bool linkUp;
        sim::Tick txBusyUntil;
        sim::Tick rxBusyUntil;
        PortStats stats;
    };

    std::vector<PortState> ports;
    bool switchUp;
    std::uint64_t dropped;
    std::uint64_t delivered;
    std::vector<InFlight> inflight;
    std::uint32_t freeHead;
};

} // namespace performa::net

#endif // PERFORMA_NET_NETWORK_HH
