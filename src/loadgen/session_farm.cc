#include "loadgen/session_farm.hh"

#include <random>

#include "press/messages.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace performa::loadgen {

namespace {

/** Population that offers roughly the configured open-loop rate:
 *  each user contributes ~1/(think + a nominal response) req/s. */
std::size_t
derivedSessionCount(const WorkloadConfig &cfg,
                    const LoadProfileSpec &profile)
{
    double think_s = sim::toSeconds(profile.meanThink);
    double per_user = 1.0 / (think_s + 0.05);
    double n = cfg.requestRate * profile.rateScale / per_user;
    return n < 1.0 ? 1 : static_cast<std::size_t>(n);
}

} // namespace

SessionFarm::SessionFarm(sim::Simulation &s, net::Network &client_net,
                         std::vector<net::PortId> server_ports,
                         std::vector<net::PortId> client_ports,
                         WorkloadConfig cfg, LoadProfileSpec profile)
    : sim_(s), net_(client_net), serverPorts_(std::move(server_ports)),
      clientPorts_(std::move(client_ports)), cfg_(cfg),
      profile_(std::move(profile)),
      rng_(s.splitRng(kLoadgenRngSalt)),
      zipf_(cfg.numFiles, cfg.zipfAlpha),
      timeline_({.sliceWidth = sim::sec(1),
                 .reserveSlices = profile_.reserveSlices})
{
    if (serverPorts_.empty() || clientPorts_.empty())
        FATAL("SessionFarm needs at least one server and client port");
    std::size_t n = profile_.sessionCount
                        ? profile_.sessionCount
                        : derivedSessionCount(cfg_, profile_);
    sessions_.resize(n);
    served_.reserve(profile_.reserveSlices);
    failed_.reserve(profile_.reserveSlices);
    offered_.reserve(profile_.reserveSlices);
    for (net::PortId p : clientPorts_) {
        net_.setHandler(p,
            [this](net::Frame &&f) { onResponse(std::move(f)); });
    }
}

void
SessionFarm::start()
{
    if (running_)
        return;
    running_ = true;
    ++generation_;
    for (std::size_t i = 0; i < sessions_.size(); ++i)
        beginSession(i);
}

void
SessionFarm::stop()
{
    running_ = false;
    ++generation_;
    // Abandon in-flight requests: their seq bump makes late responses
    // and pending expiries no-ops.
    for (auto &sess : sessions_) {
        if (sess.inFlight) {
            sim_.events().cancel(sess.expiry);
            sess.inFlight = false;
            ++sess.seq;
        }
    }
}

void
SessionFarm::beginSession(std::size_t idx)
{
    Session &sess = sessions_[idx];
    // A fresh user: new connection to the next server (round-robin
    // DNS), a geometrically distributed number of requests.
    sess.server = rrServer_;
    rrServer_ = (rrServer_ + 1) % serverPorts_.size();
    double mean = profile_.meanRequestsPerSession;
    if (mean < 1.0)
        mean = 1.0;
    sess.remaining =
        1 + std::geometric_distribution<std::uint32_t>(1.0 / mean)(
                rng_.engine());
    sess.firstRequest = true;
    sess.inFlight = false;
    think(idx);
}

void
SessionFarm::think(std::size_t idx)
{
    std::uint64_t gen = generation_;
    sim_.scheduleIn(rng_.exponential(profile_.meanThink),
                    [this, idx, gen] {
                        if (gen == generation_ && running_)
                            sendRequest(idx);
                    });
}

void
SessionFarm::sendRequest(std::size_t idx)
{
    Session &sess = sessions_[idx];
    sess.sentAt = sim_.now();
    sess.inFlight = true;
    ++sess.seq;

    sim::FileId file = static_cast<sim::FileId>(zipf_.sample(rng_));
    net::PortId client = clientPorts_[idx % clientPorts_.size()];

    ++totalOffered_;
    offered_.record(sim_.now());

    auto body = sim_.makePayload<press::ClientRequestBody>();
    body->req = encodeReq(idx, sess.seq);
    body->file = file;
    body->replyPort = client;
    body->sentAt = sim_.now();

    net::Frame f;
    f.srcPort = client;
    f.dstPort = serverPorts_[sess.server];
    f.proto = net::Proto::Client;
    f.kind = press::ClientRequest;
    f.bytes = cfg_.requestBytes;
    f.payload = std::move(body);
    net_.send(std::move(f));

    // First request on a connection pays the connect timeout; later
    // ones reuse the connection and get the request timeout.
    sim::Tick deadline = sess.firstRequest
                             ? cfg_.connectTimeout
                             : cfg_.requestTimeout;
    std::uint32_t seq = sess.seq;
    sess.expiry = sim_.scheduleIn(
        deadline, [this, idx, seq] { expire(idx, seq); });
}

void
SessionFarm::onResponse(net::Frame &&f)
{
    if (f.kind != press::ClientResponse || !f.payload)
        return;
    auto *body = f.payload.get<press::ClientResponseBody>();
    std::size_t idx = static_cast<std::size_t>(body->req >> 32);
    if (idx == 0 || idx > sessions_.size())
        return;
    Session &sess = sessions_[idx - 1];
    std::uint32_t seq = static_cast<std::uint32_t>(body->req);
    if (!sess.inFlight || sess.seq != seq)
        return; // timed out (or from a previous session); drop

    sim_.events().cancel(sess.expiry);
    sess.inFlight = false;

    recordResponseLatency(timeline_, sim_.now(), *body,
                          sess.firstRequest);
    sess.firstRequest = false;
    ++totalServed_;
    served_.record(sim_.now());

    if (--sess.remaining == 0) {
        ++completedSessions_;
        if (running_)
            beginSession(idx - 1);
        return;
    }
    if (running_)
        think(idx - 1);
}

void
SessionFarm::expire(std::size_t idx, std::uint32_t seq)
{
    Session &sess = sessions_[idx];
    if (!sess.inFlight || sess.seq != seq)
        return; // answered in time
    sess.inFlight = false;
    ++totalFailed_;
    failed_.record(sim_.now());
    // The user gives up on this server: drop the connection and
    // reconnect (next session picks the next server round-robin).
    ++completedSessions_;
    if (running_)
        beginSession(idx);
}

SessionFarm::Saved
SessionFarm::save() const
{
    Saved s;
    s.rng = rng_;
    s.running = running_;
    s.generation = generation_;
    s.rrServer = rrServer_;
    s.sessions = sessions_;
    s.served = served_;
    s.failed = failed_;
    s.offered = offered_;
    s.timeline = timeline_;
    s.totalServed = totalServed_;
    s.totalFailed = totalFailed_;
    s.totalOffered = totalOffered_;
    s.completedSessions = completedSessions_;
    return s;
}

void
SessionFarm::restore(const Saved &s)
{
    rng_ = s.rng;
    running_ = s.running;
    generation_ = s.generation;
    rrServer_ = s.rrServer;
    sessions_ = s.sessions;
    served_ = s.served;
    failed_ = s.failed;
    offered_ = s.offered;
    timeline_ = s.timeline;
    totalServed_ = s.totalServed;
    totalFailed_ = s.totalFailed;
    totalOffered_ = s.totalOffered;
    completedSessions_ = s.completedSessions;
    // Re-reserve series capacity lost by the copy so steady-state
    // recording stays allocation-free after a fork.
    served_.reserve(profile_.reserveSlices);
    failed_.reserve(profile_.reserveSlices);
    offered_.reserve(profile_.reserveSlices);
}

void
SessionFarm::registerWith(sim::SnapshotRegistry &reg)
{
    reg.attach(*this);
}

} // namespace performa::loadgen
