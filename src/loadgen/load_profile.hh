/**
 * @file
 * Load profiles: named workload shapes layered on top of the paper's
 * flat open-loop Poisson/Zipf client population.
 *
 * A profile can (a) switch the generator to session-based closed-loop
 * clients with think times and connection reuse, (b) modulate the
 * offered rate over time (diurnal curves, flash-crowd bursts), and
 * (c) replace the uniform file size with a heavy-tailed (Pareto)
 * distribution. Everything a profile randomizes draws from a split
 * RNG stream (sim::Simulation::splitRng), so enabling a profile never
 * perturbs the draw sequence of the default workload — the behaviour
 * database's byte-identity contract survives the new subsystem.
 */

#ifndef PERFORMA_LOADGEN_LOAD_PROFILE_HH
#define PERFORMA_LOADGEN_LOAD_PROFILE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sim/types.hh"

namespace performa::loadgen {

/** One traffic burst: ramp to peak, hold, ramp back down. */
struct FlashCrowd
{
    sim::Tick at = 0;   ///< burst start
    sim::Tick ramp = 0; ///< linear ramp up (and down) duration
    sim::Tick hold = 0; ///< time at peak
    double peak = 1.0;  ///< rate multiplier at the top

    bool enabled() const { return peak > 1.0 && ramp + hold > 0; }
};

/** Sinusoidal day/night load curve. */
struct Diurnal
{
    sim::Tick period = 0;
    double amplitude = 0.0; ///< rate swings 1 +/- amplitude

    bool enabled() const { return period > 0 && amplitude > 0.0; }
};

/** Heavy-tailed per-file sizes (Pareto), replacing the flat 8 KB. */
struct ParetoSizes
{
    bool enabled = false;
    double alpha = 1.3; ///< tail index; smaller = heavier
    std::uint64_t meanBytes = 8192;
    std::uint64_t maxBytes = 1u << 20; ///< clip outliers
};

/** A named workload shape. Default-constructed == the paper's load. */
struct LoadProfileSpec
{
    std::string name = "steady";

    /** Closed-loop session clients instead of the open-loop farm. */
    bool sessions = false;
    /** Session population; 0 = derive from the configured open-loop
     *  rate so the offered load stays comparable. */
    std::size_t sessionCount = 0;
    sim::Tick meanThink = sim::msec(250);
    double meanRequestsPerSession = 25.0;

    /** Base multiplier on the configured open-loop rate. */
    double rateScale = 1.0;

    FlashCrowd flash;
    Diurnal diurnal;
    ParetoSizes pareto;

    /** Slices to pre-reserve in the latency timeline (zero-alloc
     *  steady state needs the whole run reserved up front). */
    std::size_t reserveSlices = 0;

    /** True when the profile changes nothing about the workload. */
    bool
    isDefault() const
    {
        return !sessions && rateScale == 1.0 && !flash.enabled() &&
               !diurnal.enabled() && !pareto.enabled;
    }
};

/**
 * The built-in profile registry: "steady", "sessions", "pareto",
 * "diurnal", "flashcrowd". Returns nullopt for unknown names.
 */
std::optional<LoadProfileSpec> profileByName(const std::string &name);

/** Offered-rate multiplier of @p spec at simulated time @p t. */
double rateMultiplierAt(const LoadProfileSpec &spec, sim::Tick t);

/**
 * Deterministic per-file Pareto size (a property of the synthetic
 * file set, independent of the run seed). Mean ~= spec.meanBytes for
 * alpha well above 1; clipping at maxBytes pulls it slightly below.
 */
std::uint64_t paretoFileBytes(const ParetoSizes &spec, sim::FileId f);

/** Bind @p spec into a size function for PressConfig::fileSizeFn. */
std::function<std::uint64_t(sim::FileId)>
makeFileSizeFn(const ParetoSizes &spec);

} // namespace performa::loadgen

namespace performa {
/** Legacy alias: the workload subsystem grew into loadgen. */
namespace wl = loadgen;
} // namespace performa

#endif // PERFORMA_LOADGEN_LOAD_PROFILE_HH
