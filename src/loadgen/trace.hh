/**
 * @file
 * Synthetic web-trace generation. The paper drove PRESS with a trace
 * gathered at Rutgers, chosen for its large working set, and then
 * "modified the file set so that all files have the same size (the
 * average size of the original file set)" to keep throughput stable.
 *
 * We have no access to the original trace, so this module builds the
 * equivalent: a synthetic file population with a web-like
 * heavy-tailed size distribution (lognormal body + Pareto tail) and
 * Zipf popularity, plus the same flattening step the authors applied.
 * The flattened set is what the ClientFarm drives.
 */

#ifndef PERFORMA_LOADGEN_TRACE_HH
#define PERFORMA_LOADGEN_TRACE_HH

#include <cstdint>
#include <vector>

#include "press/cluster.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace performa::loadgen {

struct WorkloadConfig;

/** Parameters of the synthetic raw trace. */
struct TraceParams
{
    std::size_t numFiles = 68000;
    double zipfAlpha = 0.8;

    // Web-like size mix (Crovella/Barford-style): lognormal body with
    // a Pareto tail.
    double logMeanBytes = 8.6;  ///< lognormal mu (log of bytes)
    double logSigma = 1.2;      ///< lognormal sigma
    double paretoTailProb = 0.07;
    double paretoAlpha = 1.2;
    std::uint64_t paretoMinBytes = 30000;
    std::uint64_t maxFileBytes = 2u << 20; ///< clip outliers
};

/** The flattened file set the experiments use. */
struct FlatFileSet
{
    std::size_t numFiles = 0;
    std::uint64_t fileBytes = 0;  ///< uniform (the raw mean)
    double zipfAlpha = 0.8;
    std::uint64_t totalBytes() const
    {
        return numFiles * fileBytes;
    }
};

/**
 * A generated raw file population (sizes per file, popularity rank =
 * file id).
 */
class SyntheticTrace
{
  public:
    /** Generate a raw population from @p params. */
    static SyntheticTrace generate(const TraceParams &params,
                                   std::uint64_t seed = 7);

    const std::vector<std::uint64_t> &sizes() const { return sizes_; }
    std::size_t numFiles() const { return sizes_.size(); }
    double zipfAlpha() const { return alpha_; }

    /** Mean file size in bytes (what the flattening uses). */
    double meanBytes() const;

    /** Total population size in bytes (working-set footprint). */
    std::uint64_t totalBytes() const;

    /**
     * The paper's flattening step: same number of files, same
     * popularity skew, every file resized to the raw mean.
     */
    FlatFileSet flatten() const;

  private:
    std::vector<std::uint64_t> sizes_;
    double alpha_ = 0.8;
};

/**
 * Apply a flattened file set consistently to both sides of a
 * deployment: the servers' uniform file size and the clients' file
 * population and popularity skew.
 */
void applyFileSet(const FlatFileSet &fs, press::ClusterConfig &cluster,
                  struct WorkloadConfig &workload);

} // namespace performa::loadgen

namespace performa {
/** Legacy alias: the workload subsystem grew into loadgen. */
namespace wl = loadgen;
} // namespace performa

#endif // PERFORMA_LOADGEN_TRACE_HH
