/**
 * @file
 * Closed-loop client population: a fixed number of users that each
 * issue one request, wait for the response (or the timeout), think
 * for an exponentially distributed pause, and repeat. Complements the
 * paper's open-loop Poisson clients — closed loops self-throttle
 * under server degradation, which changes how faults surface at the
 * client (fewer timeouts, lower offered load) and is the common model
 * for session-oriented traffic.
 */

#ifndef PERFORMA_LOADGEN_CLOSED_LOOP_HH
#define PERFORMA_LOADGEN_CLOSED_LOOP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/time_series.hh"
#include "sim/types.hh"

namespace performa::loadgen {

/** Closed-loop population parameters. */
struct ClosedLoopConfig
{
    std::size_t users = 400;
    sim::Tick meanThinkTime = sim::msec(50);
    std::size_t numFiles = 60000;
    double zipfAlpha = 0.8;
    sim::Tick requestTimeout = sim::sec(6);
    std::uint64_t requestBytes = 300;
};

/**
 * Drives the cluster with a fixed user population. Users pick servers
 * round-robin per request (round-robin DNS), like the open-loop farm.
 */
class ClosedLoopFarm
{
  public:
    ClosedLoopFarm(sim::Simulation &s, net::Network &client_net,
                   std::vector<net::PortId> server_ports,
                   std::vector<net::PortId> client_ports,
                   ClosedLoopConfig cfg);

    void start();

    /**
     * Stop issuing requests. Requests still in flight are abandoned:
     * their expiry timers are cancelled and they are counted in
     * totalAbandoned(), so issued == served + failed + abandoned
     * holds after a mid-flight stop.
     */
    void stop();

    const sim::TimeSeries &served() const { return served_; }
    const sim::TimeSeries &failed() const { return failed_; }
    std::uint64_t totalServed() const { return totalServed_; }
    std::uint64_t totalFailed() const { return totalFailed_; }
    std::uint64_t totalAbandoned() const { return totalAbandoned_; }

    /** @return number of requests issued so far (served, failed,
     * abandoned, or still in flight). */
    std::uint64_t totalIssued() const { return nextReq_ - 1; }

    /** @return number of requests currently in flight. */
    std::size_t inFlight() const { return pending_.size(); }
    const sim::OnlineStats &latency() const { return latency_; }
    const ClosedLoopConfig &config() const { return cfg_; }

  private:
    void think(std::size_t user);
    void issue(std::size_t user);
    void onResponse(net::Frame &&f);
    void expire(sim::RequestId id);

    sim::Simulation &sim_;
    net::Network &net_;
    std::vector<net::PortId> serverPorts_;
    std::vector<net::PortId> clientPorts_;
    ClosedLoopConfig cfg_;
    sim::ZipfSampler zipf_;

    bool running_ = false;
    std::uint64_t generation_ = 0;
    sim::RequestId nextReq_ = 1;
    std::size_t rrServer_ = 0;

    struct Pending
    {
        std::size_t user;
        sim::Tick sentAt;
        sim::EventHandle expiry;
    };
    std::unordered_map<sim::RequestId, Pending> pending_;

    sim::TimeSeries served_;
    sim::TimeSeries failed_;
    sim::OnlineStats latency_;
    std::uint64_t totalServed_ = 0;
    std::uint64_t totalFailed_ = 0;
    std::uint64_t totalAbandoned_ = 0;
};

} // namespace performa::loadgen

namespace performa {
/** Legacy alias: the workload subsystem grew into loadgen. */
namespace wl = loadgen;
} // namespace performa

#endif // PERFORMA_LOADGEN_CLOSED_LOOP_HH
