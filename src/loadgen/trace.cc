#include "loadgen/trace.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "loadgen/client_farm.hh"

namespace performa::loadgen {

SyntheticTrace
SyntheticTrace::generate(const TraceParams &params, std::uint64_t seed)
{
    if (params.numFiles == 0)
        FATAL("SyntheticTrace needs at least one file");

    SyntheticTrace t;
    t.alpha_ = params.zipfAlpha;
    t.sizes_.reserve(params.numFiles);

    sim::Rng rng(seed);
    std::lognormal_distribution<double> body(params.logMeanBytes,
                                             params.logSigma);

    for (std::size_t i = 0; i < params.numFiles; ++i) {
        double bytes;
        if (rng.uniform() < params.paretoTailProb) {
            // Pareto tail: min / U^(1/alpha).
            double u = std::max(rng.uniform(), 1e-9);
            bytes = static_cast<double>(params.paretoMinBytes) /
                    std::pow(u, 1.0 / params.paretoAlpha);
        } else {
            bytes = body(rng.engine());
        }
        bytes = std::clamp(bytes, 64.0,
                           static_cast<double>(params.maxFileBytes));
        t.sizes_.push_back(static_cast<std::uint64_t>(bytes));
    }
    return t;
}

double
SyntheticTrace::meanBytes() const
{
    if (sizes_.empty())
        return 0.0;
    long double sum = 0;
    for (auto s : sizes_)
        sum += static_cast<long double>(s);
    return static_cast<double>(sum / sizes_.size());
}

std::uint64_t
SyntheticTrace::totalBytes() const
{
    std::uint64_t sum = 0;
    for (auto s : sizes_)
        sum += s;
    return sum;
}

FlatFileSet
SyntheticTrace::flatten() const
{
    FlatFileSet f;
    f.numFiles = sizes_.size();
    f.fileBytes = static_cast<std::uint64_t>(meanBytes());
    f.zipfAlpha = alpha_;
    return f;
}

void
applyFileSet(const FlatFileSet &fs, press::ClusterConfig &cluster,
             WorkloadConfig &workload)
{
    cluster.press.fileBytes = fs.fileBytes;
    workload.numFiles = fs.numFiles;
    workload.zipfAlpha = fs.zipfAlpha;
}

} // namespace performa::loadgen
