/**
 * @file
 * The LoadGenerator interface: what an experiment needs from any
 * client population — start/stop, the served/failed/offered series,
 * and the per-stage latency timeline. The open-loop ClientFarm and
 * the session-based SessionFarm both implement it; makeLoadGenerator
 * picks the right one for a LoadProfileSpec.
 */

#ifndef PERFORMA_LOADGEN_GENERATOR_HH
#define PERFORMA_LOADGEN_GENERATOR_HH

#include <memory>
#include <vector>

#include "net/network.hh"
#include "sim/latency_histogram.hh"
#include "sim/simulation.hh"
#include "sim/time_series.hh"

namespace performa::press {
struct ClientResponseBody;
}

namespace performa::sim {
class SnapshotRegistry;
}

namespace performa::loadgen {

struct LoadProfileSpec;
struct WorkloadConfig;

/** RNG stream salt for split-stream (profile-driven) generators. */
inline constexpr std::uint64_t kLoadgenRngSalt = 0x10adc0de;

class LoadGenerator
{
  public:
    virtual ~LoadGenerator() = default;

    virtual void start() = 0;
    virtual void stop() = 0;

    virtual const sim::TimeSeries &served() const = 0;
    virtual const sim::TimeSeries &failed() const = 0;
    virtual const sim::TimeSeries &offered() const = 0;

    virtual std::uint64_t totalServed() const = 0;
    virtual std::uint64_t totalFailed() const = 0;
    virtual std::uint64_t totalOffered() const = 0;

    virtual const sim::StageLatencyTimeline &timeline() const = 0;
    /** Move the timeline out (experiment teardown). */
    virtual sim::StageLatencyTimeline stealTimeline() = 0;

    /** Attach this generator's mutable state to a snapshot registry
     *  (each concrete farm registers its own Saved type). */
    virtual void registerWith(sim::SnapshotRegistry &reg) = 0;
};

/**
 * Instantiate the generator for @p profile: a SessionFarm when the
 * profile asks for session clients, else the open-loop ClientFarm
 * (with the profile's rate modulation applied). With a default
 * profile the ClientFarm is byte-identical to the pre-loadgen
 * behaviour: every random draw still comes from sim.rng() in the
 * same order.
 */
std::unique_ptr<LoadGenerator>
makeLoadGenerator(sim::Simulation &sim, net::Network &client_net,
                  std::vector<net::PortId> server_ports,
                  std::vector<net::PortId> client_ports,
                  const WorkloadConfig &cfg,
                  const LoadProfileSpec &profile);

/**
 * Decode the server's latency stamps from a response and record the
 * per-stage samples. @p record_connect lets session clients restrict
 * the connect sample to a connection's first request (later requests
 * reuse the connection). Responses carrying no stamps at all
 * record nothing.
 */
void recordResponseLatency(sim::StageLatencyTimeline &tl, sim::Tick now,
                           const press::ClientResponseBody &body,
                           bool record_connect = true);

} // namespace performa::loadgen

namespace performa {
namespace wl = loadgen;
} // namespace performa

#endif // PERFORMA_LOADGEN_GENERATOR_HH
