#include "loadgen/client_farm.hh"

#include <memory>

#include "press/messages.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace performa::loadgen {

ClientFarm::ClientFarm(sim::Simulation &s, net::Network &client_net,
                       std::vector<net::PortId> server_ports,
                       std::vector<net::PortId> client_ports,
                       WorkloadConfig cfg, LoadProfileSpec profile)
    : sim_(s), net_(client_net), serverPorts_(std::move(server_ports)),
      clientPorts_(std::move(client_ports)), cfg_(cfg),
      profile_(std::move(profile)), shaped_(!profile_.isDefault()),
      splitRng_(s.splitRng(kLoadgenRngSalt)),
      zipf_(cfg.numFiles, cfg.zipfAlpha),
      timeline_({.sliceWidth = sim::sec(1),
                 .reserveSlices = profile_.reserveSlices})
{
    if (serverPorts_.empty() || clientPorts_.empty())
        FATAL("ClientFarm needs at least one server and client port");
    served_.reserve(profile_.reserveSlices);
    failed_.reserve(profile_.reserveSlices);
    offered_.reserve(profile_.reserveSlices);
    for (net::PortId p : clientPorts_) {
        net_.setHandler(p,
            [this](net::Frame &&f) { onResponse(std::move(f)); });
    }
}

void
ClientFarm::start()
{
    if (running_)
        return;
    running_ = true;
    ++generation_;
    arrivalTick();
}

void
ClientFarm::stop()
{
    running_ = false;
    ++generation_;
}

void
ClientFarm::arrivalTick()
{
    if (!running_)
        return;
    issueRequest();
    double rate = cfg_.requestRate;
    if (shaped_)
        rate *= rateMultiplierAt(profile_, sim_.now());
    if (rate <= 0.0)
        rate = 1.0; // idle trough: crawl until the curve comes back
    sim::Tick mean = static_cast<sim::Tick>(1e6 / rate);
    std::uint64_t gen = generation_;
    sim_.scheduleIn(genRng().exponential(mean), [this, gen] {
        if (gen == generation_)
            arrivalTick();
    });
}

void
ClientFarm::issueRequest()
{
    sim::RequestId id = nextReq_++;
    sim::FileId file =
        static_cast<sim::FileId>(zipf_.sample(genRng()));

    // Round-robin DNS: clients keep hitting a node's address whether
    // or not the node is up.
    net::PortId server = serverPorts_[rrServer_];
    rrServer_ = (rrServer_ + 1) % serverPorts_.size();
    net::PortId client = clientPorts_[rrClient_];
    rrClient_ = (rrClient_ + 1) % clientPorts_.size();

    pending_[id] = Pending{sim_.now()};
    ++totalOffered_;
    offered_.record(sim_.now());

    auto body = sim_.makePayload<press::ClientRequestBody>();
    body->req = id;
    body->file = file;
    body->replyPort = client;
    body->sentAt = sim_.now();

    net::Frame f;
    f.srcPort = client;
    f.dstPort = server;
    f.proto = net::Proto::Client;
    f.kind = press::ClientRequest;
    f.bytes = cfg_.requestBytes;
    f.payload = std::move(body);
    net_.send(std::move(f));

    // A single expiry at the completion deadline covers both the
    // connect (2 s) and the request (6 s) timeout: an unanswered
    // request is failed either way.
    sim_.scheduleIn(cfg_.requestTimeout, [this, id] { expire(id); });
}

void
ClientFarm::onResponse(net::Frame &&f)
{
    if (f.kind != press::ClientResponse || !f.payload)
        return;
    auto *body = f.payload.get<press::ClientResponseBody>();
    auto it = pending_.find(body->req);
    if (it == pending_.end())
        return; // already expired: the client hung up long ago
    latency_.add(static_cast<double>(sim_.now() - it->second.sentAt));
    recordResponseLatency(timeline_, sim_.now(), *body);
    pending_.erase(it);
    ++totalServed_;
    served_.record(sim_.now());
}

ClientFarm::Saved
ClientFarm::save() const
{
    Saved s;
    s.splitRng = splitRng_;
    s.running = running_;
    s.generation = generation_;
    s.nextReq = nextReq_;
    s.rrServer = rrServer_;
    s.rrClient = rrClient_;
    s.pending = pending_;
    s.served = served_;
    s.failed = failed_;
    s.offered = offered_;
    s.latency = latency_;
    s.timeline = timeline_;
    s.totalServed = totalServed_;
    s.totalFailed = totalFailed_;
    s.totalOffered = totalOffered_;
    return s;
}

void
ClientFarm::restore(const Saved &s)
{
    splitRng_ = s.splitRng;
    running_ = s.running;
    generation_ = s.generation;
    nextReq_ = s.nextReq;
    rrServer_ = s.rrServer;
    rrClient_ = s.rrClient;
    pending_ = s.pending;
    served_ = s.served;
    failed_ = s.failed;
    offered_ = s.offered;
    latency_ = s.latency;
    timeline_ = s.timeline;
    totalServed_ = s.totalServed;
    totalFailed_ = s.totalFailed;
    totalOffered_ = s.totalOffered;
    // The copies above carry capacity == size; re-reserve so recording
    // stays allocation-free for the rest of the forked run, as the
    // constructor arranged for a fresh one.
    served_.reserve(profile_.reserveSlices);
    failed_.reserve(profile_.reserveSlices);
    offered_.reserve(profile_.reserveSlices);
}

void
ClientFarm::registerWith(sim::SnapshotRegistry &reg)
{
    reg.attach(*this);
}

void
ClientFarm::expire(sim::RequestId id)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        return; // completed in time
    pending_.erase(it);
    ++totalFailed_;
    failed_.record(sim_.now());
}

} // namespace performa::loadgen
