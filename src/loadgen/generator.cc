#include "loadgen/generator.hh"

#include "loadgen/client_farm.hh"
#include "loadgen/load_profile.hh"
#include "loadgen/session_farm.hh"
#include "press/messages.hh"

namespace performa::loadgen {

std::unique_ptr<LoadGenerator>
makeLoadGenerator(sim::Simulation &sim, net::Network &client_net,
                  std::vector<net::PortId> server_ports,
                  std::vector<net::PortId> client_ports,
                  const WorkloadConfig &cfg,
                  const LoadProfileSpec &profile)
{
    if (profile.sessions)
        return std::make_unique<SessionFarm>(
            sim, client_net, std::move(server_ports),
            std::move(client_ports), cfg, profile);
    return std::make_unique<ClientFarm>(
        sim, client_net, std::move(server_ports),
        std::move(client_ports), cfg, profile);
}

void
recordResponseLatency(sim::StageLatencyTimeline &tl, sim::Tick now,
                      const press::ClientResponseBody &body,
                      bool record_connect)
{
    // A request legitimately sent at tick 0 still has a server-side
    // stamp; only a body with no stamps at all is "unstamped".
    if ((body.sentAt == 0 && body.acceptedAt == 0 &&
         body.serviceStartAt == 0) ||
        body.sentAt > now)
        return; // unstamped response (raw test harness): nothing to say
    tl.record(sim::LatencyStage::Total, now, now - body.sentAt);
    if (body.acceptedAt >= body.sentAt && record_connect)
        tl.record(sim::LatencyStage::Connect, now,
                  body.acceptedAt - body.sentAt);
    if (body.serviceStartAt >= body.acceptedAt && body.acceptedAt > 0)
        tl.record(sim::LatencyStage::Queue, now,
                  body.serviceStartAt - body.acceptedAt);
    if (body.serviceStartAt > 0 && now >= body.serviceStartAt)
        tl.record(sim::LatencyStage::Service, now,
                  now - body.serviceStartAt);
}

} // namespace performa::loadgen
