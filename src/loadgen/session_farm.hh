/**
 * @file
 * Session-based closed-loop clients: a fixed population of users who
 * connect to a server, issue a burst of requests over the same
 * connection with think-time pauses, and then leave (a new session
 * takes the seat immediately). Complements the paper's open-loop farm
 * with the connection-reuse traffic shape of real browsers, and is
 * the load half of the "millions of users" heavy-traffic engine.
 *
 * Steady state is allocation-free: the session table is a fixed
 * vector, responses are matched by an index encoded in the request id
 * (no map), expiry timers are slab-backed EventHandles cancelled on
 * response, and latencies go into pre-reserved histograms.
 *
 * All randomness (think times, session lengths, file picks) draws
 * from a split RNG stream, never from the shared sim.rng().
 */

#ifndef PERFORMA_LOADGEN_SESSION_FARM_HH
#define PERFORMA_LOADGEN_SESSION_FARM_HH

#include <cstdint>
#include <vector>

#include "loadgen/client_farm.hh"
#include "loadgen/generator.hh"
#include "loadgen/load_profile.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"
#include "sim/latency_histogram.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/time_series.hh"

namespace performa::loadgen {

class SessionFarm : public LoadGenerator
{
  public:
    SessionFarm(sim::Simulation &s, net::Network &client_net,
                std::vector<net::PortId> server_ports,
                std::vector<net::PortId> client_ports,
                WorkloadConfig cfg, LoadProfileSpec profile);

    void start() override;
    void stop() override;

    const sim::TimeSeries &served() const override { return served_; }
    const sim::TimeSeries &failed() const override { return failed_; }
    const sim::TimeSeries &offered() const override { return offered_; }

    std::uint64_t totalServed() const override { return totalServed_; }
    std::uint64_t totalFailed() const override { return totalFailed_; }
    std::uint64_t totalOffered() const override { return totalOffered_; }

    const sim::StageLatencyTimeline &
    timeline() const override
    {
        return timeline_;
    }
    sim::StageLatencyTimeline
    stealTimeline() override
    {
        return std::move(timeline_);
    }

    std::size_t sessionCount() const { return sessions_.size(); }
    /** Sessions ended so far (completed or abandoned on timeout). */
    std::uint64_t completedSessions() const { return completedSessions_; }
    const WorkloadConfig &config() const { return cfg_; }

    /** Snapshot state: the session table (expiry EventHandles stay
     *  valid because the event queue restores slot-for-slot), RNG
     *  stream and recorded series/histograms. */
    struct Saved;

    Saved save() const;
    void restore(const Saved &s);
    void registerWith(sim::SnapshotRegistry &reg) override;

  private:
    struct Session
    {
        std::size_t server = 0;   ///< sticky: the reused connection
        std::uint32_t remaining = 0; ///< requests left in the session
        std::uint32_t seq = 0;    ///< per-session request sequence
        sim::Tick sentAt = 0;
        bool inFlight = false;
        bool firstRequest = true; ///< first on this connection
        sim::EventHandle expiry;
    };

    void beginSession(std::size_t idx);
    void think(std::size_t idx);
    void sendRequest(std::size_t idx);
    void onResponse(net::Frame &&f);
    void expire(std::size_t idx, std::uint32_t seq);

    sim::RequestId
    encodeReq(std::size_t idx, std::uint32_t seq) const
    {
        return (static_cast<sim::RequestId>(idx + 1) << 32) | seq;
    }

    sim::Simulation &sim_;
    net::Network &net_;
    std::vector<net::PortId> serverPorts_;
    std::vector<net::PortId> clientPorts_;
    WorkloadConfig cfg_;
    LoadProfileSpec profile_;
    sim::Rng rng_;
    sim::ZipfSampler zipf_;

    bool running_ = false;
    std::uint64_t generation_ = 0;
    std::size_t rrServer_ = 0;
    std::vector<Session> sessions_;

    sim::TimeSeries served_;
    sim::TimeSeries failed_;
    sim::TimeSeries offered_;
    sim::StageLatencyTimeline timeline_;
    std::uint64_t totalServed_ = 0;
    std::uint64_t totalFailed_ = 0;
    std::uint64_t totalOffered_ = 0;
    std::uint64_t completedSessions_ = 0;
};

struct SessionFarm::Saved
{
    sim::Rng rng;
    bool running;
    std::uint64_t generation;
    std::size_t rrServer;
    std::vector<Session> sessions;
    sim::TimeSeries served;
    sim::TimeSeries failed;
    sim::TimeSeries offered;
    sim::StageLatencyTimeline timeline;
    std::uint64_t totalServed;
    std::uint64_t totalFailed;
    std::uint64_t totalOffered;
    std::uint64_t completedSessions;
};

} // namespace performa::loadgen

namespace performa {
namespace wl = loadgen;
} // namespace performa

#endif // PERFORMA_LOADGEN_SESSION_FARM_HH
