#include "loadgen/load_profile.hh"

#include <cmath>

#include "sim/random.hh"

namespace performa::loadgen {

std::optional<LoadProfileSpec>
profileByName(const std::string &name)
{
    LoadProfileSpec spec;
    spec.name = name;
    if (name == "steady" || name.empty()) {
        spec.name = "steady";
        return spec;
    }
    if (name == "sessions") {
        spec.sessions = true;
        return spec;
    }
    if (name == "pareto") {
        spec.pareto.enabled = true;
        return spec;
    }
    if (name == "diurnal") {
        // A compressed day: the run sweeps through trough and peak.
        spec.rateScale = 0.85;
        spec.diurnal.period = sim::sec(120);
        spec.diurnal.amplitude = 0.5;
        return spec;
    }
    if (name == "flashcrowd") {
        // Sub-saturated base load with a burst that overlaps the
        // fault injection at 60 s: delivered throughput can keep up
        // while queueing pushes the p99 through an SLO.
        spec.rateScale = 0.6;
        spec.flash.at = sim::sec(50);
        spec.flash.ramp = sim::sec(10);
        spec.flash.hold = sim::sec(90);
        spec.flash.peak = 2.5;
        return spec;
    }
    return std::nullopt;
}

double
rateMultiplierAt(const LoadProfileSpec &spec, sim::Tick t)
{
    double m = spec.rateScale;
    if (spec.diurnal.enabled()) {
        double phase = 2.0 * M_PI * static_cast<double>(t) /
                       static_cast<double>(spec.diurnal.period);
        m *= 1.0 + spec.diurnal.amplitude * std::sin(phase);
    }
    if (spec.flash.enabled() && t >= spec.flash.at) {
        sim::Tick rel = t - spec.flash.at;
        double peak = spec.flash.peak;
        if (rel < spec.flash.ramp) {
            double f = static_cast<double>(rel) /
                       static_cast<double>(spec.flash.ramp);
            m *= 1.0 + (peak - 1.0) * f;
        } else if (rel < spec.flash.ramp + spec.flash.hold) {
            m *= peak;
        } else if (rel < 2 * spec.flash.ramp + spec.flash.hold) {
            double f = static_cast<double>(
                           rel - spec.flash.ramp - spec.flash.hold) /
                       static_cast<double>(spec.flash.ramp);
            m *= peak - (peak - 1.0) * f;
        }
    }
    return m > 0.0 ? m : 0.0;
}

std::uint64_t
paretoFileBytes(const ParetoSizes &spec, sim::FileId f)
{
    // Scale parameter matching the requested mean for an untruncated
    // Pareto: E[X] = xm * alpha / (alpha - 1).
    double xm = static_cast<double>(spec.meanBytes) *
                (spec.alpha - 1.0) / spec.alpha;
    // Fixed salt: sizes are a property of the file set, not the run.
    std::uint64_t h = sim::mix64(f ^ 0x9e3779b97f4a7c15ull);
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    double size = xm / std::pow(1.0 - u, 1.0 / spec.alpha);
    if (size < 1.0)
        size = 1.0;
    double cap = static_cast<double>(spec.maxBytes);
    if (size > cap)
        size = cap;
    return static_cast<std::uint64_t>(size);
}

std::function<std::uint64_t(sim::FileId)>
makeFileSizeFn(const ParetoSizes &spec)
{
    if (!spec.enabled)
        return {};
    ParetoSizes s = spec;
    return [s](sim::FileId f) { return paretoFileBytes(s, f); };
}

} // namespace performa::loadgen
