/**
 * @file
 * The client population: open-loop Poisson request generation over a
 * Zipf-popular file set, round-robin DNS across the server nodes, and
 * the paper's request timeouts (2 s to connect, 6 s to complete).
 * Successes and failures are recorded into per-second time series —
 * the raw material of the paper's throughput plots and of the
 * availability metric (fraction of requests served successfully) —
 * and every served request's stamped per-stage latency goes into a
 * StageLatencyTimeline.
 *
 * A LoadProfileSpec can modulate the offered rate (diurnal curves,
 * flash crowds); profile-driven draws come from a split RNG stream,
 * so the default profile reproduces the historical draw sequence
 * exactly.
 */

#ifndef PERFORMA_LOADGEN_CLIENT_FARM_HH
#define PERFORMA_LOADGEN_CLIENT_FARM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "loadgen/generator.hh"
#include "loadgen/load_profile.hh"
#include "net/network.hh"
#include "sim/latency_histogram.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/time_series.hh"
#include "sim/types.hh"

namespace performa::loadgen {

/** Workload parameters. */
struct WorkloadConfig
{
    double requestRate = 6000.0; ///< aggregate offered load (req/s)
    std::size_t numFiles = 60000; ///< working set (uniform size)
    double zipfAlpha = 0.8;      ///< web-trace-like popularity skew
    sim::Tick connectTimeout = sim::sec(2);
    sim::Tick requestTimeout = sim::sec(6);
    std::uint64_t requestBytes = 300;
};

/**
 * Drives the cluster through the client network. One instance models
 * the whole set of client machines.
 */
class ClientFarm : public LoadGenerator
{
  public:
    ClientFarm(sim::Simulation &s, net::Network &client_net,
               std::vector<net::PortId> server_ports,
               std::vector<net::PortId> client_ports, WorkloadConfig cfg,
               LoadProfileSpec profile = {});

    /** Begin generating requests (runs until stop()). */
    void start() override;

    /** Stop generating new requests. */
    void stop() override;

    const sim::TimeSeries &served() const override { return served_; }
    const sim::TimeSeries &failed() const override { return failed_; }
    const sim::TimeSeries &offered() const override { return offered_; }

    std::uint64_t totalServed() const override { return totalServed_; }
    std::uint64_t totalFailed() const override { return totalFailed_; }
    std::uint64_t totalOffered() const override { return totalOffered_; }

    /** In-flight (not yet answered or timed out) request count. */
    std::size_t pendingCount() const { return pending_.size(); }

    /** Response-time statistics of served requests (microseconds). */
    const sim::OnlineStats &latency() const { return latency_; }

    /** Per-stage (connect/queue/service/total) latency histograms,
     *  one slice per second. */
    const sim::StageLatencyTimeline &
    timeline() const override
    {
        return timeline_;
    }
    sim::StageLatencyTimeline
    stealTimeline() override
    {
        return std::move(timeline_);
    }

    const WorkloadConfig &config() const { return cfg_; }
    const LoadProfileSpec &profile() const { return profile_; }
    const sim::ZipfSampler &popularity() const { return zipf_; }

    /** Snapshot state: generation counters, in-flight requests, RNG
     *  stream and the recorded series/histograms. */
    struct Saved;

    Saved save() const;
    void restore(const Saved &s);
    void registerWith(sim::SnapshotRegistry &reg) override;

  private:
    struct Pending
    {
        sim::Tick sentAt;
    };

    void arrivalTick();
    void issueRequest();
    void onResponse(net::Frame &&f);
    void expire(sim::RequestId id);

    /** Profile draws come from the split stream; the default profile
     *  keeps drawing from the shared, historical stream. */
    sim::Rng &genRng() { return shaped_ ? splitRng_ : sim_.rng(); }

    sim::Simulation &sim_;
    net::Network &net_;
    std::vector<net::PortId> serverPorts_;
    std::vector<net::PortId> clientPorts_;
    WorkloadConfig cfg_;
    LoadProfileSpec profile_;
    bool shaped_; ///< profile_ modulates this farm
    sim::Rng splitRng_;
    sim::ZipfSampler zipf_;

    bool running_ = false;
    std::uint64_t generation_ = 0;
    sim::RequestId nextReq_ = 1;
    std::size_t rrServer_ = 0;
    std::size_t rrClient_ = 0;

    std::unordered_map<sim::RequestId, Pending> pending_;

    sim::TimeSeries served_;
    sim::TimeSeries failed_;
    sim::TimeSeries offered_;
    sim::OnlineStats latency_;
    sim::StageLatencyTimeline timeline_;
    std::uint64_t totalServed_ = 0;
    std::uint64_t totalFailed_ = 0;
    std::uint64_t totalOffered_ = 0;
};

struct ClientFarm::Saved
{
    sim::Rng splitRng;
    bool running;
    std::uint64_t generation;
    sim::RequestId nextReq;
    std::size_t rrServer;
    std::size_t rrClient;
    std::unordered_map<sim::RequestId, Pending> pending;
    sim::TimeSeries served;
    sim::TimeSeries failed;
    sim::TimeSeries offered;
    sim::OnlineStats latency;
    sim::StageLatencyTimeline timeline;
    std::uint64_t totalServed;
    std::uint64_t totalFailed;
    std::uint64_t totalOffered;
};

} // namespace performa::loadgen

namespace performa {
/** Legacy alias: the workload subsystem grew into loadgen. */
namespace wl = loadgen;
} // namespace performa

#endif // PERFORMA_LOADGEN_CLIENT_FARM_HH
