#include "loadgen/closed_loop.hh"

#include <memory>

#include "press/messages.hh"
#include "sim/logging.hh"

namespace performa::loadgen {

ClosedLoopFarm::ClosedLoopFarm(sim::Simulation &s,
                               net::Network &client_net,
                               std::vector<net::PortId> server_ports,
                               std::vector<net::PortId> client_ports,
                               ClosedLoopConfig cfg)
    : sim_(s), net_(client_net), serverPorts_(std::move(server_ports)),
      clientPorts_(std::move(client_ports)), cfg_(cfg),
      zipf_(cfg.numFiles, cfg.zipfAlpha)
{
    if (serverPorts_.empty() || clientPorts_.empty())
        FATAL("ClosedLoopFarm needs server and client ports");
    for (net::PortId p : clientPorts_) {
        net_.setHandler(p,
            [this](net::Frame &&f) { onResponse(std::move(f)); });
    }
}

void
ClosedLoopFarm::start()
{
    if (running_)
        return;
    running_ = true;
    ++generation_;
    // Stagger the users' first requests across one think time.
    for (std::size_t u = 0; u < cfg_.users; ++u)
        think(u);
}

void
ClosedLoopFarm::stop()
{
    running_ = false;
    ++generation_;
    // In-flight requests are abandoned, not silently dropped: cancel
    // their expiry timers (they would otherwise fire into a cleared
    // map) and account for them so served + failed + abandoned sums
    // to the requests issued.
    for (auto &[id, p] : pending_) {
        sim_.events().cancel(p.expiry);
        ++totalAbandoned_;
    }
    pending_.clear();
}

void
ClosedLoopFarm::think(std::size_t user)
{
    std::uint64_t gen = generation_;
    sim_.scheduleIn(sim_.rng().exponential(cfg_.meanThinkTime),
        [this, gen, user] {
            if (gen == generation_ && running_)
                issue(user);
        });
}

void
ClosedLoopFarm::issue(std::size_t user)
{
    sim::RequestId id = nextReq_++;
    sim::FileId file =
        static_cast<sim::FileId>(zipf_.sample(sim_.rng()));
    net::PortId server = serverPorts_[rrServer_];
    rrServer_ = (rrServer_ + 1) % serverPorts_.size();
    net::PortId client = clientPorts_[user % clientPorts_.size()];

    Pending &p = pending_[id];
    p.user = user;
    p.sentAt = sim_.now();

    auto body = sim_.makePayload<press::ClientRequestBody>();
    body->req = id;
    body->file = file;
    body->replyPort = client;

    net::Frame f;
    f.srcPort = client;
    f.dstPort = server;
    f.proto = net::Proto::Client;
    f.kind = press::ClientRequest;
    f.bytes = cfg_.requestBytes;
    f.payload = std::move(body);
    net_.send(std::move(f));

    p.expiry = sim_.scheduleIn(cfg_.requestTimeout,
                               [this, id] { expire(id); });
}

void
ClosedLoopFarm::onResponse(net::Frame &&f)
{
    if (f.kind != press::ClientResponse || !f.payload)
        return;
    auto *body = f.payload.get<press::ClientResponseBody>();
    auto it = pending_.find(body->req);
    if (it == pending_.end())
        return;
    std::size_t user = it->second.user;
    latency_.add(static_cast<double>(sim_.now() - it->second.sentAt));
    // Cancel the expiry timer instead of leaving a dead heap entry
    // per served request to linger until its due time.
    sim_.events().cancel(it->second.expiry);
    pending_.erase(it);
    ++totalServed_;
    served_.record(sim_.now());
    if (running_)
        think(user); // the user reads the page, then clicks again
}

void
ClosedLoopFarm::expire(sim::RequestId id)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        return;
    std::size_t user = it->second.user;
    pending_.erase(it);
    ++totalFailed_;
    failed_.record(sim_.now());
    if (running_)
        think(user); // give up and retry something else
}

} // namespace performa::loadgen
