/**
 * @file
 * Warm-state snapshot/fork: capture every registered component's
 * mutable state into an immutable Snapshot, then fork any number of
 * runs from it by restoring that state back into the same object
 * graph (DESIGN.md, "Warm-state snapshot/fork").
 *
 * The design is restore-in-place: component objects stay at their
 * original addresses for the lifetime of the experiment, and only
 * their mutable state is copied out and back in. Event handlers and
 * callbacks capture `this` pointers freely — those pointers remain
 * valid across a fork because the objects they refer to are never
 * moved, so the handler-rebinding contract is the identity map. What
 * every component must guarantee instead is that its Saved struct
 * covers ALL behaviour-affecting mutable state: anything missed leaks
 * one fork's history into the next and shows up as a byte diff in the
 * determinism tests.
 */

#ifndef PERFORMA_SIM_SNAPSHOT_HH
#define PERFORMA_SIM_SNAPSHOT_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "sim/logging.hh"

namespace performa::sim {

class SnapshotRegistry;

/**
 * An immutable capture of one registry's component states, in
 * registration order. Opaque outside the registry that produced it;
 * holding one keeps the captured state (including any refcounted
 * payload handles inside cloned handlers/queues) alive, so a Snapshot
 * must not outlive the Simulation whose payload pool backs it.
 */
class Snapshot
{
  public:
    Snapshot() = default;

    /** @return true if no state has been captured. */
    bool empty() const { return states_.empty(); }

    /** Number of captured component states. */
    std::size_t size() const { return states_.size(); }

  private:
    friend class SnapshotRegistry;

    std::vector<std::shared_ptr<const void>> states_;
};

/**
 * The ordered list of save/restore hooks for one experiment's
 * component graph. Components are attach()ed once, bottom-up
 * (Simulation core first, then networks, nodes, protocol endpoints,
 * servers, load generators); capture() and forkFrom() walk the hooks
 * in that same order, so a component may rely on everything attached
 * before it already being restored.
 */
class SnapshotRegistry
{
  public:
    using SaveFn = std::function<std::shared_ptr<const void>()>;
    using RestoreFn = std::function<void(const void *)>;

    SnapshotRegistry() = default;
    SnapshotRegistry(const SnapshotRegistry &) = delete;
    SnapshotRegistry &operator=(const SnapshotRegistry &) = delete;

    /** Register a raw save/restore hook pair. */
    void
    add(SaveFn save, RestoreFn restore)
    {
        hooks_.push_back(Hook{std::move(save), std::move(restore)});
    }

    /**
     * Register a component exposing the Saved/save()/restore() trio:
     * `C::Saved C::save() const` and `void C::restore(const C::Saved&)`.
     * The component must outlive the registry's last forkFrom().
     */
    template <typename C>
    void
    attach(C &c)
    {
        add(
            [&c]() -> std::shared_ptr<const void> {
                return std::make_shared<const typename C::Saved>(c.save());
            },
            [&c](const void *s) {
                c.restore(*static_cast<const typename C::Saved *>(s));
            });
    }

    /** Number of registered hooks (a Snapshot only fits a registry
     *  with the same registration sequence). */
    std::size_t size() const { return hooks_.size(); }

    /** Capture every component's state, in registration order. */
    Snapshot
    capture() const
    {
        Snapshot snap;
        snap.states_.reserve(hooks_.size());
        for (const Hook &h : hooks_)
            snap.states_.push_back(h.save());
        return snap;
    }

    /**
     * Restore every component to @p snap, in registration order. The
     * snapshot must have been captured by a registry with the same
     * components attached in the same order.
     */
    void
    forkFrom(const Snapshot &snap) const
    {
        if (snap.states_.size() != hooks_.size())
            PANIC("snapshot/registry mismatch: ", snap.states_.size(),
                  " captured states vs ", hooks_.size(), " hooks");
        for (std::size_t i = 0; i < hooks_.size(); ++i)
            hooks_[i].restore(snap.states_[i].get());
    }

  private:
    struct Hook
    {
        SaveFn save;
        RestoreFn restore;
    };

    std::vector<Hook> hooks_;
};

} // namespace performa::sim

#endif // PERFORMA_SIM_SNAPSHOT_HH
