/**
 * @file
 * Fixed-bin HDR-style latency histogram plus a per-second, per-stage
 * timeline of them.
 *
 * LatencyHistogram is log-linear bucketed: values below 2^S land in
 * width-1 buckets; each octave [2^k, 2^{k+1}) above that is split
 * into 2^(S-1) equal buckets, bounding the relative quantile error at
 * 2^(1-S) (~3% for the default S = 6). All storage is allocated in
 * the constructor — record() and merge() never touch the heap, which
 * lets the workload generators record per-request latencies inside
 * the allocation-free message path.
 *
 * StageLatencyTimeline keeps one histogram per (latency stage, wall
 * slice) so tail latencies can be sliced against the fault timeline
 * (the 7-stage windows of exp/stages.cc), plus a cumulative histogram
 * per stage for whole-run quantiles.
 */

#ifndef PERFORMA_SIM_LATENCY_HISTOGRAM_HH
#define PERFORMA_SIM_LATENCY_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace performa::sim {

/** Bucket layout; two histograms merge only when these match. */
struct LatencyHistogramConfig
{
    /** Sub-bucket resolution: 2^subBucketBits buckets per octave
     *  doubling; relative error <= 2^(1-subBucketBits). */
    unsigned subBucketBits = 6;
    /** Values at or above this saturate into the overflow bucket
     *  (microseconds; default covers well past the 6 s timeout). */
    std::uint64_t maxValue = sec(64);

    bool
    operator==(const LatencyHistogramConfig &o) const
    {
        return subBucketBits == o.subBucketBits && maxValue == o.maxValue;
    }
};

class LatencyHistogram
{
  public:
    explicit LatencyHistogram(LatencyHistogramConfig cfg = {});

    /** Record one (or @p n) sample(s) of @p value_us microseconds. */
    void
    record(std::uint64_t value_us, std::uint64_t n = 1)
    {
        counts_[indexFor(value_us)] += n;
        total_ += n;
        sum_ += value_us * n;
        if (value_us > max_)
            max_ = value_us;
    }

    /**
     * Quantile @p q in [0, 1] as an upper bound on the true value
     * (the containing bucket's highest equivalent value, clamped to
     * the largest recorded sample). NaN when empty.
     */
    double quantile(double q) const;

    /** Samples with value <= @p value_us (bucket-granular: counts
     *  every bucket whose upper bound is <= value_us). */
    std::uint64_t countAtOrBelow(std::uint64_t value_us) const;

    /** Fraction of samples <= @p value_us; 1.0 when empty (an empty
     *  window carries no evidence of an SLO violation). */
    double
    fractionAtOrBelow(std::uint64_t value_us) const
    {
        if (total_ == 0)
            return 1.0;
        return static_cast<double>(countAtOrBelow(value_us)) /
               static_cast<double>(total_);
    }

    /** Add @p other's samples into this histogram (same config). */
    void merge(const LatencyHistogram &other);

    void clear();

    std::uint64_t count() const { return total_; }
    bool empty() const { return total_ == 0; }
    std::uint64_t maxRecorded() const { return max_; }
    double
    mean() const
    {
        return total_ ? static_cast<double>(sum_) /
                            static_cast<double>(total_)
                      : 0.0;
    }

    const LatencyHistogramConfig &config() const { return cfg_; }
    std::size_t bucketCount() const { return counts_.size(); }

    /** Highest value mapping to bucket @p idx (inclusive bound). */
    std::uint64_t bucketUpperBound(std::size_t idx) const;

  private:
    std::size_t indexFor(std::uint64_t v) const;

    LatencyHistogramConfig cfg_;
    std::uint64_t linearMax_;   ///< 2^subBucketBits
    unsigned topOctave_;        ///< floor(log2(maxValue - 1)), >= S
    std::vector<std::uint64_t> counts_; ///< last bucket = overflow
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/** Request-lifetime stages a client can attribute latency to. */
enum class LatencyStage : int
{
    Connect = 0, ///< request sent -> accepted by a server
    Queue,       ///< accepted -> file fetch begins (incl. forwarding)
    Service,     ///< fetch begins -> response at the client
    Total,       ///< request sent -> response at the client
};

inline constexpr int numLatencyStages = 4;

const char *latencyStageName(LatencyStage s);

/**
 * Per-stage latency histograms recorded per wall-clock slice (default
 * one second), mirroring the per-second throughput series.
 */
class StageLatencyTimeline
{
  public:
    struct Config
    {
        LatencyHistogramConfig hist;
        Tick sliceWidth = sec(1);
        /** Slices to pre-construct; recording past the reservation
         *  grows the slice vectors (allocates). */
        std::size_t reserveSlices = 0;
    };

    StageLatencyTimeline();
    explicit StageLatencyTimeline(Config cfg);

    /** Record a @p value_us sample completed at time @p at. */
    void
    record(LatencyStage s, Tick at, std::uint64_t value_us)
    {
        std::size_t idx = static_cast<std::size_t>(at / cfg_.sliceWidth);
        auto &v = slices_[static_cast<int>(s)];
        if (idx >= v.size())
            growTo(idx + 1);
        v[idx].record(value_us);
        cumulative_[static_cast<int>(s)].record(value_us);
    }

    /** Whole-run histogram for one stage. */
    const LatencyHistogram &
    cumulative(LatencyStage s) const
    {
        return cumulative_[static_cast<int>(s)];
    }

    /** Merged histogram over slices overlapping [from, to). */
    LatencyHistogram window(LatencyStage s, Tick from, Tick to) const;

    std::size_t sliceCount() const { return slices_[0].size(); }
    const Config &config() const { return cfg_; }

  private:
    void growTo(std::size_t n);

    Config cfg_;
    std::array<std::vector<LatencyHistogram>, numLatencyStages> slices_;
    std::array<LatencyHistogram, numLatencyStages> cumulative_;
};

} // namespace performa::sim

#endif // PERFORMA_SIM_LATENCY_HISTOGRAM_HH
