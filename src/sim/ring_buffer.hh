/**
 * @file
 * RingBuffer: a contiguous power-of-two ring used for the simulator's
 * FIFO work/message queues (protocol send/receive queues, the CPU run
 * queue). std::deque allocates and frees node blocks as a steady
 * push/pop stream walks through them; the ring reuses one buffer
 * forever, so warmed-up queues are allocation-free. Capacity doubles
 * if a push ever outruns the reserved size — a safety valve, since
 * the users size it from their flow-control bounds up front.
 */

#ifndef PERFORMA_SIM_RING_BUFFER_HH
#define PERFORMA_SIM_RING_BUFFER_HH

#include <cstddef>
#include <new>
#include <utility>

namespace performa::sim {

/** Move-only FIFO ring over raw storage; indexable like a deque. */
template <typename T> class RingBuffer
{
  public:
    RingBuffer() = default;

    explicit RingBuffer(std::size_t capacity) { reserve(capacity); }

    RingBuffer(RingBuffer &&o) noexcept
        : buf_(o.buf_), cap_(o.cap_), head_(o.head_), size_(o.size_)
    {
        o.buf_ = nullptr;
        o.cap_ = o.head_ = o.size_ = 0;
    }

    RingBuffer &
    operator=(RingBuffer &&o) noexcept
    {
        if (this != &o) {
            destroyAll();
            buf_ = o.buf_;
            cap_ = o.cap_;
            head_ = o.head_;
            size_ = o.size_;
            o.buf_ = nullptr;
            o.cap_ = o.head_ = o.size_ = 0;
        }
        return *this;
    }

    RingBuffer(const RingBuffer &) = delete;
    RingBuffer &operator=(const RingBuffer &) = delete;

    ~RingBuffer() { destroyAll(); }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return cap_; }

    /** Grow the buffer so at least @p n elements fit (never shrinks). */
    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            relocate(roundUp(n));
    }

    T &operator[](std::size_t i) { return buf_[(head_ + i) & (cap_ - 1)]; }

    const T &
    operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & (cap_ - 1)];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[size_ - 1]; }

    void
    push_back(T v)
    {
        if (size_ == cap_)
            relocate(cap_ ? cap_ * 2 : minCapacity);
        ::new (static_cast<void *>(buf_ + ((head_ + size_) & (cap_ - 1))))
            T(std::move(v));
        ++size_;
    }

    void
    pop_front()
    {
        front().~T();
        head_ = (head_ + 1) & (cap_ - 1);
        --size_;
    }

    void
    clear()
    {
        while (size_ > 0)
            pop_front();
        head_ = 0;
    }

    /**
     * Duplicate the ring, copying each element with @p copy (front to
     * back). The clone reserves the source's full capacity up front so
     * a restored queue keeps its warmed-up, allocation-free headroom.
     */
    template <typename CopyFn>
    RingBuffer
    clone(CopyFn &&copy) const
    {
        RingBuffer out;
        out.reserve(cap_);
        for (std::size_t i = 0; i < size_; ++i)
            out.push_back(copy((*this)[i]));
        return out;
    }

    /** clone() for copy-constructible element types. */
    RingBuffer
    clone() const
    {
        return clone([](const T &v) { return T(v); });
    }

  private:
    static constexpr std::size_t minCapacity = 8;

    static std::size_t
    roundUp(std::size_t n)
    {
        std::size_t c = minCapacity;
        while (c < n)
            c <<= 1;
        return c;
    }

    /** Move everything into a fresh buffer of @p new_cap slots. */
    void
    relocate(std::size_t new_cap)
    {
        T *fresh = static_cast<T *>(::operator new(
            new_cap * sizeof(T), std::align_val_t{alignof(T)}));
        for (std::size_t i = 0; i < size_; ++i) {
            T &src = (*this)[i];
            ::new (static_cast<void *>(fresh + i)) T(std::move(src));
            src.~T();
        }
        if (buf_)
            ::operator delete(buf_, std::align_val_t{alignof(T)});
        buf_ = fresh;
        cap_ = new_cap;
        head_ = 0;
    }

    void
    destroyAll()
    {
        if (!buf_)
            return;
        clear();
        ::operator delete(buf_, std::align_val_t{alignof(T)});
        buf_ = nullptr;
        cap_ = 0;
    }

    T *buf_ = nullptr;
    std::size_t cap_ = 0; ///< always a power of two (or zero)
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace performa::sim

#endif // PERFORMA_SIM_RING_BUFFER_HH
