#include "sim/time_series.hh"

#include <algorithm>

namespace performa::sim {

std::uint64_t
TimeSeries::total(Tick from, Tick to) const
{
    if (to <= from || buckets_.empty())
        return 0;
    // Whole buckets only: callers align stage boundaries to buckets.
    std::size_t first = static_cast<std::size_t>(from / bucketWidth_);
    std::size_t last = static_cast<std::size_t>((to - 1) / bucketWidth_);
    last = std::min(last, buckets_.size() - 1);
    std::uint64_t sum = 0;
    for (std::size_t i = first; i <= last && i < buckets_.size(); ++i)
        sum += buckets_[i];
    return sum;
}

double
TimeSeries::meanRate(Tick from, Tick to) const
{
    if (to <= from)
        return 0.0;
    return static_cast<double>(total(from, to)) / toSeconds(to - from);
}

} // namespace performa::sim
