#include "sim/random.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace performa::sim {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha)
{
    if (n == 0)
        FATAL("ZipfSampler needs at least one item");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf_[i] = sum;
    }
    for (auto &v : cdf_)
        v /= sum;
    cdf_.back() = 1.0; // guard against rounding
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfSampler::pmf(std::size_t i) const
{
    if (i >= cdf_.size())
        return 0.0;
    if (i == 0)
        return cdf_[0];
    return cdf_[i] - cdf_[i - 1];
}

double
ZipfSampler::coverage(std::size_t k) const
{
    if (k == 0)
        return 0.0;
    if (k >= cdf_.size())
        return 1.0;
    return cdf_[k - 1];
}

} // namespace performa::sim
