/**
 * @file
 * Per-simulation payload pool and the pooled refcounted handle Rc<T>,
 * the message-path counterpart of the event engine's record slab
 * (§2.1/§2.2 of DESIGN.md).
 *
 * Every simulated message used to carry a std::shared_ptr<void>
 * payload: one heap allocation per message plus atomic refcount
 * traffic on every frame hop, retransmit and delivery. A Simulation
 * is confined to a single campaign worker thread, so none of that
 * atomicity buys anything — payload blocks can come from a
 * size-classed free list owned by the Simulation, with a plain
 * (non-atomic) reference count.
 *
 * Contract (same as EventHandle): handles must not outlive the pool.
 * Components hang off a Simulation and are destroyed before it, so in
 * practice this means "don't stash an Rc somewhere that survives the
 * Simulation". The pool is NOT thread-safe by design; cross-thread
 * sharing of a Simulation is already a bug.
 */

#ifndef PERFORMA_SIM_POOL_HH
#define PERFORMA_SIM_POOL_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace performa::sim {

class PayloadPool;
template <typename T> class Rc;

/**
 * Type-erased pooled payload handle: the replacement for
 * std::shared_ptr<void> in net::Frame and proto::AppMessage.
 *
 * Copying bumps a non-atomic refcount; destroying the last handle
 * runs the payload's destructor and returns its block to the owning
 * pool's free list. get<T>() is the analogue of static_pointer_cast:
 * the caller names the concrete type, exactly as the receiving stack
 * already does via the frame/message kind.
 */
class RcAny
{
  public:
    RcAny() = default;

    RcAny(const RcAny &o) : b_(o.b_)
    {
        if (b_)
            ++refs(b_);
    }

    RcAny(RcAny &&o) noexcept : b_(o.b_) { o.b_ = nullptr; }

    RcAny &
    operator=(const RcAny &o)
    {
        RcAny tmp(o);
        std::swap(b_, tmp.b_);
        return *this;
    }

    RcAny &
    operator=(RcAny &&o) noexcept
    {
        if (this != &o) {
            reset();
            b_ = o.b_;
            o.b_ = nullptr;
        }
        return *this;
    }

    ~RcAny() { reset(); }

    /** Drop this reference (possibly freeing the payload). */
    inline void reset() noexcept;

    /** @return true if a payload is attached. */
    explicit operator bool() const { return b_ != nullptr; }

    /**
     * Access the payload as @p T. Unchecked, like static_pointer_cast:
     * T must be the type the payload was created with.
     */
    template <typename T>
    T *
    get() const
    {
        return b_ ? static_cast<T *>(payload(b_)) : nullptr;
    }

    /** Re-type this handle as an owning Rc<T> (refcount bump). */
    template <typename T> Rc<T> cast() const;

    /** Current reference count (tests/debugging; 0 when empty). */
    std::uint32_t refCount() const { return b_ ? refs(b_) : 0; }

  protected:
    friend class PayloadPool;

    /**
     * Block header preceding every pooled payload. `next` threads the
     * per-size-class free list while the block is free.
     */
    struct Block
    {
        PayloadPool *pool;
        void (*destroy)(void *) noexcept; ///< null: trivially destructible
        Block *next;
        std::uint32_t refs;
        std::uint32_t classIdx;
    };

    static_assert(sizeof(Block) % alignof(std::max_align_t) == 0,
                  "payload after the header must stay max-aligned");

    explicit RcAny(Block *b) : b_(b) {}

    static std::uint32_t &refs(Block *b) { return b->refs; }

    static void *
    payload(Block *b)
    {
        return reinterpret_cast<std::byte *>(b) + sizeof(Block);
    }

    Block *b_ = nullptr;
};

/** Typed pooled payload handle; converts freely to/from RcAny. */
template <typename T> class Rc : public RcAny
{
  public:
    Rc() = default;

    T *get() const { return RcAny::get<T>(); }
    T &operator*() const { return *get(); }
    T *operator->() const { return get(); }

  private:
    friend class PayloadPool;
    friend class RcAny;
    explicit Rc(Block *b) : RcAny(b) {}
};

/**
 * Size-classed free-list allocator for message payloads; one instance
 * per Simulation. Blocks are allocated from the heap on first use of
 * a size class and recycled forever after, so the steady-state
 * message path performs no allocations at all (freshAllocs() stops
 * moving — the property the message-path benchmarks and the
 * allocation-counting test lock in).
 */
class PayloadPool
{
  public:
    PayloadPool() = default;
    PayloadPool(const PayloadPool &) = delete;
    PayloadPool &operator=(const PayloadPool &) = delete;

    ~PayloadPool()
    {
        for (void *c : chunks_)
            ::operator delete(c);
    }

    /** Construct a @p T payload in a pooled block. */
    template <typename T, typename... Args>
    Rc<T>
    make(Args &&...args)
    {
        static_assert(alignof(T) <= alignof(std::max_align_t),
                      "over-aligned payloads are not supported");
        Block *b = acquire(classFor(sizeof(T)));
        try {
            ::new (RcAny::payload(b)) T(std::forward<Args>(args)...);
        } catch (...) {
            recycle(b);
            throw;
        }
        b->pool = this;
        b->refs = 1;
        b->destroy = std::is_trivially_destructible_v<T>
                         ? nullptr
                         : +[](void *p) noexcept {
                               static_cast<T *>(p)->~T();
                           };
        return Rc<T>(b);
    }

    /** Blocks newly carved from the heap (not recycled). */
    std::uint64_t freshAllocs() const { return freshAllocs_; }

    /** Allocations served from a free list. */
    std::uint64_t poolHits() const { return poolHits_; }

    /** Blocks currently referenced by live handles. */
    std::uint64_t
    liveBlocks() const
    {
        return freshAllocs_ + poolHits_ - recycled_;
    }

  private:
    friend class RcAny;

    using Block = RcAny::Block;

    static constexpr std::size_t minClassBytes = 32;
    static constexpr std::size_t numClasses = 16; ///< up to 1 MiB

    /** Smallest size class whose payload area holds @p bytes. */
    static std::size_t
    classFor(std::size_t bytes)
    {
        std::size_t idx = 0;
        std::size_t cap = minClassBytes;
        while (cap < bytes) {
            cap <<= 1;
            ++idx;
        }
        return idx;
    }

    Block *
    acquire(std::size_t cls)
    {
        if (cls >= numClasses)
            throw std::bad_alloc(); // no payload in the tree is ~1 MiB
        if (Block *b = free_[cls]) {
            free_[cls] = b->next;
            ++poolHits_;
            return b;
        }
        void *raw = ::operator new(sizeof(Block) +
                                   (minClassBytes << cls));
        chunks_.push_back(raw);
        ++freshAllocs_;
        Block *b = static_cast<Block *>(raw);
        b->classIdx = static_cast<std::uint32_t>(cls);
        return b;
    }

    void
    recycle(Block *b) noexcept
    {
        b->next = free_[b->classIdx];
        free_[b->classIdx] = b;
        ++recycled_;
    }

    /** Called by RcAny when the last reference goes away. */
    static void
    release(Block *b) noexcept
    {
        if (--b->refs != 0)
            return;
        if (b->destroy)
            b->destroy(RcAny::payload(b));
        b->pool->recycle(b);
    }

    Block *free_[numClasses] = {};
    std::vector<void *> chunks_; ///< every block ever carved (for ~)
    std::uint64_t freshAllocs_ = 0;
    std::uint64_t poolHits_ = 0;
    std::uint64_t recycled_ = 0;
};

inline void
RcAny::reset() noexcept
{
    if (b_) {
        PayloadPool::release(b_);
        b_ = nullptr;
    }
}

template <typename T>
Rc<T>
RcAny::cast() const
{
    if (b_)
        ++refs(b_);
    return Rc<T>(b_);
}

} // namespace performa::sim

#endif // PERFORMA_SIM_POOL_HH
