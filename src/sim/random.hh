/**
 * @file
 * Deterministic random-number utilities: a seeded engine plus the
 * distributions the workload generator and fault models need (uniform,
 * exponential inter-arrival times, and a Zipf file-popularity sampler).
 */

#ifndef PERFORMA_SIM_RANDOM_HH
#define PERFORMA_SIM_RANDOM_HH

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <random>
#include <string_view>
#include <vector>

#include "sim/types.hh"

namespace performa::sim {

/**
 * splitmix64 finalizer: a fast, well-distributed 64-bit mixing
 * function (Steele et al., "Fast splittable pseudorandom number
 * generators"). The combining step of all seed derivation — campaign
 * per-job seeds and split RNG streams alike.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Derive one seed from a root seed plus any number of integer
 * identity components (version, fault kind, stream salt, ...).
 * Order-sensitive: (a, b) and (b, a) give different seeds. Never
 * returns 0 so the result is safe for engines that reject a zero
 * seed.
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t root_seed,
           std::initializer_list<std::uint64_t> components)
{
    std::uint64_t h = mix64(root_seed);
    for (std::uint64_t c : components)
        h = mix64(h ^ mix64(c));
    return h ? h : 0x9e3779b97f4a7c15ull;
}

/** Hash a string identity component (e.g. a load-profile name). */
constexpr std::uint64_t
seedComponent(std::string_view s)
{
    std::uint64_t h = 0x243f6a8885a308d3ull; // pi, nothing up the sleeve
    for (char c : s)
        h = mix64(h ^ static_cast<unsigned char>(c));
    return h;
}

/** Hash a double identity component (e.g. a load-scale axis) by bits. */
inline std::uint64_t
seedComponent(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/**
 * A seeded pseudo-random source. One Rng per simulation keeps runs
 * reproducible; components draw from the simulation's Rng rather than
 * owning their own.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedcafef00dULL) : engine_(seed) {}

    /** Re-seed the engine (restarts the deterministic stream). */
    void seed(std::uint64_t s) { engine_.seed(s); }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
    }

    /**
     * Exponentially distributed interval with the given mean, rounded
     * to at least one tick. Used for Poisson arrival processes and for
     * sampling fault inter-arrival times from MTTFs.
     */
    Tick
    exponential(Tick mean)
    {
        double m = static_cast<double>(mean);
        double d = std::exponential_distribution<double>(1.0 / m)(engine_);
        Tick t = static_cast<Tick>(d);
        return t == 0 ? 1 : t;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

/**
 * Zipf-distributed sampler over [0, n): item i is drawn with
 * probability proportional to 1 / (i + 1)^alpha.
 *
 * Uses a precomputed CDF and binary search, so sampling is O(log n).
 * Web-file popularity is well modelled by Zipf with alpha near 0.8,
 * which is what the PRESS evaluation traces exhibit.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of distinct items (files).
     * @param alpha Skew parameter; larger is more skewed.
     */
    ZipfSampler(std::size_t n, double alpha);

    /** Draw one item index in [0, n). */
    std::size_t sample(Rng &rng) const;

    /** Probability mass of item @p i. */
    double pmf(std::size_t i) const;

    /**
     * Fraction of accesses covered by the @p k most popular items.
     * Used to pre-warm caches analytically.
     */
    double coverage(std::size_t k) const;

    std::size_t size() const { return cdf_.size(); }
    double alpha() const { return alpha_; }

  private:
    double alpha_;
    std::vector<double> cdf_; ///< cdf_[i] = P(item <= i)
};

} // namespace performa::sim

#endif // PERFORMA_SIM_RANDOM_HH
