/**
 * @file
 * SmallFn: a move-only callable holder with small-buffer optimization,
 * used by the event engine for handler storage. The common event
 * handler in this tree — a lambda capturing `this` plus an id or two —
 * fits in the inline buffer and never touches the allocator; only
 * oversized or over-aligned captures fall back to the heap.
 */

#ifndef PERFORMA_SIM_SMALL_FN_HH
#define PERFORMA_SIM_SMALL_FN_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"

namespace performa::sim {

/**
 * A type-erased `void()` callable. Move-only (captures need not be
 * copyable), empty after being moved from, and invocable only while
 * non-empty. Holders whose captures are copyable can additionally be
 * clone()d — the snapshot/fork machinery duplicates a warmed event
 * queue's handlers this way.
 */
class SmallFn
{
  public:
    /**
     * Inline storage size. 56 bytes covers every handler in the tree
     * today (largest: the epoch-guard lambda in press/server.cc at 48
     * bytes) and keeps sizeof(SmallFn) at one cache line.
     */
    static constexpr std::size_t inlineBytes = 56;

    SmallFn() = default;

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                          std::is_invocable_r_v<void, D &>>>
    SmallFn(F &&f)
    {
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            ops_ = &inlineOps<D>;
        } else {
            D *p = new D(std::forward<F>(f));
            std::memcpy(buf_, &p, sizeof p);
            ops_ = &heapOps<D>;
        }
    }

    SmallFn(SmallFn &&o) noexcept { moveFrom(o); }

    SmallFn &
    operator=(SmallFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    /** Destroy the held callable, leaving the holder empty. */
    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /** @return true if a callable is held. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke the held callable (must be non-empty). */
    void operator()() { ops_->invoke(buf_); }

    /** @return true if the held callable can be clone()d (or empty). */
    bool cloneable() const { return !ops_ || ops_->copy != nullptr; }

    /**
     * Duplicate the held callable (copy-constructing its captures).
     * Every event handler in this tree captures only `this`, ids and
     * refcounted handles, all copyable; a non-copyable capture would
     * make its event unsnapshottable, so cloning one is a bug.
     */
    SmallFn
    clone() const
    {
        SmallFn out;
        if (ops_) {
            if (!ops_->copy)
                PANIC("cloning a SmallFn with non-copyable captures");
            ops_->copy(out.buf_, buf_);
            out.ops_ = ops_;
        }
        return out;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move the callable from src into raw dst, destroying src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        /** Copy src into raw dst; null when the callable is not
         *  copy-constructible (such a handler cannot be snapshotted). */
        void (*copy)(void *dst, const void *src);
    };

    /**
     * Inline storage additionally requires a nothrow move constructor
     * so relocation (slab growth, heap sifts) cannot throw.
     */
    template <typename D>
    static constexpr bool fitsInline =
        sizeof(D) <= inlineBytes &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    struct InlineImpl
    {
        static void invoke(void *b) { (*static_cast<D *>(b))(); }

        static void
        relocate(void *dst, void *src) noexcept
        {
            D *s = static_cast<D *>(src);
            ::new (dst) D(std::move(*s));
            s->~D();
        }

        static void destroy(void *b) noexcept { static_cast<D *>(b)->~D(); }

        static void
        copy(void *dst, const void *src)
        {
            if constexpr (std::is_copy_constructible_v<D>)
                ::new (dst) D(*static_cast<const D *>(src));
        }
    };

    template <typename D>
    struct HeapImpl
    {
        static D *
        get(void *b)
        {
            D *p;
            std::memcpy(&p, b, sizeof p);
            return p;
        }

        static void invoke(void *b) { (*get(b))(); }

        static void
        relocate(void *dst, void *src) noexcept
        {
            std::memcpy(dst, src, sizeof(D *));
        }

        static void destroy(void *b) noexcept { delete get(b); }

        static void
        copy(void *dst, const void *src)
        {
            if constexpr (std::is_copy_constructible_v<D>) {
                D *p;
                std::memcpy(&p, src, sizeof p);
                D *fresh = new D(*p);
                std::memcpy(dst, &fresh, sizeof fresh);
            }
        }
    };

    /** Copy op for @p Impl, or null when D is not copy-constructible. */
    template <typename D, typename Impl>
    static constexpr auto copyOp =
        std::is_copy_constructible_v<D> ? &Impl::copy : nullptr;

    template <typename D>
    static constexpr Ops inlineOps = {&InlineImpl<D>::invoke,
                                      &InlineImpl<D>::relocate,
                                      &InlineImpl<D>::destroy,
                                      copyOp<D, InlineImpl<D>>};

    template <typename D>
    static constexpr Ops heapOps = {&HeapImpl<D>::invoke,
                                    &HeapImpl<D>::relocate,
                                    &HeapImpl<D>::destroy,
                                    copyOp<D, HeapImpl<D>>};

    void
    moveFrom(SmallFn &o) noexcept
    {
        if (o.ops_) {
            o.ops_->relocate(buf_, o.buf_);
            ops_ = o.ops_;
            o.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte buf_[inlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace performa::sim

#endif // PERFORMA_SIM_SMALL_FN_HH
