/**
 * @file
 * The Simulation context: one event queue plus one random source.
 * Everything that happens in a run hangs off this object, which keeps
 * runs deterministic and lets tests construct isolated worlds.
 */

#ifndef PERFORMA_SIM_SIMULATION_HH
#define PERFORMA_SIM_SIMULATION_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace performa::sim {

/**
 * Owns the event queue and RNG for one simulated world.
 *
 * Components take a Simulation& at construction and use it to schedule
 * events and draw randomness. The Simulation outlives all components;
 * this is load-bearing for EventHandle, which indexes into the event
 * queue's record slab and must not outlive the queue.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1)
        : rng_(seed), seed_(seed)
    {}

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    EventQueue &events() { return events_; }
    Rng &rng() { return rng_; }
    PayloadPool &pool() { return pool_; }

    /** The seed this world was constructed with. */
    std::uint64_t seed() const { return seed_; }

    /**
     * A fresh Rng on an independent stream derived from this world's
     * seed and @p salt. Components with their own randomness (the
     * load-profile generators) draw from a split stream instead of
     * the shared rng(), so enabling them cannot perturb the draw
     * sequence — and therefore the results — of everything else.
     */
    Rng
    splitRng(std::uint64_t salt) const
    {
        return Rng(deriveSeed(seed_, {salt}));
    }

    /** Allocate a pooled message payload (see sim/pool.hh). */
    template <typename T, typename... Args>
    Rc<T>
    makePayload(Args &&...args)
    {
        return pool_.make<T>(std::forward<Args>(args)...);
    }

    /** Current simulated time. */
    Tick now() const { return events_.now(); }

    /**
     * Allocate a run-unique identifier (TCP connections, VIs, ...).
     * Run-scoped rather than process-global so concurrent
     * Simulations (campaign workers) stay race-free and each run's
     * identifiers are deterministic.
     */
    std::uint64_t allocId() { return nextId_++; }

    /** Convenience forwarders. */
    EventHandle
    schedule(Tick when, EventQueue::Handler fn)
    {
        return events_.schedule(when, std::move(fn));
    }

    EventHandle
    scheduleIn(Tick delay, EventQueue::Handler fn)
    {
        return events_.scheduleIn(delay, std::move(fn));
    }

    void runUntil(Tick limit) { events_.runUntil(limit); }

    /**
     * Snapshot state: RNG stream, id counter and the full event queue
     * (handlers cloned). The payload pool itself is NOT part of the
     * saved state — pooled blocks live at stable addresses until the
     * pool is destroyed, and the Rc handles inside cloned handlers
     * keep every block the snapshot needs referenced, so restoring is
     * purely a matter of refcounts settling. Pool counters
     * (freshAllocs/poolHits) therefore drift across forks; they are
     * diagnostics, not behaviour.
     */
    struct Saved
    {
        Rng rng;
        std::uint64_t nextId;
        EventQueue::Saved events;
    };

    Saved
    save() const
    {
        return Saved{rng_, nextId_, events_.save()};
    }

    void
    restore(const Saved &s)
    {
        rng_ = s.rng;
        nextId_ = s.nextId;
        events_.restore(s.events);
    }

  private:
    // The pool is declared before the event queue so it is destroyed
    // after it: pending events may hold Rc payload handles (in-flight
    // frames), and destroying them releases blocks back to the pool.
    PayloadPool pool_;
    EventQueue events_;
    Rng rng_;
    std::uint64_t seed_ = 1;
    std::uint64_t nextId_ = 1;
};

} // namespace performa::sim

#endif // PERFORMA_SIM_SIMULATION_HH
