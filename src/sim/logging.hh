/**
 * @file
 * Minimal logging and error-reporting helpers in the spirit of gem5's
 * base/logging.hh: panic() for internal invariant violations, fatal()
 * for user/configuration errors, plus an optional trace stream that
 * experiments can enable to watch protocol behaviour.
 */

#ifndef PERFORMA_SIM_LOGGING_HH
#define PERFORMA_SIM_LOGGING_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "sim/types.hh"

namespace performa::sim {

/**
 * Abort the process because an internal invariant was violated.
 * Use for conditions that indicate a bug in performa itself.
 */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/**
 * Exit the process because of an unusable configuration or input.
 * Use for conditions that are the caller's fault, not a bug.
 */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning; the run continues. */
void warnImpl(const char *file, int line, const std::string &msg);

namespace detail {

/** Concatenate any streamable arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

#define PANIC(...) \
    ::performa::sim::panicImpl(__FILE__, __LINE__, \
        ::performa::sim::detail::concat(__VA_ARGS__))

#define FATAL(...) \
    ::performa::sim::fatalImpl(__FILE__, __LINE__, \
        ::performa::sim::detail::concat(__VA_ARGS__))

#define WARN(...) \
    ::performa::sim::warnImpl(__FILE__, __LINE__, \
        ::performa::sim::detail::concat(__VA_ARGS__))

/**
 * Trace sink for protocol-level debugging.
 *
 * Tracing is disabled by default (experiments generate millions of
 * events); tests and examples can enable it to observe behaviour.
 */
class Trace
{
  public:
    /**
     * Globally enable or disable tracing. Atomic: the flag is the
     * one piece of cross-simulation global state, and campaign
     * workers running concurrent Simulations read it constantly.
     */
    static void enable(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** @return true if tracing is on. */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Emit one trace line, prefixed with the simulated time and a
     * component tag, e.g. "[12.0340s] tcp: connection 2->3 broken".
     */
    template <typename... Args>
    static void
    log(Tick now, const char *tag, Args &&...args)
    {
        if (!enabled())
            return;
        std::string body = detail::concat(std::forward<Args>(args)...);
        std::fprintf(stderr, "[%10.4fs] %s: %s\n", toSeconds(now), tag,
                     body.c_str());
    }

  private:
    static std::atomic<bool> enabled_;
};

} // namespace performa::sim

#endif // PERFORMA_SIM_LOGGING_HH
