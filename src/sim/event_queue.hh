/**
 * @file
 * The discrete-event engine at the heart of the simulated cluster.
 *
 * Every other subsystem (network, node OS, protocol stacks, servers,
 * clients, fault injector) expresses its behaviour as events scheduled
 * on a single EventQueue. Events at the same tick execute in schedule
 * order, which makes runs fully deterministic for a given seed.
 */

#ifndef PERFORMA_SIM_EVENT_QUEUE_HH
#define PERFORMA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace performa::sim {

/**
 * Handle to a scheduled event, usable to cancel it before it fires.
 * Default-constructed handles refer to no event and are safe to cancel.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** @return true if the handle refers to an event not yet fired. */
    bool pending() const;

  private:
    friend class EventQueue;

    struct State
    {
        bool cancelled = false;
        bool fired = false;
    };

    explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}

    std::shared_ptr<State> state_;
};

/**
 * A deterministic priority queue of timed callbacks.
 *
 * Two events scheduled for the same tick fire in the order they were
 * scheduled (FIFO tie-break on a sequence number).
 */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** @return the current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * Scheduling in the past is a bug and panics.
     */
    EventHandle schedule(Tick when, Handler fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    EventHandle scheduleIn(Tick delay, Handler fn);

    /**
     * Cancel a previously scheduled event. Cancelling an already-fired
     * or empty handle is a harmless no-op.
     */
    void cancel(EventHandle &h);

    /**
     * Run the single next event, advancing time to it.
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run every event scheduled at or before @p limit, then advance
     * the clock to exactly @p limit.
     */
    void runUntil(Tick limit);

    /** Run until the queue drains or @p limit is passed. */
    void runAll(Tick limit = maxTick);

    /** @return number of events still scheduled (including cancelled). */
    std::size_t pending() const { return heap_.size(); }

    /** @return total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Handler fn;
        std::shared_ptr<EventHandle::State> state;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop and execute the head entry (must exist, not cancelled). */
    void execute(Entry &&e);

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

} // namespace performa::sim

#endif // PERFORMA_SIM_EVENT_QUEUE_HH
