/**
 * @file
 * The discrete-event engine at the heart of the simulated cluster.
 *
 * Every other subsystem (network, node OS, protocol stacks, servers,
 * clients, fault injector) expresses its behaviour as events scheduled
 * on a single EventQueue. Events at the same tick execute in schedule
 * order, which makes runs fully deterministic for a given seed.
 *
 * Hot-path design: event state lives in a slab of reusable records
 * addressed by {slot, generation} handles, and the heap holds only
 * plain 24-byte {when, seq, slot, gen} entries. Scheduling a handler
 * whose captures fit SmallFn's inline buffer performs no allocation
 * once the slab has warmed up, and cancellation is a generation bump —
 * O(1), allocation-free. Cancelled entries are deleted lazily: they
 * are dropped when they reach the top of the heap, and when they ever
 * outnumber live entries the heap is compacted in one pass, so the
 * heap stays bounded at < 2x the number of live events even under
 * cancel-heavy workloads (TCP retransmit timers, request expiries).
 */

#ifndef PERFORMA_SIM_EVENT_QUEUE_HH
#define PERFORMA_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/small_fn.hh"
#include "sim/types.hh"

namespace performa::sim {

class EventQueue;

/**
 * Handle to a scheduled event, usable to cancel it before it fires.
 *
 * A handle is a trivially-copyable {queue, slot, generation} triple
 * into the queue's record slab; it owns nothing. The generation check
 * makes stale handles safe: once the event fires or is cancelled the
 * record's generation is bumped, so every outstanding copy of the
 * handle reports !pending() and cancels as a no-op, even after the
 * slot has been reused for a newer event (no ABA). Handles must not
 * outlive their EventQueue.
 *
 * Default-constructed handles refer to no event and are safe to cancel.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** @return true if the handle refers to an event not yet fired. */
    bool pending() const;

  private:
    friend class EventQueue;

    EventHandle(EventQueue *q, std::uint32_t slot, std::uint32_t gen)
        : queue_(q), slot_(slot), gen_(gen)
    {}

    EventQueue *queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * A deterministic priority queue of timed callbacks.
 *
 * Two events scheduled for the same tick fire in the order they were
 * scheduled (FIFO tie-break on a sequence number).
 */
class EventQueue
{
  public:
    using Handler = SmallFn;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** @return the current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * Scheduling in the past is a bug and panics.
     */
    EventHandle schedule(Tick when, Handler fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    EventHandle scheduleIn(Tick delay, Handler fn);

    /**
     * Cancel a previously scheduled event and clear @p h. Cancelling
     * an already-fired or empty handle is a harmless no-op.
     */
    void cancel(EventHandle &h);

    /**
     * Run the single next event, advancing time to it.
     * @return false if no live event remains.
     */
    bool runOne();

    /**
     * Run every event scheduled at or before @p limit, then advance
     * the clock to exactly @p limit.
     */
    void runUntil(Tick limit);

    /**
     * Run until no live event at or before @p limit remains. Unlike
     * runUntil, the clock is left at the last executed event. Never
     * executes an event scheduled after @p limit.
     */
    void runAll(Tick limit = maxTick);

    /** @return number of live (not cancelled, not yet fired) events. */
    std::size_t pending() const { return live_; }

    /**
     * @return heap entries held: live events plus lazily-deleted
     * cancelled ones awaiting compaction (introspection/benchmarks).
     */
    std::size_t heapSize() const { return heap_.size(); }

    /** @return total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * A deep copy of the queue's full state: clock, sequence counter,
     * the record slab (handlers clone()d), free list and heap. Taking
     * one does not disturb the live queue; restore() rewinds the queue
     * to it exactly, slot for slot, so outstanding EventHandle
     * {slot, gen} triples from snapshot time become valid again.
     */
    struct Saved;

    /** Capture the queue state (every pending handler must be
     *  cloneable — see SmallFn::clone). */
    Saved save() const;

    /** Rewind the queue to @p s, discarding the current state. */
    void restore(const Saved &s);

  private:
    friend class EventHandle;

    /** Slab cell: handler storage plus the slot's current generation. */
    struct Record
    {
        Handler fn;
        std::uint32_t gen = 0;
    };

    /** Heap entry: plain data; the callable stays in the slab. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    struct Later
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** @return true if @p e still refers to a live (uncancelled) event. */
    bool
    live(const HeapEntry &e) const
    {
        return records_[e.slot].gen == e.gen;
    }

    /** Drop cancelled entries from the top of the heap. */
    void pruneStaleHead();

    /** Pop the head entry off the heap (must exist). */
    HeapEntry popHead();

    /** Execute @p e: advance time, retire the slot, invoke the handler. */
    void fire(const HeapEntry &e);

    /** Rebuild the heap without cancelled entries when they dominate. */
    void maybeCompact();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t live_ = 0;
    std::vector<Record> records_;
    std::vector<std::uint32_t> freeSlots_;
    std::vector<HeapEntry> heap_;
};

struct EventQueue::Saved
{
    Tick now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    std::size_t live = 0;
    std::vector<Record> records; ///< handlers are clones
    std::vector<std::uint32_t> freeSlots;
    std::vector<HeapEntry> heap;
};

} // namespace performa::sim

#endif // PERFORMA_SIM_EVENT_QUEUE_HH
