/**
 * @file
 * Fundamental types shared across the simulator: simulated time,
 * identifiers, and unit helpers.
 */

#ifndef PERFORMA_SIM_TYPES_HH
#define PERFORMA_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace performa::sim {

/**
 * Simulated time in microseconds since the start of the run.
 *
 * A 64-bit microsecond tick covers ~584k years of simulated time, which
 * comfortably exceeds any MTTF in the paper's fault loads (Table 3).
 */
using Tick = std::uint64_t;

/** A tick value that is never reached; used as "no deadline". */
inline constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Convert microseconds to ticks (identity; exists for readability). */
constexpr Tick
usec(std::uint64_t us)
{
    return us;
}

/** Convert milliseconds to ticks. */
constexpr Tick
msec(std::uint64_t ms)
{
    return ms * 1000;
}

/** Convert seconds to ticks. */
constexpr Tick
sec(std::uint64_t s)
{
    return s * 1000 * 1000;
}

/** Convert minutes to ticks. */
constexpr Tick
minutes(std::uint64_t m)
{
    return sec(m * 60);
}

/** Convert hours to ticks. */
constexpr Tick
hours(std::uint64_t h)
{
    return minutes(h * 60);
}

/** Convert days to ticks. */
constexpr Tick
days(std::uint64_t d)
{
    return hours(d * 24);
}

/** Convert ticks to (floating point) seconds, for reporting. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

/** Identifier of a cluster node (0-based). */
using NodeId = std::uint32_t;

/** A NodeId that refers to no node. */
inline constexpr NodeId invalidNode = ~NodeId(0);

/** Identifier of a web file (document) in the synthetic file set. */
using FileId = std::uint32_t;

/** Monotonically increasing identifier for client requests. */
using RequestId = std::uint64_t;

} // namespace performa::sim

#endif // PERFORMA_SIM_TYPES_HH
