/**
 * @file
 * Small statistics helpers: online mean/min/max accumulation and
 * simple named counters, used for run summaries and microbenchmarks.
 */

#ifndef PERFORMA_SIM_STATS_HH
#define PERFORMA_SIM_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace performa::sim {

/**
 * Accumulates samples and reports count/mean/min/max/stddev without
 * storing the samples (Welford's online algorithm).
 */
class OnlineStats
{
  public:
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /**
     * @return the smallest sample, or NaN if no samples were added.
     * NaN (not 0.0) so an empty window is distinguishable from a real
     * zero-latency sample in summaries; check count() or std::isnan
     * before printing.
     */
    double
    min() const
    {
        return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
    }

    /** @return the largest sample, or NaN if no samples were added. */
    double
    max() const
    {
        return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
    }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    void
    reset()
    {
        *this = OnlineStats();
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace performa::sim

#endif // PERFORMA_SIM_STATS_HH
