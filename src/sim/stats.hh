/**
 * @file
 * Small statistics helpers: online mean/min/max accumulation and
 * simple named counters, used for run summaries and microbenchmarks.
 */

#ifndef PERFORMA_SIM_STATS_HH
#define PERFORMA_SIM_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace performa::sim {

/**
 * Accumulates samples and reports count/mean/min/max/stddev without
 * storing the samples (Welford's online algorithm).
 */
class OnlineStats
{
  public:
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    void
    reset()
    {
        *this = OnlineStats();
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace performa::sim

#endif // PERFORMA_SIM_STATS_HH
