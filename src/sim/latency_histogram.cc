#include "sim/latency_histogram.hh"

#include <bit>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace performa::sim {

LatencyHistogram::LatencyHistogram(LatencyHistogramConfig cfg)
    : cfg_(cfg), linearMax_(1ull << cfg.subBucketBits)
{
    if (cfg_.maxValue <= linearMax_)
        cfg_.maxValue = linearMax_;
    // Highest octave holding a representable value (maxValue - 1).
    std::uint64_t top = cfg_.maxValue - 1;
    topOctave_ = top ? 63u - static_cast<unsigned>(std::countl_zero(top))
                     : 0u;
    std::size_t octaves =
        topOctave_ >= cfg_.subBucketBits
            ? topOctave_ - cfg_.subBucketBits + 1
            : 0;
    // Linear region + per-octave sub-buckets + one overflow bucket.
    counts_.assign(linearMax_ + octaves * (linearMax_ / 2) + 1, 0);
}

std::size_t
LatencyHistogram::indexFor(std::uint64_t v) const
{
    if (v >= cfg_.maxValue)
        return counts_.size() - 1; // overflow
    if (v < linearMax_)
        return static_cast<std::size_t>(v);
    unsigned k = 63u - static_cast<unsigned>(std::countl_zero(v));
    unsigned s = cfg_.subBucketBits;
    return linearMax_ + (k - s) * (linearMax_ / 2) +
           ((v - (1ull << k)) >> (k - s + 1));
}

std::uint64_t
LatencyHistogram::bucketUpperBound(std::size_t idx) const
{
    if (idx + 1 == counts_.size())
        return std::numeric_limits<std::uint64_t>::max();
    if (idx < linearMax_)
        return idx;
    unsigned s = cfg_.subBucketBits;
    std::size_t o = (idx - linearMax_) / (linearMax_ / 2);
    std::size_t r = (idx - linearMax_) % (linearMax_ / 2);
    unsigned k = s + static_cast<unsigned>(o);
    std::uint64_t width = 1ull << (k - s + 1);
    return (1ull << k) + r * width + width - 1;
}

double
LatencyHistogram::quantile(double q) const
{
    if (total_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    if (rank == 0)
        rank = 1;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cum += counts_[i];
        if (cum >= rank) {
            std::uint64_t hi = bucketUpperBound(i);
            return static_cast<double>(hi < max_ ? hi : max_);
        }
    }
    return static_cast<double>(max_);
}

std::uint64_t
LatencyHistogram::countAtOrBelow(std::uint64_t value_us) const
{
    std::uint64_t c = 0;
    for (std::size_t i = 0; i + 1 < counts_.size(); ++i) {
        if (bucketUpperBound(i) > value_us)
            return c;
        c += counts_[i];
    }
    // Overflow bucket: everything there is <= the recorded maximum.
    if (counts_.back() && value_us >= max_)
        c += counts_.back();
    return c;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (!(cfg_ == other.cfg_))
        FATAL("LatencyHistogram::merge: bucket layouts differ");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    if (other.max_ > max_)
        max_ = other.max_;
}

void
LatencyHistogram::clear()
{
    counts_.assign(counts_.size(), 0);
    total_ = 0;
    sum_ = 0;
    max_ = 0;
}

const char *
latencyStageName(LatencyStage s)
{
    switch (s) {
      case LatencyStage::Connect:
        return "connect";
      case LatencyStage::Queue:
        return "queue";
      case LatencyStage::Service:
        return "service";
      case LatencyStage::Total:
        return "total";
    }
    return "?";
}

StageLatencyTimeline::StageLatencyTimeline()
    : StageLatencyTimeline(Config{})
{
}

StageLatencyTimeline::StageLatencyTimeline(Config cfg)
    : cfg_(cfg),
      cumulative_{{LatencyHistogram(cfg.hist), LatencyHistogram(cfg.hist),
                   LatencyHistogram(cfg.hist), LatencyHistogram(cfg.hist)}}
{
    if (cfg_.sliceWidth == 0)
        cfg_.sliceWidth = sec(1);
    if (cfg_.reserveSlices)
        growTo(cfg_.reserveSlices);
}

void
StageLatencyTimeline::growTo(std::size_t n)
{
    for (auto &v : slices_) {
        v.reserve(n);
        while (v.size() < n)
            v.emplace_back(cfg_.hist);
    }
}

LatencyHistogram
StageLatencyTimeline::window(LatencyStage s, Tick from, Tick to) const
{
    LatencyHistogram out(cfg_.hist);
    if (to <= from)
        return out;
    const auto &v = slices_[static_cast<int>(s)];
    std::size_t i0 = static_cast<std::size_t>(from / cfg_.sliceWidth);
    std::size_t i1 = static_cast<std::size_t>(
        (to + cfg_.sliceWidth - 1) / cfg_.sliceWidth);
    if (i1 > v.size())
        i1 = v.size();
    for (std::size_t i = i0; i < i1; ++i)
        out.merge(v[i]);
    return out;
}

} // namespace performa::sim
