#include "sim/logging.hh"

#include <cstdio>

namespace performa::sim {

std::atomic<bool> Trace::enabled_{false};

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace performa::sim
