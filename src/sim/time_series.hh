/**
 * @file
 * Time-bucketed counters used to record throughput and availability
 * over a run, mirroring the per-second throughput plots in the paper
 * (Figures 2-5).
 */

#ifndef PERFORMA_SIM_TIME_SERIES_HH
#define PERFORMA_SIM_TIME_SERIES_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace performa::sim {

/**
 * Counts discrete occurrences (e.g. requests served) into fixed-width
 * time buckets; reading the series back yields a rate-per-second curve.
 */
class TimeSeries
{
  public:
    /** @param bucket_width Width of each bucket (default one second). */
    explicit TimeSeries(Tick bucket_width = sec(1))
        : bucketWidth_(bucket_width)
    {}

    /** Record @p count occurrences at time @p t. */
    void
    record(Tick t, std::uint64_t count = 1)
    {
        std::size_t idx = static_cast<std::size_t>(t / bucketWidth_);
        if (idx >= buckets_.size())
            buckets_.resize(idx + 1, 0);
        buckets_[idx] += count;
    }

    /**
     * Pre-allocate capacity for @p buckets buckets so recording stays
     * allocation-free until time passes the reservation.
     */
    void reserve(std::size_t buckets) { buckets_.reserve(buckets); }

    /** Number of buckets touched so far. */
    std::size_t size() const { return buckets_.size(); }

    Tick bucketWidth() const { return bucketWidth_; }

    /** Raw count in bucket @p idx (0 if beyond the recorded range). */
    std::uint64_t
    count(std::size_t idx) const
    {
        return idx < buckets_.size() ? buckets_[idx] : 0;
    }

    /** Rate (occurrences per second) in bucket @p idx. */
    double
    rate(std::size_t idx) const
    {
        return static_cast<double>(count(idx)) / toSeconds(bucketWidth_);
    }

    /** Sum of counts over the half-open tick interval [from, to). */
    std::uint64_t total(Tick from, Tick to) const;

    /** Mean rate (per second) over the tick interval [from, to). */
    double meanRate(Tick from, Tick to) const;

  private:
    Tick bucketWidth_;
    std::vector<std::uint64_t> buckets_;
};

} // namespace performa::sim

#endif // PERFORMA_SIM_TIME_SERIES_HH
