#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace performa::sim {

bool
EventHandle::pending() const
{
    return queue_ && queue_->records_[slot_].gen == gen_;
}

EventHandle
EventQueue::schedule(Tick when, Handler fn)
{
    if (when < now_)
        PANIC("scheduling event in the past: ", when, " < ", now_);
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(records_.size());
        records_.emplace_back();
    }
    Record &r = records_[slot];
    r.fn = std::move(fn);
    heap_.push_back(HeapEntry{when, nextSeq_++, slot, r.gen});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    return EventHandle(this, slot, r.gen);
}

EventHandle
EventQueue::scheduleIn(Tick delay, Handler fn)
{
    return schedule(now_ + delay, std::move(fn));
}

void
EventQueue::cancel(EventHandle &h)
{
    if (h.queue_ == this && records_[h.slot_].gen == h.gen_) {
        Record &r = records_[h.slot_];
        // Bumping the generation invalidates the heap entry and every
        // outstanding copy of the handle in one step; the slot is
        // immediately reusable.
        ++r.gen;
        r.fn.reset(); // release captured state eagerly
        freeSlots_.push_back(h.slot_);
        --live_;
        maybeCompact();
    }
    h = EventHandle();
}

void
EventQueue::pruneStaleHead()
{
    while (!heap_.empty() && !live(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
    }
}

EventQueue::HeapEntry
EventQueue::popHead()
{
    HeapEntry e = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    return e;
}

void
EventQueue::fire(const HeapEntry &e)
{
    Record &r = records_[e.slot];
    now_ = e.when;
    ++r.gen; // handles to this event are stale from here on
    Handler fn = std::move(r.fn);
    freeSlots_.push_back(e.slot);
    --live_;
    ++executed_;
    // Invoke only after retiring the slot: the handler may schedule
    // more events, growing the slab and the heap.
    fn();
}

void
EventQueue::maybeCompact()
{
    // Lazy deletion keeps cancel O(1), but a cancel-heavy run (TCP
    // timers, request expiries) would otherwise carry dead entries
    // until their original due time. Rebuild once they outnumber the
    // live ones; the (when, seq) key survives the rebuild, so FIFO
    // tie-break order — and thus determinism — is unaffected.
    std::size_t stale = heap_.size() - live_;
    if (heap_.size() < 64 || stale * 2 <= heap_.size())
        return;
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const HeapEntry &e) {
                                   return !live(e);
                               }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), Later{});
}

bool
EventQueue::runOne()
{
    pruneStaleHead();
    if (heap_.empty())
        return false;
    fire(popHead());
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        pruneStaleHead();
        if (heap_.empty() || heap_.front().when > limit)
            break;
        fire(popHead());
    }
    if (now_ < limit)
        now_ = limit;
}

EventQueue::Saved
EventQueue::save() const
{
    Saved s;
    s.now = now_;
    s.nextSeq = nextSeq_;
    s.executed = executed_;
    s.live = live_;
    s.records.reserve(records_.size());
    for (const Record &r : records_)
        s.records.push_back(Record{r.fn.clone(), r.gen});
    s.freeSlots = freeSlots_;
    s.heap = heap_;
    return s;
}

void
EventQueue::restore(const Saved &s)
{
    now_ = s.now;
    nextSeq_ = s.nextSeq;
    executed_ = s.executed;
    live_ = s.live;
    // Rebuild the slab slot for slot (the slab may have grown past the
    // snapshot during a previous fork's run; extra slots are dropped).
    records_.clear();
    records_.reserve(s.records.size());
    for (const Record &r : s.records)
        records_.push_back(Record{r.fn.clone(), r.gen});
    freeSlots_ = s.freeSlots;
    heap_ = s.heap;
}

void
EventQueue::runAll(Tick limit)
{
    // Prune before the limit check: a cancelled head must not let an
    // event scheduled after @p limit execute (historical overshoot
    // bug — runOne() skips cancelled entries unconditionally).
    for (;;) {
        pruneStaleHead();
        if (heap_.empty() || heap_.front().when > limit)
            break;
        fire(popHead());
    }
}

} // namespace performa::sim
