#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace performa::sim {

bool
EventHandle::pending() const
{
    return state_ && !state_->cancelled && !state_->fired;
}

EventHandle
EventQueue::schedule(Tick when, Handler fn)
{
    if (when < now_)
        PANIC("scheduling event in the past: ", when, " < ", now_);
    auto state = std::make_shared<EventHandle::State>();
    heap_.push(Entry{when, nextSeq_++, std::move(fn), state});
    return EventHandle(std::move(state));
}

EventHandle
EventQueue::scheduleIn(Tick delay, Handler fn)
{
    return schedule(now_ + delay, std::move(fn));
}

void
EventQueue::cancel(EventHandle &h)
{
    if (h.state_)
        h.state_->cancelled = true;
    h.state_.reset();
}

void
EventQueue::execute(Entry &&e)
{
    now_ = e.when;
    e.state->fired = true;
    ++executed_;
    // Move the handler out before invoking: the handler may schedule
    // more events, growing the heap and invalidating references.
    Handler fn = std::move(e.fn);
    fn();
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        if (e.state->cancelled)
            continue;
        execute(std::move(e));
        return true;
    }
    return false;
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        if (e.state->cancelled)
            continue;
        execute(std::move(e));
    }
    if (now_ < limit)
        now_ = limit;
}

void
EventQueue::runAll(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        if (!runOne())
            break;
    }
}

} // namespace performa::sim
