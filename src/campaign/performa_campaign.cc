/**
 * @file
 * performa_campaign: CLI driver for the phase-1 measurement campaign.
 * Runs the full (PRESS version x fault kind) behaviour grid — plus
 * optional cluster-size and load-scale axes — sharded across a worker
 * thread pool, and writes the behaviour cache atomically.
 *
 * Results are bit-identical for any --jobs value: per-job seeds are
 * derived from (campaign seed, grid point), never from scheduling.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "campaign/phase1.hh"
#include "campaign/thread_pool.hh"
#include "core/scenarios.hh"

using namespace performa;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Measure the phase-1 behaviour grid (every PRESS version x fault\n"
        "kind) with fault-injection experiments sharded across a worker\n"
        "pool, and cache the results.\n"
        "\n"
        "options:\n"
        "  --jobs N       worker threads (default: PERFORMA_JOBS env,\n"
        "                 else hardware threads)\n"
        "  --cache PATH   behaviour cache file (default:\n"
        "                 PERFORMA_PHASE1_CACHE env, else\n"
        "                 performa_phase1.csv); extra axes get\n"
        "                 .nN / .xSCALE suffixes\n"
        "  --seed S       campaign seed (default 42)\n"
        "  --versions L   comma-separated version indices (Table 1\n"
        "                 order, 0-4; default: all)\n"
        "  --faults L     comma-separated fault-kind indices (Table 2\n"
        "                 order, 0-11; default: all)\n"
        "  --nodes LIST   comma-separated cluster sizes (default 4)\n"
        "  --scale LIST   comma-separated offered-load scales\n"
        "                 (default 1.0)\n"
        "  --profile NAME workload shape: steady (default), sessions,\n"
        "                 pareto, diurnal, flashcrowd; non-default\n"
        "                 shapes get a .pNAME cache suffix\n"
        "  --slo SPEC     latency SLO, e.g. p99=500ms (also p50/p90/\n"
        "                 p99.9; units s/ms/us). Records per-stage\n"
        "                 latency histograms, adds SLO columns to the\n"
        "                 cache (own .sloSPEC suffix), and prints the\n"
        "                 phase-2 P vs P_slo comparison\n"
        "  --fresh        re-measure everything, ignore cached rows\n"
        "  --net-stats    print per-port NIC counters (traffic and\n"
        "                 drops by cause) for each measured point\n"
        "  --list         print the grid and per-job seeds, then exit\n"
        "  --quiet        suppress per-job progress\n"
        "  --help         this text\n",
        argv0);
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

std::string
defaultCachePath()
{
    const char *env = std::getenv("PERFORMA_PHASE1_CACHE");
    return env ? env : "performa_phase1.csv";
}

/** Cache path for one (nodes, scale) combo: plain for the default. */
std::string
comboCachePath(const std::string &base, std::uint32_t nodes,
               double scale, const std::string &profile,
               const std::string &sloSpec)
{
    std::string path = base;
    if (nodes != 4)
        path += ".n" + std::to_string(nodes);
    if (scale != 1.0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, ".x%g", scale);
        path += buf;
    }
    if (!profile.empty() && profile != "steady")
        path += ".p" + profile;
    if (!sloSpec.empty()) {
        // SLO rows carry extra columns: never share a cache with a
        // plain campaign (its rows would satisfy the grid without
        // latency data).
        std::string tag = sloSpec;
        for (char &c : tag)
            if (c == '=' || c == '.')
                c = '_';
        path += ".slo" + tag;
    }
    return path;
}

/** Parse "p99=500ms" (p50/p90/p99/p99.9; units s/ms/us). */
std::optional<model::LatencySlo>
parseSlo(const std::string &spec)
{
    std::size_t eq = spec.find('=');
    if (eq == std::string::npos || spec.empty() || spec[0] != 'p')
        return std::nullopt;
    std::string q = spec.substr(1, eq - 1);
    char *qend = nullptr;
    double pct = std::strtod(q.c_str(), &qend);
    if (qend == q.c_str() || *qend != '\0' || pct <= 0 || pct >= 100)
        return std::nullopt;

    std::string th = spec.substr(eq + 1);
    char *tend = nullptr;
    double val = std::strtod(th.c_str(), &tend);
    if (tend == th.c_str() || val <= 0)
        return std::nullopt;
    std::string unit = tend;
    double us;
    if (unit == "s")
        us = val * 1e6;
    else if (unit == "ms" || unit.empty())
        us = val * 1e3;
    else if (unit == "us")
        us = val;
    else
        return std::nullopt;

    model::LatencySlo slo;
    slo.quantile = pct / 100.0;
    slo.thresholdUs = static_cast<std::uint64_t>(us);
    return slo;
}

/**
 * Post-campaign SLO analysis: per-point latency views, the phase-2
 * P vs P_slo comparison under the same-fault-load scenario (Fig. 6),
 * and any (version, fault) rankings that flip once performability is
 * defined over the latency SLO instead of raw throughput.
 */
void
printSloReport(const exp::BehaviorDb &db, const model::LatencySlo &slo,
               std::uint32_t numNodes)
{
    std::printf("\nlatency view (SLO: p%g <= %.6g ms):\n",
                slo.quantile * 100.0, slo.thresholdUs / 1000.0);
    for (press::Version v : press::allVersions) {
        for (fault::FaultKind k : fault::allFaultKinds) {
            if (!db.has(v, k))
                return; // incomplete grid: nothing to model
            const model::LatencySummary &ls = db.get(v, k).latency;
            if (!ls.present)
                return;
            std::printf(
                "  %-13s %-15s fracN %.4f p50 %7.1fms p99 %7.1fms"
                " | within-SLO A %.3f B %.3f C %.3f D %.3f E %.3f\n",
                press::versionName(v), fault::faultName(k),
                ls.fracWithinNormal, ls.p50Us / 1000.0,
                ls.p99Us / 1000.0, ls.fracWithin[model::StageA],
                ls.fracWithin[model::StageB],
                ls.fracWithin[model::StageC],
                ls.fracWithin[model::StageD],
                ls.fracWithin[model::StageE]);
        }
    }

    model::ScenarioOptions sopts;
    sopts.numNodes = static_cast<int>(numNodes);
    struct Row
    {
        press::Version v;
        model::PerfResult pr;
    };
    std::vector<Row> rows;
    for (press::Version v : press::allVersions)
        rows.push_back({v, model::evaluateScenario(v, db.lookup(),
                                                   sopts)});

    std::printf("\nperformability, throughput vs SLO-goodput "
                "(same fault load):\n");
    std::printf("  %-13s %9s %12s %9s %12s\n", "version", "Tn", "P",
                "Tn_slo", "P_slo");
    for (const Row &r : rows)
        std::printf("  %-13s %9.1f %12.1f %9.1f %12.1f\n",
                    press::versionName(r.v), r.pr.normalTput,
                    r.pr.performability, r.pr.sloNormalTput,
                    r.pr.sloPerformability);

    // Overall ranking flips.
    bool anyFlip = false;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        for (std::size_t j = i + 1; j < rows.size(); ++j) {
            bool byTput = rows[i].pr.performability >
                          rows[j].pr.performability;
            bool bySlo = rows[i].pr.sloPerformability >
                         rows[j].pr.sloPerformability;
            if (byTput != bySlo) {
                anyFlip = true;
                const Row &w = byTput ? rows[i] : rows[j];
                const Row &l = byTput ? rows[j] : rows[i];
                std::printf("  ranking flip: %s > %s on throughput-P "
                            "but %s > %s on SLO-P\n",
                            press::versionName(w.v),
                            press::versionName(l.v),
                            press::versionName(l.v),
                            press::versionName(w.v));
            }
        }
    }

    // Per-fault ranking flips: order versions by this fault's share
    // of unavailability vs its share of SLO unavailability.
    for (fault::FaultKind k : fault::allFaultKinds) {
        std::vector<std::pair<press::Version, std::pair<double, double>>>
            contrib;
        for (const Row &r : rows) {
            double u = 0, su = 0;
            for (const model::FaultContribution &c : r.pr.breakdown) {
                if (c.kind == k) {
                    u += c.unavailability;
                    su += c.sloUnavailability;
                }
            }
            contrib.push_back({r.v, {u, su}});
        }
        for (std::size_t i = 0; i < contrib.size(); ++i) {
            for (std::size_t j = i + 1; j < contrib.size(); ++j) {
                bool byTput = contrib[i].second.first <
                              contrib[j].second.first;
                bool bySlo = contrib[i].second.second <
                             contrib[j].second.second;
                if (byTput != bySlo) {
                    anyFlip = true;
                    auto &a = contrib[byTput ? i : j];
                    auto &b = contrib[byTput ? j : i];
                    std::printf(
                        "  ranking flip under %s: %s beats %s on "
                        "throughput unavailability (%.3g < %.3g) but "
                        "loses on SLO unavailability (%.3g > %.3g)\n",
                        fault::faultName(k),
                        press::versionName(a.first),
                        press::versionName(b.first), a.second.first,
                        b.second.first, a.second.second,
                        b.second.second);
                }
            }
        }
    }
    if (!anyFlip)
        std::printf("  no (version, fault) ranking flips under this "
                    "SLO\n");
}

std::string
fmtDuration(double s)
{
    char buf[32];
    if (s >= 60)
        std::snprintf(buf, sizeof buf, "%dm%02ds", int(s) / 60,
                      int(s) % 60);
    else
        std::snprintf(buf, sizeof buf, "%.1fs", s);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 0;
    std::string cache = defaultCachePath();
    std::uint64_t seed = 42;
    std::vector<std::uint32_t> nodeAxis = {4};
    std::vector<double> scaleAxis = {1.0};
    std::vector<press::Version> versionSubset;
    std::vector<fault::FaultKind> faultSubset;
    bool fresh = false, quiet = false, list = false, netStats = false;
    loadgen::LoadProfileSpec profile;
    std::string sloSpec;
    std::optional<model::LatencySlo> slo;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *opt) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", opt);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(value("--jobs"), nullptr, 10));
        } else if (arg == "--cache") {
            cache = value("--cache");
        } else if (arg == "--seed") {
            seed = std::strtoull(value("--seed"), nullptr, 10);
        } else if (arg == "--versions") {
            for (const std::string &tok : splitCsv(value("--versions"))) {
                unsigned long idx = std::strtoul(tok.c_str(), nullptr, 10);
                if (idx >= std::size(press::allVersions)) {
                    std::fprintf(stderr, "bad --versions index: %s\n",
                                 tok.c_str());
                    return 2;
                }
                versionSubset.push_back(press::allVersions[idx]);
            }
        } else if (arg == "--faults") {
            for (const std::string &tok : splitCsv(value("--faults"))) {
                unsigned long idx = std::strtoul(tok.c_str(), nullptr, 10);
                if (idx >= std::size(fault::allFaultKinds)) {
                    std::fprintf(stderr, "bad --faults index: %s\n",
                                 tok.c_str());
                    return 2;
                }
                faultSubset.push_back(fault::allFaultKinds[idx]);
            }
        } else if (arg == "--nodes") {
            nodeAxis.clear();
            for (const std::string &tok : splitCsv(value("--nodes")))
                nodeAxis.push_back(static_cast<std::uint32_t>(
                    std::strtoul(tok.c_str(), nullptr, 10)));
        } else if (arg == "--scale") {
            scaleAxis.clear();
            for (const std::string &tok : splitCsv(value("--scale")))
                scaleAxis.push_back(std::strtod(tok.c_str(), nullptr));
        } else if (arg == "--profile") {
            std::string name = value("--profile");
            auto p = loadgen::profileByName(name);
            if (!p) {
                std::fprintf(stderr, "unknown profile: %s\n",
                             name.c_str());
                return 2;
            }
            profile = *p;
        } else if (arg == "--slo") {
            sloSpec = value("--slo");
            slo = parseSlo(sloSpec);
            if (!slo) {
                std::fprintf(stderr,
                             "bad --slo spec (want e.g. p99=500ms): "
                             "%s\n",
                             sloSpec.c_str());
                return 2;
            }
        } else if (arg == "--fresh") {
            fresh = true;
        } else if (arg == "--net-stats") {
            netStats = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (nodeAxis.empty() || scaleAxis.empty()) {
        std::fprintf(stderr, "empty --nodes/--scale axis\n");
        return 2;
    }

    if (list) {
        for (std::uint32_t n : nodeAxis)
            for (double x : scaleAxis)
                for (press::Version v : press::allVersions)
                    for (fault::FaultKind k : fault::allFaultKinds)
                        std::printf(
                            "%-13s %-15s nodes=%u scale=%g "
                            "seed=%016llx\n",
                            press::versionName(v), fault::faultName(k),
                            n, x,
                            static_cast<unsigned long long>(
                                campaign::phase1Seed(seed, v, n, x,
                                                     profile.name)));
        return 0;
    }

    unsigned effective =
        jobs ? jobs : campaign::defaultWorkerCount();
    bool anyFailed = false;

    for (std::uint32_t n : nodeAxis) {
        for (double x : scaleAxis) {
            campaign::Phase1Options opts;
            opts.workers = jobs;
            opts.campaignSeed = seed;
            opts.numNodes = n;
            opts.loadScale = x;
            opts.fresh = fresh;
            opts.profile = profile;
            opts.slo = slo;
            opts.versions = versionSubset;
            opts.faults = faultSubset;
            std::size_t gridVersions = versionSubset.empty()
                                           ? std::size(press::allVersions)
                                           : versionSubset.size();
            std::size_t gridFaults = faultSubset.empty()
                                         ? std::size(fault::allFaultKinds)
                                         : faultSubset.size();
            std::string path =
                comboCachePath(cache, n, x, profile.name, sloSpec);
            std::printf("campaign: %zu-point grid, nodes=%u scale=%g "
                        "jobs=%u cache=%s\n",
                        gridVersions * gridFaults, n, x, effective,
                        path.c_str());
            if (netStats) {
                opts.netStats = [](press::Version v, fault::FaultKind k,
                                   const std::vector<net::PortStats>
                                       &ports) {
                    std::printf("net-stats %s x %s:\n",
                                press::versionName(v),
                                fault::faultName(k));
                    for (std::size_t p = 0; p < ports.size(); ++p) {
                        const net::PortStats &st = ports[p];
                        std::printf(
                            "  port %zu: sent %llu (%llu B) "
                            "rcvd %llu (%llu B) drops %llu "
                            "[port-down %llu link-down %llu "
                            "switch-down %llu in-flight %llu]\n",
                            p,
                            static_cast<unsigned long long>(
                                st.framesSent),
                            static_cast<unsigned long long>(
                                st.bytesSent),
                            static_cast<unsigned long long>(
                                st.framesReceived),
                            static_cast<unsigned long long>(
                                st.bytesReceived),
                            static_cast<unsigned long long>(st.drops()),
                            static_cast<unsigned long long>(
                                st.dropPortDown),
                            static_cast<unsigned long long>(
                                st.dropLinkDown),
                            static_cast<unsigned long long>(
                                st.dropSwitchDown),
                            static_cast<unsigned long long>(
                                st.dropDiedInFlight));
                    }
                };
            }
            if (!quiet) {
                opts.progress = [](const campaign::Progress &p) {
                    std::printf("  [%2zu/%2zu] %-7s %-32s %6.1fs"
                                "   elapsed %-7s eta %s\n",
                                p.done, p.total,
                                p.last->ok ? "done" : "FAILED",
                                p.last->label.c_str(),
                                p.last->wallSeconds,
                                fmtDuration(p.elapsedSeconds).c_str(),
                                fmtDuration(p.etaSeconds).c_str());
                    std::fflush(stdout);
                };
            }
            exp::BehaviorDb db;
            campaign::Phase1Result res =
                campaign::ensurePhase1(db, path, opts);
            std::printf("campaign: %zu measured, %zu cached, "
                        "%zu failed in %s\n",
                        res.measured, res.cached, res.failed,
                        fmtDuration(res.wallSeconds).c_str());
            for (const campaign::JobReport &f : res.failures)
                std::printf("  FAILED %s: %s\n", f.label.c_str(),
                            f.error.c_str());
            if (!res.ok())
                anyFailed = true;
            else if (slo)
                printSloReport(db, *slo, n);
        }
    }
    return anyFailed ? 1 : 0;
}
