/**
 * @file
 * performa_campaign: CLI driver for the phase-1 measurement campaign.
 * Runs the full (PRESS version x fault kind) behaviour grid — plus
 * optional cluster-size and load-scale axes — sharded across a worker
 * thread pool, and writes the behaviour cache atomically.
 *
 * Results are bit-identical for any --jobs value: per-job seeds are
 * derived from (campaign seed, grid point), never from scheduling.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/phase1.hh"
#include "campaign/thread_pool.hh"

using namespace performa;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Measure the phase-1 behaviour grid (every PRESS version x fault\n"
        "kind) with fault-injection experiments sharded across a worker\n"
        "pool, and cache the results.\n"
        "\n"
        "options:\n"
        "  --jobs N       worker threads (default: PERFORMA_JOBS env,\n"
        "                 else hardware threads)\n"
        "  --cache PATH   behaviour cache file (default:\n"
        "                 PERFORMA_PHASE1_CACHE env, else\n"
        "                 performa_phase1.csv); extra axes get\n"
        "                 .nN / .xSCALE suffixes\n"
        "  --seed S       campaign seed (default 42)\n"
        "  --nodes LIST   comma-separated cluster sizes (default 4)\n"
        "  --scale LIST   comma-separated offered-load scales\n"
        "                 (default 1.0)\n"
        "  --fresh        re-measure everything, ignore cached rows\n"
        "  --net-stats    print per-port NIC counters (traffic and\n"
        "                 drops by cause) for each measured point\n"
        "  --list         print the grid and per-job seeds, then exit\n"
        "  --quiet        suppress per-job progress\n"
        "  --help         this text\n",
        argv0);
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

std::string
defaultCachePath()
{
    const char *env = std::getenv("PERFORMA_PHASE1_CACHE");
    return env ? env : "performa_phase1.csv";
}

/** Cache path for one (nodes, scale) combo: plain for the default. */
std::string
comboCachePath(const std::string &base, std::uint32_t nodes,
               double scale)
{
    std::string path = base;
    if (nodes != 4)
        path += ".n" + std::to_string(nodes);
    if (scale != 1.0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, ".x%g", scale);
        path += buf;
    }
    return path;
}

std::string
fmtDuration(double s)
{
    char buf[32];
    if (s >= 60)
        std::snprintf(buf, sizeof buf, "%dm%02ds", int(s) / 60,
                      int(s) % 60);
    else
        std::snprintf(buf, sizeof buf, "%.1fs", s);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 0;
    std::string cache = defaultCachePath();
    std::uint64_t seed = 42;
    std::vector<std::uint32_t> nodeAxis = {4};
    std::vector<double> scaleAxis = {1.0};
    bool fresh = false, quiet = false, list = false, netStats = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *opt) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", opt);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(value("--jobs"), nullptr, 10));
        } else if (arg == "--cache") {
            cache = value("--cache");
        } else if (arg == "--seed") {
            seed = std::strtoull(value("--seed"), nullptr, 10);
        } else if (arg == "--nodes") {
            nodeAxis.clear();
            for (const std::string &tok : splitCsv(value("--nodes")))
                nodeAxis.push_back(static_cast<std::uint32_t>(
                    std::strtoul(tok.c_str(), nullptr, 10)));
        } else if (arg == "--scale") {
            scaleAxis.clear();
            for (const std::string &tok : splitCsv(value("--scale")))
                scaleAxis.push_back(std::strtod(tok.c_str(), nullptr));
        } else if (arg == "--fresh") {
            fresh = true;
        } else if (arg == "--net-stats") {
            netStats = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (nodeAxis.empty() || scaleAxis.empty()) {
        std::fprintf(stderr, "empty --nodes/--scale axis\n");
        return 2;
    }

    if (list) {
        for (std::uint32_t n : nodeAxis)
            for (double x : scaleAxis)
                for (press::Version v : press::allVersions)
                    for (fault::FaultKind k : fault::allFaultKinds)
                        std::printf(
                            "%-13s %-15s nodes=%u scale=%g "
                            "seed=%016llx\n",
                            press::versionName(v), fault::faultName(k),
                            n, x,
                            static_cast<unsigned long long>(
                                campaign::phase1Seed(seed, v, k, n, x)));
        return 0;
    }

    unsigned effective =
        jobs ? jobs : campaign::defaultWorkerCount();
    bool anyFailed = false;

    for (std::uint32_t n : nodeAxis) {
        for (double x : scaleAxis) {
            campaign::Phase1Options opts;
            opts.workers = jobs;
            opts.campaignSeed = seed;
            opts.numNodes = n;
            opts.loadScale = x;
            opts.fresh = fresh;
            std::string path = comboCachePath(cache, n, x);
            std::printf("campaign: %zu-point grid, nodes=%u scale=%g "
                        "jobs=%u cache=%s\n",
                        std::size(press::allVersions) *
                            std::size(fault::allFaultKinds),
                        n, x, effective, path.c_str());
            if (netStats) {
                opts.netStats = [](press::Version v, fault::FaultKind k,
                                   const std::vector<net::PortStats>
                                       &ports) {
                    std::printf("net-stats %s x %s:\n",
                                press::versionName(v),
                                fault::faultName(k));
                    for (std::size_t p = 0; p < ports.size(); ++p) {
                        const net::PortStats &st = ports[p];
                        std::printf(
                            "  port %zu: sent %llu (%llu B) "
                            "rcvd %llu (%llu B) drops %llu "
                            "[port-down %llu link-down %llu "
                            "switch-down %llu in-flight %llu]\n",
                            p,
                            static_cast<unsigned long long>(
                                st.framesSent),
                            static_cast<unsigned long long>(
                                st.bytesSent),
                            static_cast<unsigned long long>(
                                st.framesReceived),
                            static_cast<unsigned long long>(
                                st.bytesReceived),
                            static_cast<unsigned long long>(st.drops()),
                            static_cast<unsigned long long>(
                                st.dropPortDown),
                            static_cast<unsigned long long>(
                                st.dropLinkDown),
                            static_cast<unsigned long long>(
                                st.dropSwitchDown),
                            static_cast<unsigned long long>(
                                st.dropDiedInFlight));
                    }
                };
            }
            if (!quiet) {
                opts.progress = [](const campaign::Progress &p) {
                    std::printf("  [%2zu/%2zu] %-7s %-32s %6.1fs"
                                "   elapsed %-7s eta %s\n",
                                p.done, p.total,
                                p.last->ok ? "done" : "FAILED",
                                p.last->label.c_str(),
                                p.last->wallSeconds,
                                fmtDuration(p.elapsedSeconds).c_str(),
                                fmtDuration(p.etaSeconds).c_str());
                    std::fflush(stdout);
                };
            }
            exp::BehaviorDb db;
            campaign::Phase1Result res =
                campaign::ensurePhase1(db, path, opts);
            std::printf("campaign: %zu measured, %zu cached, "
                        "%zu failed in %s\n",
                        res.measured, res.cached, res.failed,
                        fmtDuration(res.wallSeconds).c_str());
            for (const campaign::JobReport &f : res.failures)
                std::printf("  FAILED %s: %s\n", f.label.c_str(),
                            f.error.c_str());
            if (!res.ok())
                anyFailed = true;
        }
    }
    return anyFailed ? 1 : 0;
}
