#include "campaign/runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <unordered_map>

#include "campaign/thread_pool.hh"

namespace performa::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

CampaignReport
runCampaign(const std::vector<Job> &jobs, const RunnerConfig &cfg)
{
    CampaignReport report;
    report.jobs.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        report.jobs[i].index = i;
        report.jobs[i].label = jobs[i].label;
        report.jobs[i].tag = jobs[i].tag;
    }
    if (jobs.empty())
        return report;

    Clock::time_point t0 = Clock::now();
    // Results land in per-job slots; `state_mu` only guards the
    // shared progress counters and the callback, so job execution
    // itself runs lock-free and in parallel.
    std::mutex state_mu;
    std::size_t done = 0;
    double units_done = 0;
    std::vector<char> completed(jobs.size(), 0);
    std::atomic<bool> abandon{false};

    double units_total = 0;
    for (const Job &j : jobs)
        units_total += j.units;

    // Execution groups: each strand becomes one sequential group (its
    // jobs run in submission order on a single worker); strandless
    // jobs are their own singleton groups.
    std::vector<std::vector<std::size_t>> groups;
    std::unordered_map<std::string, std::size_t> strandGroup;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].strand.empty()) {
            groups.push_back({i});
            continue;
        }
        auto [it, fresh] =
            strandGroup.try_emplace(jobs[i].strand, groups.size());
        if (fresh)
            groups.push_back({i});
        else
            groups[it->second].push_back(i);
    }

    unsigned workers = cfg.workers ? cfg.workers : defaultWorkerCount();
    {
        ThreadPool pool(workers);
        for (const auto &group : groups) {
            pool.submit([&, group] {
                for (std::size_t i : group) {
                    if (abandon.load(std::memory_order_relaxed))
                        break; // remaining strand jobs stay skipped
                    const Job &job = jobs[i];
                    JobReport &jr = report.jobs[i];
                    Clock::time_point js = Clock::now();
                    try {
                        if (job.work)
                            job.work(job);
                        jr.ok = true;
                    } catch (const std::exception &e) {
                        jr.ok = false;
                        jr.error = e.what();
                    } catch (...) {
                        jr.ok = false;
                        jr.error = "unknown exception";
                    }
                    jr.wallSeconds = secondsSince(js);

                    std::lock_guard<std::mutex> lk(state_mu);
                    completed[i] = 1;
                    ++done;
                    units_done += job.units;
                    if (!jr.ok) {
                        ++report.failed;
                        if (cfg.cancelOnFailure) {
                            abandon.store(true,
                                          std::memory_order_relaxed);
                            pool.cancel();
                        }
                    }
                    if (cfg.progress) {
                        Progress p;
                        p.done = done;
                        p.total = jobs.size();
                        p.failed = report.failed;
                        p.unitsDone = units_done;
                        p.unitsTotal = units_total;
                        p.elapsedSeconds = secondsSince(t0);
                        p.etaSeconds =
                            units_done > 0
                                ? p.elapsedSeconds / units_done *
                                      (units_total - units_done)
                                : 0.0;
                        p.last = &jr;
                        cfg.progress(p);
                    }
                }
            });
        }
        pool.drain();
    } // joins workers

    for (std::size_t i = 0; i < jobs.size(); ++i)
        if (!completed[i])
            ++report.skipped;
    report.wallSeconds = secondsSince(t0);
    return report;
}

} // namespace performa::campaign
