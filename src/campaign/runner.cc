#include "campaign/runner.hh"

#include <chrono>
#include <exception>
#include <mutex>

#include "campaign/thread_pool.hh"

namespace performa::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

CampaignReport
runCampaign(const std::vector<Job> &jobs, const RunnerConfig &cfg)
{
    CampaignReport report;
    report.jobs.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        report.jobs[i].index = i;
        report.jobs[i].label = jobs[i].label;
        report.jobs[i].tag = jobs[i].tag;
    }
    if (jobs.empty())
        return report;

    Clock::time_point t0 = Clock::now();
    // Results land in per-job slots; `state_mu` only guards the
    // shared progress counters and the callback, so job execution
    // itself runs lock-free and in parallel.
    std::mutex state_mu;
    std::size_t done = 0;
    std::vector<char> completed(jobs.size(), 0);

    unsigned workers = cfg.workers ? cfg.workers : defaultWorkerCount();
    {
        ThreadPool pool(workers);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            pool.submit([&, i] {
                const Job &job = jobs[i];
                JobReport &jr = report.jobs[i];
                Clock::time_point js = Clock::now();
                try {
                    if (job.work)
                        job.work(job);
                    jr.ok = true;
                } catch (const std::exception &e) {
                    jr.ok = false;
                    jr.error = e.what();
                } catch (...) {
                    jr.ok = false;
                    jr.error = "unknown exception";
                }
                jr.wallSeconds = secondsSince(js);

                std::lock_guard<std::mutex> lk(state_mu);
                completed[i] = 1;
                ++done;
                if (!jr.ok) {
                    ++report.failed;
                    if (cfg.cancelOnFailure)
                        pool.cancel();
                }
                if (cfg.progress) {
                    Progress p;
                    p.done = done;
                    p.total = jobs.size();
                    p.failed = report.failed;
                    p.elapsedSeconds = secondsSince(t0);
                    p.etaSeconds =
                        done ? p.elapsedSeconds / double(done) *
                                   double(jobs.size() - done)
                             : 0.0;
                    p.last = &jr;
                    cfg.progress(p);
                }
            });
        }
        pool.drain();
    } // joins workers

    for (std::size_t i = 0; i < jobs.size(); ++i)
        if (!completed[i])
            ++report.skipped;
    report.wallSeconds = secondsSince(t0);
    return report;
}

} // namespace performa::campaign
