#include "campaign/thread_pool.hh"

#include <cstdlib>
#include <string>

namespace performa::campaign {

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
        queue_.clear();
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_ || cancelled_)
            return;
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::cancel()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        cancelled_ = true;
        queue_.clear();
    }
    // Drain waiters may be blocked on a now-empty queue.
    idle_.notify_all();
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lk(mu_);
    idle_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

bool
ThreadPool::cancelled() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return cancelled_;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lk(mu_);
            wake_.wait(lk, [this] {
                return stopping_ || !queue_.empty();
            });
            if (stopping_)
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::lock_guard<std::mutex> lk(mu_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idle_.notify_all();
        }
    }
}

unsigned
defaultWorkerCount()
{
    if (const char *env = std::getenv("PERFORMA_JOBS")) {
        char *end = nullptr;
        long n = std::strtol(env, &end, 10);
        if (end && *end == '\0' && n > 0)
            return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace performa::campaign
