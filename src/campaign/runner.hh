/**
 * @file
 * The campaign runner: shards a vector of independent, deterministic
 * jobs across a ThreadPool, captures per-job failures without killing
 * the campaign, and streams structured progress (done/total, elapsed,
 * ETA, per-job wall time) through a serialized callback.
 *
 * Determinism contract: a job's observable result may depend only on
 * its own inputs (label, seed, captured state) — never on worker
 * count, submission order, or completion order. The runner enforces
 * the frame for this (per-job seeds, indexed result slots); the
 * phase-1 grid driver (phase1.hh) supplies seeds that are pure
 * functions of (campaign seed, job identity).
 */

#ifndef PERFORMA_CAMPAIGN_RUNNER_HH
#define PERFORMA_CAMPAIGN_RUNNER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace performa::campaign {

/** One unit of campaign work. */
struct Job
{
    /** Human-readable identity, e.g. "TCP x link-down". */
    std::string label;
    /**
     * The job's RNG seed — derived by the campaign author from the
     * campaign seed and the job's identity (see seed.hh), never from
     * its position in the queue.
     */
    std::uint64_t seed = 0;
    /** Opaque caller identity, echoed back in the JobReport. */
    std::uint64_t tag = 0;
    /**
     * Sequencing key: jobs sharing a non-empty strand run
     * sequentially, in submission order, on one worker — e.g. a
     * warm-up job followed by the fault runs forked from its
     * snapshot. Jobs with an empty strand run independently.
     */
    std::string strand;
    /**
     * Relative work weight for progress/ETA accounting. A shared
     * warm-up job carries its own (one-off) weight, so the ETA does
     * not count the warm-up once per fault.
     */
    double units = 1.0;
    /** The work. May throw; the runner records, the campaign lives. */
    std::function<void(const Job &)> work;
};

/** What happened to one job. */
struct JobReport
{
    std::size_t index = 0;  ///< position in the submitted job vector
    std::string label;
    std::uint64_t tag = 0;  ///< copied from the Job
    bool ok = false;
    std::string error;      ///< exception message when !ok
    double wallSeconds = 0; ///< wall-clock time inside work()
};

/** A progress snapshot, delivered once per completed job. */
struct Progress
{
    std::size_t done = 0;   ///< jobs finished (ok or failed)
    std::size_t total = 0;
    std::size_t failed = 0;
    /** Work-weight accounting (sums of Job::units): a shared warm-up
     *  counts once, not once per dependent fault job. */
    double unitsDone = 0;
    double unitsTotal = 0;
    double elapsedSeconds = 0;
    /** Remaining-work estimate over units:
     *  elapsed/unitsDone * (unitsTotal-unitsDone). */
    double etaSeconds = 0;
    /** The job that just finished. */
    const JobReport *last = nullptr;
};

using ProgressFn = std::function<void(const Progress &)>;

struct RunnerConfig
{
    /** Worker threads; 0 means defaultWorkerCount(). */
    unsigned workers = 0;
    /**
     * Invoked after each job completes. Calls are serialized (one at
     * a time) but arrive in completion order, which varies with
     * worker count — don't let output depend on it.
     */
    ProgressFn progress;
    /** Abandon queued jobs after the first failure. */
    bool cancelOnFailure = false;
};

/** Everything a campaign run produces. */
struct CampaignReport
{
    /** One report per submitted job, in submission order. */
    std::vector<JobReport> jobs;
    std::size_t failed = 0;
    std::size_t skipped = 0; ///< cancelled before starting
    double wallSeconds = 0;

    bool allOk() const { return failed == 0 && skipped == 0; }
};

/**
 * Run every job to completion (or cancellation) and return the
 * per-job reports. Blocking; thread-safe for concurrent campaigns.
 */
CampaignReport runCampaign(const std::vector<Job> &jobs,
                           const RunnerConfig &cfg = {});

} // namespace performa::campaign

#endif // PERFORMA_CAMPAIGN_RUNNER_HH
