/**
 * @file
 * The phase-1 measurement campaign: every (PRESS version, fault kind)
 * pair of the study, measured as independent fault-injection
 * experiments sharded across a worker pool. This is the parallel
 * engine behind BehaviorDb::ensureAll and the performa_campaign CLI.
 *
 * Determinism contract: each combination's RNG seed is a pure
 * function of (campaign seed, version, cluster size, load scale,
 * profile) — see phase1Seed() — and completed behaviours are merged
 * into the BehaviorDb in key order, so the resulting database (and
 * its saved CSV) is byte-identical for any worker count.
 *
 * Warm-up sharing: the fault kind does NOT participate in the seed,
 * so every fault of one (version, nodes, load, profile) combination
 * sees the same world up to the injection point. The campaign
 * exploits this by running the fault-free warm phase once per
 * combination, snapshotting it (sim/snapshot.hh), and forking each
 * fault run from the snapshot on the same worker strand.
 */

#ifndef PERFORMA_CAMPAIGN_PHASE1_HH
#define PERFORMA_CAMPAIGN_PHASE1_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "campaign/runner.hh"
#include "exp/behavior_db.hh"
#include "loadgen/load_profile.hh"
#include "net/network.hh"

namespace performa::campaign {

/**
 * Per-combination seed: one per (version, nodes, load, profile) —
 * shared by every fault kind so the whole fault grid can fork from
 * one warmed snapshot. Pure; order-independent. The profile name
 * participates only when it names a non-default shape ("" and
 * "steady" derive the same seed), so the default grid stays
 * byte-identical. The latency SLO never enters the seed: it is pure
 * observation, and the throughput columns of an SLO campaign must
 * match the plain one's.
 */
std::uint64_t phase1Seed(std::uint64_t campaign_seed, press::Version v,
                         std::uint32_t num_nodes = 4,
                         double load_scale = 1.0,
                         const std::string &profile = {});

/** Pack a grid point into a Job::tag (and back from a JobReport). */
std::uint64_t phase1Tag(press::Version v, fault::FaultKind k);
exp::BehaviorDb::Key phase1TagKey(std::uint64_t tag);

/** Job::tag of the shared per-combination warm-up jobs (progress
 *  consumers that map tags back to grid points must skip it). */
inline constexpr std::uint64_t kWarmupJobTag = ~0ull;

/** One phase-1 campaign's parameters. */
struct Phase1Options
{
    /** Worker threads; 0 means PERFORMA_JOBS / hardware threads. */
    unsigned workers = 0;
    /** Root seed every per-job seed is derived from. */
    std::uint64_t campaignSeed = 42;

    /** Grid subset; empty means all five Table 1 versions. */
    std::vector<press::Version> versions;
    /** Grid subset; empty means all Table 2 fault kinds. */
    std::vector<fault::FaultKind> faults;

    /** Optional extra axes (defaults reproduce the paper's testbed). */
    std::uint32_t numNodes = 4;
    double loadScale = 1.0; ///< scales the saturating offered load

    /** Workload shape (default: the paper's flat open-loop load). */
    loadgen::LoadProfileSpec profile;
    /** Record latencies and attach SLO columns to the behaviours. */
    std::optional<model::LatencySlo> slo;

    /** Re-measure everything, ignoring cached rows. */
    bool fresh = false;

    /** Streamed per-job progress (serialized; completion order). */
    ProgressFn progress;

    /**
     * Optional NIC-counter sink: after the campaign barrier, called
     * once per freshly measured grid point (in grid order) with the
     * experiment's end-of-run intra-cluster port stats. Ignored when
     * measureFn is overridden (the override produces no stats).
     */
    std::function<void(press::Version, fault::FaultKind,
                       const std::vector<net::PortStats> &)>
        netStats;

    /**
     * Experiment-runner override, for tests: maps a fully-built
     * config (seed already derived) to a measured behaviour. Defaults
     * to exp::runExperiment + exp::extractBehavior.
     */
    std::function<model::MeasuredBehavior(const exp::ExperimentConfig &)>
        measureFn;
};

/** What a phase-1 campaign did. */
struct Phase1Result
{
    std::size_t measured = 0; ///< jobs run and merged
    std::size_t cached = 0;   ///< grid points already in the cache
    std::size_t failed = 0;   ///< jobs that threw; not merged
    std::vector<JobReport> failures;
    double wallSeconds = 0;

    bool ok() const { return failed == 0; }
};

/**
 * Canonical cache fingerprint for one campaign's options: the seed
 * scheme version plus every axis a cached row's bytes depend on
 * (nodes, load scale, profile, SLO). Stamped into saved caches and
 * checked on load, so a cache written under a different scheme or
 * grid is re-measured instead of silently merged.
 */
std::string phase1Fingerprint(const Phase1Options &opts);

/** The experiment config for one grid point, combination seed applied. */
exp::ExperimentConfig phase1Config(press::Version v, fault::FaultKind k,
                                   const Phase1Options &opts);

/**
 * The fault-free warm-up config for one combination: the common
 * prefix of every fault's phase1Config (same seed, same world, no
 * fault), sized to the longest fault's run so one snapshot serves the
 * whole grid.
 */
exp::ExperimentConfig
phase1WarmConfig(press::Version v,
                 const std::vector<fault::FaultKind> &faults,
                 const Phase1Options &opts = {});

/**
 * Ensure @p db holds a behaviour for every grid point: load
 * @p cache_path when it exists, measure the missing points in
 * parallel, merge them in deterministic key order, and atomically
 * rewrite the cache. An empty @p cache_path disables caching.
 */
Phase1Result ensurePhase1(exp::BehaviorDb &db,
                          const std::string &cache_path,
                          const Phase1Options &opts = {});

} // namespace performa::campaign

#endif // PERFORMA_CAMPAIGN_PHASE1_HH
