/**
 * @file
 * Deterministic per-job seed derivation. A campaign shards many
 * independent experiments across worker threads; every job's RNG seed
 * must be a pure function of the campaign seed and the job's identity
 * so results are bit-identical regardless of worker count, submission
 * order, or completion order.
 */

#ifndef PERFORMA_CAMPAIGN_SEED_HH
#define PERFORMA_CAMPAIGN_SEED_HH

#include <bit>
#include <cstdint>
#include <initializer_list>

namespace performa::campaign {

/**
 * splitmix64 finalizer: a fast, well-distributed 64-bit mixing
 * function (Steele et al., "Fast splittable pseudorandom number
 * generators"). Used as the combining step of seed derivation.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Derive one job seed from the campaign seed plus any number of
 * integer identity components (version, fault kind, cluster size,
 * ...). Order-sensitive: (a, b) and (b, a) give different seeds.
 * Never returns 0 so the result is safe for engines that reject a
 * zero seed.
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t campaign_seed,
           std::initializer_list<std::uint64_t> components)
{
    std::uint64_t h = mix64(campaign_seed);
    for (std::uint64_t c : components)
        h = mix64(h ^ mix64(c));
    return h ? h : 0x9e3779b97f4a7c15ull;
}

/** Hash a double identity component (e.g. a load-scale axis) by bits. */
inline std::uint64_t
seedComponent(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

} // namespace performa::campaign

#endif // PERFORMA_CAMPAIGN_SEED_HH
