/**
 * @file
 * Deterministic per-job seed derivation. A campaign shards many
 * independent experiments across worker threads; every job's RNG seed
 * must be a pure function of the campaign seed and the job's identity
 * so results are bit-identical regardless of worker count, submission
 * order, or completion order.
 *
 * The primitives (splitmix64 mixing, component derivation) live in
 * sim/random.hh so the simulation core can split per-generator RNG
 * streams with the same scheme; this header re-exports them under the
 * campaign namespace for the existing call sites.
 */

#ifndef PERFORMA_CAMPAIGN_SEED_HH
#define PERFORMA_CAMPAIGN_SEED_HH

#include "sim/random.hh"

namespace performa::campaign {

using sim::deriveSeed;
using sim::mix64;
using sim::seedComponent;

} // namespace performa::campaign

#endif // PERFORMA_CAMPAIGN_SEED_HH
