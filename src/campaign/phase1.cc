#include "campaign/phase1.hh"

#include <cstdio>
#include <deque>
#include <iterator>
#include <memory>
#include <stdexcept>

#include "campaign/seed.hh"
#include "exp/experiment.hh"
#include "exp/stages.hh"

namespace performa::campaign {

std::uint64_t
phase1Seed(std::uint64_t campaign_seed, press::Version v,
           std::uint32_t num_nodes, double load_scale,
           const std::string &profile)
{
    // Version 2 of the derivation: the fault kind no longer
    // participates, so every fault of one (version, nodes, load,
    // profile) combination shares a seed — and therefore a warm-up —
    // and the grid can fork from a single warmed snapshot. The
    // leading component is bumped from the v1 scheme so stale caches
    // can't masquerade as fresh. The default profile contributes
    // nothing, keeping "" and "steady" identical.
    if (profile.empty() || profile == "steady")
        return deriveSeed(campaign_seed,
                          {2ull, static_cast<std::uint64_t>(v),
                           static_cast<std::uint64_t>(num_nodes),
                           seedComponent(load_scale)});
    return deriveSeed(campaign_seed,
                      {2ull, static_cast<std::uint64_t>(v),
                       static_cast<std::uint64_t>(num_nodes),
                       seedComponent(load_scale),
                       seedComponent(profile)});
}

std::uint64_t
phase1Tag(press::Version v, fault::FaultKind k)
{
    return (static_cast<std::uint64_t>(v) << 32) |
           static_cast<std::uint32_t>(k);
}

exp::BehaviorDb::Key
phase1TagKey(std::uint64_t tag)
{
    return {static_cast<press::Version>(tag >> 32),
            static_cast<fault::FaultKind>(tag & 0xffffffffu)};
}

std::string
phase1Fingerprint(const Phase1Options &opts)
{
    // Keep the format append-only: consumers compare the whole string
    // for equality, so any change here (like any seed-scheme bump)
    // deliberately invalidates every existing cache.
    char buf[160];
    if (opts.slo)
        std::snprintf(buf, sizeof buf,
                      "seed-scheme=2 nodes=%u scale=%g profile=%s "
                      "slo=p%g@%lluus",
                      opts.numNodes, opts.loadScale,
                      opts.profile.name.empty()
                          ? "steady"
                          : opts.profile.name.c_str(),
                      opts.slo->quantile * 100.0,
                      static_cast<unsigned long long>(
                          opts.slo->thresholdUs));
    else
        std::snprintf(buf, sizeof buf,
                      "seed-scheme=2 nodes=%u scale=%g profile=%s "
                      "slo=none",
                      opts.numNodes, opts.loadScale,
                      opts.profile.name.empty()
                          ? "steady"
                          : opts.profile.name.c_str());
    return buf;
}

exp::ExperimentConfig
phase1Config(press::Version v, fault::FaultKind k,
             const Phase1Options &opts)
{
    exp::ExperimentConfig cfg = exp::experimentFor(v, k);
    cfg.cluster.press.numNodes = opts.numNodes;
    cfg.workload.requestRate *= opts.loadScale;
    cfg.profile = opts.profile;
    cfg.seed = phase1Seed(opts.campaignSeed, v, opts.numNodes,
                          opts.loadScale, opts.profile.name);
    return cfg;
}

exp::ExperimentConfig
phase1WarmConfig(press::Version v,
                 const std::vector<fault::FaultKind> &faults,
                 const Phase1Options &opts)
{
    // Any fault's config works as the base: everything before the
    // injection point (seed, workload, cluster, injectAt) is
    // fault-independent by construction.
    exp::ExperimentConfig cfg =
        phase1Config(v, faults.empty() ? fault::FaultKind::AppCrash
                                       : faults.front(),
                     opts);
    cfg.fault.reset();
    for (fault::FaultKind k : faults) {
        exp::ExperimentConfig c = phase1Config(v, k, opts);
        if (c.duration > cfg.duration)
            cfg.duration = c.duration;
    }
    return cfg;
}

Phase1Result
ensurePhase1(exp::BehaviorDb &db, const std::string &cache_path,
             const Phase1Options &opts)
{
    std::vector<press::Version> versions = opts.versions;
    if (versions.empty())
        versions.assign(std::begin(press::allVersions),
                        std::end(press::allVersions));
    std::vector<fault::FaultKind> faults = opts.faults;
    if (faults.empty())
        faults.assign(std::begin(fault::allFaultKinds),
                      std::end(fault::allFaultKinds));

    Phase1Result result;
    db.setFingerprint(phase1Fingerprint(opts));
    if (!opts.fresh && !cache_path.empty())
        db.load(cache_path);

    std::vector<exp::BehaviorDb::Key> todo;
    for (press::Version v : versions) {
        for (fault::FaultKind k : faults) {
            if (!opts.fresh && db.has(v, k))
                ++result.cached;
            else
                todo.push_back({v, k});
        }
    }
    if (todo.empty())
        return result;

    // Jobs write into slots indexed like `todo`; merging back into
    // the (ordered) BehaviorDb happens after the barrier, in key
    // order, so the database never depends on completion order.
    std::vector<model::MeasuredBehavior> slots(todo.size());
    bool collect_stats = opts.netStats && !opts.measureFn;
    std::vector<std::vector<net::PortStats>> statSlots(
        collect_stats ? todo.size() : 0);

    auto secondsOf = [](sim::Tick t) {
        return static_cast<double>(t) / static_cast<double>(sim::sec(1));
    };

    std::vector<Job> jobs;
    // jobSlot[j] maps a job index to its `todo` slot; warm-up jobs
    // (which produce no behaviour of their own) map to -1.
    std::vector<std::ptrdiff_t> jobSlot;

    // Per-combination warm state, shared between the warm-up job and
    // its fault jobs via stable references (deque never reallocates
    // existing elements). The last fault job of a combination frees
    // the snapshot so peak memory stays at O(workers) worlds.
    struct WarmState
    {
        std::unique_ptr<exp::Experiment> exp;
        sim::Snapshot snap;
        std::size_t remaining = 0;
    };
    std::deque<WarmState> warm;

    if (opts.measureFn) {
        // Runner override: no shared warm-up (the override owns the
        // whole measurement), so every grid point stays independent.
        jobs.reserve(todo.size());
        for (std::size_t i = 0; i < todo.size(); ++i) {
            auto [v, k] = todo[i];
            exp::ExperimentConfig cfg = phase1Config(v, k, opts);
            Job job;
            job.label = std::string(press::versionName(v)) + " x " +
                        fault::faultName(k);
            job.seed = cfg.seed;
            job.tag = phase1Tag(v, k);
            job.units = secondsOf(cfg.duration);
            job.work = [&slots, i, cfg, &opts](const Job &) {
                slots[i] = opts.measureFn(cfg);
            };
            jobs.push_back(std::move(job));
            jobSlot.push_back(static_cast<std::ptrdiff_t>(i));
        }
    } else {
        // Fork path: one warm-up job per combination, then its fault
        // jobs on the same strand (sequential, in submission order,
        // sharing the warmed snapshot).
        for (press::Version v : versions) {
            std::vector<std::size_t> mine;
            std::vector<fault::FaultKind> mineFaults;
            for (std::size_t i = 0; i < todo.size(); ++i) {
                if (todo[i].first == v) {
                    mine.push_back(i);
                    mineFaults.push_back(todo[i].second);
                }
            }
            if (mine.empty())
                continue;

            exp::ExperimentConfig warmCfg =
                phase1WarmConfig(v, mineFaults, opts);
            std::string strand =
                "phase1/" + std::string(press::versionName(v));
            warm.emplace_back();
            WarmState &ws = warm.back();
            ws.remaining = mine.size();

            Job wj;
            wj.label =
                std::string(press::versionName(v)) + " warm-up";
            wj.seed = warmCfg.seed;
            wj.tag = kWarmupJobTag;
            wj.strand = strand;
            wj.units = secondsOf(warmCfg.injectAt);
            wj.work = [&ws, warmCfg](const Job &) {
                ws.exp = std::make_unique<exp::Experiment>(warmCfg);
                ws.exp->warmUp();
                ws.snap = ws.exp->snapshot();
            };
            jobs.push_back(std::move(wj));
            jobSlot.push_back(-1);

            for (std::size_t i : mine) {
                auto [vv, k] = todo[i];
                exp::ExperimentConfig cfg = phase1Config(vv, k, opts);
                Job job;
                job.label = std::string(press::versionName(vv)) +
                            " x " + fault::faultName(k);
                job.seed = cfg.seed;
                job.tag = phase1Tag(vv, k);
                job.strand = strand;
                job.units = secondsOf(cfg.duration - cfg.injectAt);
                job.work = [&slots, &statSlots, collect_stats, &ws, i,
                            cfg, &opts](const Job &) {
                    struct Release
                    {
                        WarmState &ws;
                        ~Release()
                        {
                            if (--ws.remaining == 0) {
                                ws.snap = sim::Snapshot{};
                                ws.exp.reset();
                            }
                        }
                    } release{ws};
                    if (!ws.exp || ws.snap.empty())
                        throw std::runtime_error(
                            "warm-up failed; cannot fork");
                    ws.exp->forkFrom(ws.snap);
                    exp::ExperimentResult res =
                        ws.exp->injectAndMeasure(cfg.fault,
                                                 cfg.duration);
                    if (collect_stats)
                        statSlots[i] = std::move(res.intraPortStats);
                    exp::ExtractionParams p;
                    p.slo = opts.slo;
                    slots[i] =
                        exp::extractBehavior(res, *cfg.fault, p);
                };
                jobs.push_back(std::move(job));
                jobSlot.push_back(static_cast<std::ptrdiff_t>(i));
            }
        }
    }

    RunnerConfig rc;
    rc.workers = opts.workers;
    rc.progress = opts.progress;
    CampaignReport report = runCampaign(jobs, rc);

    for (std::size_t j = 0; j < jobs.size(); ++j) {
        std::ptrdiff_t slot = jobSlot[j];
        if (slot < 0) {
            // Warm-up jobs produce no behaviour; surface a failure
            // report (its fault jobs fail too and count below).
            if (!report.jobs[j].ok)
                result.failures.push_back(report.jobs[j]);
            continue;
        }
        if (report.jobs[j].ok) {
            db.set(todo[slot].first, todo[slot].second, slots[slot]);
            ++result.measured;
        } else {
            ++result.failed;
            result.failures.push_back(report.jobs[j]);
        }
    }
    result.wallSeconds = report.wallSeconds;

    if (collect_stats) {
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            std::ptrdiff_t slot = jobSlot[j];
            if (slot >= 0 && report.jobs[j].ok)
                opts.netStats(todo[slot].first, todo[slot].second,
                              statSlots[slot]);
        }
    }

    if (result.measured > 0 && !cache_path.empty())
        db.save(cache_path);
    return result;
}

} // namespace performa::campaign

namespace performa::exp {

// BehaviorDb::ensureAll is declared with the database (exp/) but
// implemented here so the serial fallback and the parallel campaign
// are one code path. Link performa_campaign (or the `performa`
// umbrella) to use it.
void
BehaviorDb::ensureAll(const std::string &cache_path,
                      std::function<void(press::Version,
                                         fault::FaultKind, bool)>
                          progress)
{
    campaign::Phase1Options opts;
    if (progress) {
        // Cached pairs are reported up front (in grid order) so the
        // legacy per-pair callback still sees every grid point;
        // measured pairs stream in as their jobs complete.
        BehaviorDb cached;
        cached.setFingerprint(campaign::phase1Fingerprint(opts));
        if (!cache_path.empty())
            cached.load(cache_path);
        for (press::Version v : press::allVersions)
            for (fault::FaultKind k : fault::allFaultKinds)
                if (cached.has(v, k))
                    progress(v, k, true);
        opts.progress = [&progress](const campaign::Progress &p) {
            if (p.last->tag == campaign::kWarmupJobTag)
                return; // shared warm-ups aren't grid points
            auto [v, k] = campaign::phase1TagKey(p.last->tag);
            progress(v, k, false);
        };
    }
    campaign::ensurePhase1(*this, cache_path, opts);
}

} // namespace performa::exp
