#include "campaign/phase1.hh"

#include <iterator>

#include "campaign/seed.hh"
#include "exp/stages.hh"

namespace performa::campaign {

std::uint64_t
phase1Seed(std::uint64_t campaign_seed, press::Version v,
           fault::FaultKind k, std::uint32_t num_nodes,
           double load_scale, const std::string &profile)
{
    // Version 1 of the derivation; bump the leading component if the
    // scheme ever changes so stale caches can't masquerade as fresh.
    // The default profile contributes nothing, keeping every
    // historical seed (and the cached grid) intact.
    if (profile.empty() || profile == "steady")
        return deriveSeed(campaign_seed,
                          {1ull, static_cast<std::uint64_t>(v),
                           static_cast<std::uint64_t>(k),
                           static_cast<std::uint64_t>(num_nodes),
                           seedComponent(load_scale)});
    return deriveSeed(campaign_seed,
                      {1ull, static_cast<std::uint64_t>(v),
                       static_cast<std::uint64_t>(k),
                       static_cast<std::uint64_t>(num_nodes),
                       seedComponent(load_scale),
                       seedComponent(profile)});
}

std::uint64_t
phase1Tag(press::Version v, fault::FaultKind k)
{
    return (static_cast<std::uint64_t>(v) << 32) |
           static_cast<std::uint32_t>(k);
}

exp::BehaviorDb::Key
phase1TagKey(std::uint64_t tag)
{
    return {static_cast<press::Version>(tag >> 32),
            static_cast<fault::FaultKind>(tag & 0xffffffffu)};
}

exp::ExperimentConfig
phase1Config(press::Version v, fault::FaultKind k,
             const Phase1Options &opts)
{
    exp::ExperimentConfig cfg = exp::experimentFor(v, k);
    cfg.cluster.press.numNodes = opts.numNodes;
    cfg.workload.requestRate *= opts.loadScale;
    cfg.profile = opts.profile;
    cfg.seed = phase1Seed(opts.campaignSeed, v, k, opts.numNodes,
                          opts.loadScale, opts.profile.name);
    return cfg;
}

Phase1Result
ensurePhase1(exp::BehaviorDb &db, const std::string &cache_path,
             const Phase1Options &opts)
{
    std::vector<press::Version> versions = opts.versions;
    if (versions.empty())
        versions.assign(std::begin(press::allVersions),
                        std::end(press::allVersions));
    std::vector<fault::FaultKind> faults = opts.faults;
    if (faults.empty())
        faults.assign(std::begin(fault::allFaultKinds),
                      std::end(fault::allFaultKinds));

    Phase1Result result;
    if (!opts.fresh && !cache_path.empty())
        db.load(cache_path);

    std::vector<exp::BehaviorDb::Key> todo;
    for (press::Version v : versions) {
        for (fault::FaultKind k : faults) {
            if (!opts.fresh && db.has(v, k))
                ++result.cached;
            else
                todo.push_back({v, k});
        }
    }
    if (todo.empty())
        return result;

    // Jobs write into slots indexed like `todo`; merging back into
    // the (ordered) BehaviorDb happens after the barrier, in key
    // order, so the database never depends on completion order.
    std::vector<model::MeasuredBehavior> slots(todo.size());
    bool collect_stats = opts.netStats && !opts.measureFn;
    std::vector<std::vector<net::PortStats>> statSlots(
        collect_stats ? todo.size() : 0);

    std::function<model::MeasuredBehavior(std::size_t,
                                          const exp::ExperimentConfig &)>
        measure;
    if (opts.measureFn) {
        measure = [&opts](std::size_t, const exp::ExperimentConfig &cfg) {
            return opts.measureFn(cfg);
        };
    } else {
        measure = [&statSlots, collect_stats, &opts](
                      std::size_t i, const exp::ExperimentConfig &cfg) {
            exp::ExperimentResult res = exp::runExperiment(cfg);
            if (collect_stats)
                statSlots[i] = std::move(res.intraPortStats);
            exp::ExtractionParams p;
            p.slo = opts.slo;
            return exp::extractBehavior(res, *cfg.fault, p);
        };
    }

    std::vector<Job> jobs;
    jobs.reserve(todo.size());
    for (std::size_t i = 0; i < todo.size(); ++i) {
        auto [v, k] = todo[i];
        exp::ExperimentConfig cfg = phase1Config(v, k, opts);
        Job job;
        job.label = std::string(press::versionName(v)) + " x " +
                    fault::faultName(k);
        job.seed = cfg.seed;
        job.tag = phase1Tag(v, k);
        job.work = [&slots, i, cfg, &measure](const Job &) {
            slots[i] = measure(i, cfg);
        };
        jobs.push_back(std::move(job));
    }

    RunnerConfig rc;
    rc.workers = opts.workers;
    rc.progress = opts.progress;
    CampaignReport report = runCampaign(jobs, rc);

    for (std::size_t i = 0; i < todo.size(); ++i) {
        if (report.jobs[i].ok) {
            db.set(todo[i].first, todo[i].second, slots[i]);
            ++result.measured;
        } else {
            ++result.failed;
            result.failures.push_back(report.jobs[i]);
        }
    }
    result.wallSeconds = report.wallSeconds;

    if (collect_stats) {
        for (std::size_t i = 0; i < todo.size(); ++i) {
            if (report.jobs[i].ok)
                opts.netStats(todo[i].first, todo[i].second,
                              statSlots[i]);
        }
    }

    if (result.measured > 0 && !cache_path.empty())
        db.save(cache_path);
    return result;
}

} // namespace performa::campaign

namespace performa::exp {

// BehaviorDb::ensureAll is declared with the database (exp/) but
// implemented here so the serial fallback and the parallel campaign
// are one code path. Link performa_campaign (or the `performa`
// umbrella) to use it.
void
BehaviorDb::ensureAll(const std::string &cache_path,
                      std::function<void(press::Version,
                                         fault::FaultKind, bool)>
                          progress)
{
    campaign::Phase1Options opts;
    if (progress) {
        // Cached pairs are reported up front (in grid order) so the
        // legacy per-pair callback still sees every grid point;
        // measured pairs stream in as their jobs complete.
        BehaviorDb cached;
        if (!cache_path.empty())
            cached.load(cache_path);
        for (press::Version v : press::allVersions)
            for (fault::FaultKind k : fault::allFaultKinds)
                if (cached.has(v, k))
                    progress(v, k, true);
        opts.progress = [&progress](const campaign::Progress &p) {
            auto [v, k] = campaign::phase1TagKey(p.last->tag);
            progress(v, k, false);
        };
    }
    campaign::ensurePhase1(*this, cache_path, opts);
}

} // namespace performa::exp
