/**
 * @file
 * A fixed-size worker thread pool with a FIFO work queue,
 * cancellation, and drain semantics. Deliberately minimal: the
 * campaign runner layers job identity, exception capture, and
 * deterministic result merging on top.
 */

#ifndef PERFORMA_CAMPAIGN_THREAD_POOL_HH
#define PERFORMA_CAMPAIGN_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace performa::campaign {

/**
 * Fixed-size thread pool. Workers are spawned in the constructor and
 * joined in the destructor; tasks submitted after cancel() or during
 * destruction are silently dropped.
 *
 * Tasks must not throw — wrap fallible work in a try/catch that
 * records the failure (the campaign runner does exactly this).
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** Spawn @p workers threads (at least 1). */
    explicit ThreadPool(unsigned workers);

    /** Cancels queued tasks, waits for running ones, joins workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; wakes one idle worker. */
    void submit(Task task);

    /**
     * Drop every queued-but-unstarted task. Tasks already running
     * finish normally. Subsequent submit() calls are no-ops.
     */
    void cancel();

    /** Block until the queue is empty and all workers are idle. */
    void drain();

    unsigned workerCount() const { return static_cast<unsigned>(workers_.size()); }

    /** @return true once cancel() has been called. */
    bool cancelled() const;

  private:
    void workerLoop();

    mutable std::mutex mu_;
    std::condition_variable wake_;   ///< signals workers: work or stop
    std::condition_variable idle_;   ///< signals drain(): all quiet
    std::deque<Task> queue_;
    std::vector<std::thread> workers_;
    unsigned active_ = 0;   ///< tasks currently executing
    bool stopping_ = false; ///< destructor has begun
    bool cancelled_ = false;
};

/**
 * Worker count to use when the caller didn't pick one: the
 * PERFORMA_JOBS environment variable when set to a positive integer,
 * otherwise std::thread::hardware_concurrency() (minimum 1).
 */
unsigned defaultWorkerCount();

} // namespace performa::campaign

#endif // PERFORMA_CAMPAIGN_THREAD_POOL_HH
