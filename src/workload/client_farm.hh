/**
 * @file
 * The client population: open-loop Poisson request generation over a
 * Zipf-popular file set, round-robin DNS across the server nodes, and
 * the paper's request timeouts (2 s to connect, 6 s to complete).
 * Successes and failures are recorded into per-second time series —
 * the raw material of the paper's throughput plots and of the
 * availability metric (fraction of requests served successfully).
 */

#ifndef PERFORMA_WORKLOAD_CLIENT_FARM_HH
#define PERFORMA_WORKLOAD_CLIENT_FARM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/time_series.hh"
#include "sim/types.hh"

namespace performa::wl {

/** Workload parameters. */
struct WorkloadConfig
{
    double requestRate = 6000.0; ///< aggregate offered load (req/s)
    std::size_t numFiles = 60000; ///< working set (uniform size)
    double zipfAlpha = 0.8;      ///< web-trace-like popularity skew
    sim::Tick connectTimeout = sim::sec(2);
    sim::Tick requestTimeout = sim::sec(6);
    std::uint64_t requestBytes = 300;
};

/**
 * Drives the cluster through the client network. One instance models
 * the whole set of client machines.
 */
class ClientFarm
{
  public:
    ClientFarm(sim::Simulation &s, net::Network &client_net,
               std::vector<net::PortId> server_ports,
               std::vector<net::PortId> client_ports, WorkloadConfig cfg);

    /** Begin generating requests (runs until stop()). */
    void start();

    /** Stop generating new requests. */
    void stop();

    const sim::TimeSeries &served() const { return served_; }
    const sim::TimeSeries &failed() const { return failed_; }
    const sim::TimeSeries &offered() const { return offered_; }

    std::uint64_t totalServed() const { return totalServed_; }
    std::uint64_t totalFailed() const { return totalFailed_; }
    std::uint64_t totalOffered() const { return totalOffered_; }

    /** In-flight (not yet answered or timed out) request count. */
    std::size_t pendingCount() const { return pending_.size(); }

    /** Response-time statistics of served requests (microseconds). */
    const sim::OnlineStats &latency() const { return latency_; }

    const WorkloadConfig &config() const { return cfg_; }
    const sim::ZipfSampler &popularity() const { return zipf_; }

  private:
    struct Pending
    {
        sim::Tick sentAt;
    };

    void arrivalTick();
    void issueRequest();
    void onResponse(net::Frame &&f);
    void expire(sim::RequestId id);

    sim::Simulation &sim_;
    net::Network &net_;
    std::vector<net::PortId> serverPorts_;
    std::vector<net::PortId> clientPorts_;
    WorkloadConfig cfg_;
    sim::ZipfSampler zipf_;

    bool running_ = false;
    std::uint64_t generation_ = 0;
    sim::RequestId nextReq_ = 1;
    std::size_t rrServer_ = 0;
    std::size_t rrClient_ = 0;

    std::unordered_map<sim::RequestId, Pending> pending_;

    sim::TimeSeries served_;
    sim::TimeSeries failed_;
    sim::TimeSeries offered_;
    sim::OnlineStats latency_;
    std::uint64_t totalServed_ = 0;
    std::uint64_t totalFailed_ = 0;
    std::uint64_t totalOffered_ = 0;
};

} // namespace performa::wl

#endif // PERFORMA_WORKLOAD_CLIENT_FARM_HH
