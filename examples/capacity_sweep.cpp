/**
 * @file
 * Capacity sweep: drive one PRESS version at increasing offered load
 * and print served throughput plus request-level availability — the
 * saturation curve behind "near-peak throughput" in Table 1, and a
 * template for using the workload generator standalone.
 *
 *   $ ./capacity_sweep [version 0-4]
 */

#include <cstdio>
#include <cstdlib>

#include "press/cluster.hh"
#include "sim/simulation.hh"
#include "loadgen/client_farm.hh"
#include "loadgen/closed_loop.hh"

using namespace performa;

namespace {

struct Point
{
    double offered;
    double served;
    double availability;
};

Point
measure(press::Version v, double rate)
{
    sim::Simulation sim(11);
    press::ClusterConfig ccfg;
    ccfg.press.version = v;
    press::Cluster cluster(sim, ccfg);

    wl::WorkloadConfig wcfg;
    wcfg.requestRate = rate;
    wcfg.numFiles = 60000;
    wl::ClientFarm farm(sim, cluster.clientNet(),
                        cluster.serverClientPorts(),
                        cluster.clientMachinePorts(), wcfg);

    cluster.startAll();
    sim.runUntil(sim::sec(2));
    cluster.prewarm(wcfg.numFiles);
    farm.start();
    sim.runUntil(sim::sec(50));

    Point p;
    p.offered = farm.offered().meanRate(sim::sec(20), sim::sec(50));
    p.served = farm.served().meanRate(sim::sec(20), sim::sec(50));
    p.availability =
        farm.totalOffered()
            ? static_cast<double>(farm.totalServed()) /
                  static_cast<double>(farm.totalOffered())
            : 0.0;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    int vi = argc > 1 ? std::atoi(argv[1]) : 0;
    press::Version v = press::allVersions[vi % 5];
    double peak = press::paperThroughput(v);

    std::printf("capacity sweep: %s (paper near-peak %.0f req/s)\n\n",
                press::versionName(v), peak);
    std::printf("open loop (Poisson arrivals, as in the paper):\n");
    std::printf("%10s %10s %14s\n", "offered", "served", "availability");
    for (double frac : {0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25}) {
        Point p = measure(v, frac * peak);
        std::printf("%7.0f/s %7.0f/s %13.2f%%%s\n", p.offered, p.served,
                    100 * p.availability,
                    frac >= 1.0 ? "   (saturated)" : "");
    }

    std::printf("\nclosed loop (fixed user population, 50 ms think "
                "time):\n");
    std::printf("%10s %10s %14s\n", "users", "served", "mean latency");
    for (std::size_t users : {50, 200, 400, 800}) {
        sim::Simulation sim(13);
        press::ClusterConfig ccfg;
        ccfg.press.version = v;
        press::Cluster cluster(sim, ccfg);
        wl::ClosedLoopConfig wcfg;
        wcfg.users = users;
        wcfg.numFiles = 60000;
        wl::ClosedLoopFarm farm(sim, cluster.clientNet(),
                                cluster.serverClientPorts(),
                                cluster.clientMachinePorts(), wcfg);
        cluster.startAll();
        sim.runUntil(sim::sec(2));
        cluster.prewarm(wcfg.numFiles);
        farm.start();
        sim.runUntil(sim::sec(40));
        std::printf("%10zu %7.0f/s %11.2f ms\n", users,
                    farm.served().meanRate(sim::sec(15), sim::sec(40)),
                    farm.latency().mean() / 1000.0);
    }
    std::printf("\n(closed loops self-throttle: latency, not failure "
                "count, absorbs saturation)\n");
    return 0;
}
