/**
 * @file
 * Failure drill: inject any fault of the paper's fault model (Table
 * 2) into any PRESS version and watch the annotated timeline plus the
 * extracted 7-stage behaviour — phase 1 of the methodology as an
 * interactive tool.
 *
 *   $ ./failure_drill <version 0-4> <fault 0-10>
 *
 * Versions: 0 TCP-PRESS, 1 TCP-PRESS-HB, 2 VIA-PRESS-0,
 *           3 VIA-PRESS-3, 4 VIA-PRESS-5
 * Faults: 0 link, 1 switch, 2 node-crash, 3 node-freeze,
 *         4 kernel-mem, 5 pin, 6 app-crash, 7 app-hang,
 *         8 null-ptr, 9 off-by-N ptr, 10 off-by-N size
 */

#include <cstdio>
#include <cstdlib>

#include "exp/behavior_db.hh"
#include "exp/report.hh"
#include "exp/stages.hh"

using namespace performa;

int
main(int argc, char **argv)
{
    int vi = argc > 1 ? std::atoi(argv[1]) : 1;
    int fi = argc > 2 ? std::atoi(argv[2]) : 0;
    press::Version v = press::allVersions[vi % 5];
    fault::FaultKind k = fault::allFaultKinds[fi % 11];

    std::printf("failure drill: %s under %s\n\n", press::versionName(v),
                fault::faultName(k));

    exp::ExperimentConfig cfg = exp::experimentFor(v, k);
    // Keep the drill snappy: shorter fault + run than the canonical
    // experiment, but the same dynamics.
    if (cfg.fault->duration > sim::sec(90))
        cfg.fault->duration = sim::sec(90);
    cfg.duration = cfg.injectAt + cfg.fault->duration + sim::sec(120);

    exp::ExperimentResult res = exp::runExperiment(cfg);

    std::printf("markers:\n");
    exp::printMarkers(res);
    std::printf("\nthroughput timeline:\n");
    exp::printSeries(res, sim::sec(40), cfg.duration, sim::sec(5));

    std::printf("\nextracted 7-stage behaviour:\n");
    model::MeasuredBehavior mb = exp::extractBehavior(res, *cfg.fault);
    exp::printBehavior(mb);
    std::printf("\nend state: %s\n",
                res.endSplintered
                    ? "splintered - an operator must reset the cluster"
                    : "healthy single cluster");
    return 0;
}
