/**
 * @file
 * What-if designer: the Section 6.3 use case as a tool. You believe
 * your SAN will drop packets every X days, your team will add a VIA
 * bug every Y days, and the substrate will fall over every Z days —
 * should you deploy on TCP or on VIA?
 *
 *   $ ./whatif_designer [dropDays] [bugDays] [systemDays]
 *
 * (0 disables a fault source; defaults reproduce the paper's
 * pessimistic combination of Figure 10.)
 *
 * The tool measures (or loads) the phase-1 behaviours, evaluates the
 * phase-2 model for every PRESS version under your fault beliefs,
 * and prints a recommendation.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/scenarios.hh"
#include "exp/behavior_db.hh"

using namespace performa;

int
main(int argc, char **argv)
{
    const double day = 86400.0;
    double drop_days = argc > 1 ? std::atof(argv[1]) : 30;
    double bug_days = argc > 2 ? std::atof(argv[2]) : 14;
    double system_days = argc > 3 ? std::atof(argv[3]) : 30;

    std::printf("what-if designer: VIA packet drops every %.0f days, "
                "extra VIA bugs every %.0f days,\n"
                "VIA substrate crashes every %.0f days "
                "(0 = never)\n\n",
                drop_days, bug_days, system_days);

    exp::BehaviorDb db;
    const char *env = std::getenv("PERFORMA_PHASE1_CACHE");
    std::string cache = env ? env : "performa_phase1.csv";
    std::printf("loading phase-1 behaviours from %s "
                "(measuring any missing pairs)...\n\n",
                cache.c_str());
    db.ensureAll(cache);

    model::ScenarioOptions opts;
    opts.appMttfSec = 30 * day;
    opts.viaPacketDropMttfSec = drop_days > 0 ? drop_days * day : 0;
    opts.viaExtraAppMttfSec = bug_days > 0 ? bug_days * day : 0;
    opts.viaSystemFaultMttfSec = system_days > 0 ? system_days * day : 0;

    struct Row
    {
        press::Version v;
        model::PerfResult r;
    };
    std::vector<Row> rows;
    for (press::Version v : press::allVersions)
        rows.push_back({v, model::evaluateScenario(v, db.lookup(), opts)});

    std::printf("%-14s %12s %14s %16s\n", "version", "throughput",
                "availability", "performability");
    for (const auto &row : rows) {
        std::printf("%-14s %9.0f r/s %13.4f%% %12.0f r/s\n",
                    press::versionName(row.v), row.r.normalTput,
                    100 * row.r.availability, row.r.performability);
    }

    auto best = std::max_element(rows.begin(), rows.end(),
                                 [](const Row &a, const Row &b) {
                                     return a.r.performability <
                                            b.r.performability;
                                 });
    std::printf("\nrecommendation: deploy %s (best performability "
                "under your assumed fault load)\n",
                press::versionName(best->v));

    double k = model::crossoverFactor(press::Version::ViaPress5,
                                      press::Version::TcpPressHb,
                                      db.lookup(), opts);
    std::printf("margin: VIA-PRESS-5's link/switch/app fault rates "
                "could grow %.1fx before TCP-PRESS-HB wins\n",
                k);
    return 0;
}
