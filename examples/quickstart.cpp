/**
 * @file
 * Quickstart: build a 4-node PRESS deployment, drive it with clients,
 * crash a node mid-run, and watch throughput and availability — the
 * smallest end-to-end tour of the performa API.
 *
 *   $ ./quickstart [version 0-4]
 */

#include <cstdio>
#include <cstdlib>

#include "faults/injector.hh"
#include "press/cluster.hh"
#include "sim/simulation.hh"
#include "loadgen/client_farm.hh"

using namespace performa;

int
main(int argc, char **argv)
{
    int vi = argc > 1 ? std::atoi(argv[1]) : 4;
    press::Version version = press::allVersions[vi % 5];
    std::printf("performa quickstart: %s on a simulated 4-node cLAN "
                "cluster\n\n",
                press::versionName(version));

    // 1. One Simulation owns time and randomness for the whole world.
    sim::Simulation sim(/*seed=*/2026);

    // 2. Build the deployment: nodes, networks, stacks, servers.
    press::ClusterConfig cluster_cfg;
    cluster_cfg.press.version = version;
    press::Cluster cluster(sim, cluster_cfg);

    // 3. Attach the client population (Poisson arrivals, Zipf files,
    //    2s/6s timeouts, round-robin DNS).
    wl::WorkloadConfig wl_cfg;
    wl_cfg.requestRate = 0.9 * press::paperThroughput(version);
    wl_cfg.numFiles = 60000;
    wl::ClientFarm farm(sim, cluster.clientNet(),
                        cluster.serverClientPorts(),
                        cluster.clientMachinePorts(), wl_cfg);

    // 4. Cold-start the servers and pre-warm the cooperative cache.
    cluster.startAll();
    sim.runUntil(sim::sec(2));
    cluster.prewarm(wl_cfg.numFiles);
    farm.start();

    // 5. Schedule a node crash at t=30s, node back 40s later.
    fault::Injector injector(sim, cluster);
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::NodeCrash;
    crash.target = 3;
    crash.injectAt = sim::sec(30);
    crash.duration = sim::sec(40);
    injector.schedule(crash);

    // 6. Run and report per-5s throughput.
    std::printf("  time   served req/s   availability so far\n");
    for (int t = 5; t <= 120; t += 5) {
        sim.runUntil(sim::sec(static_cast<std::uint64_t>(t)));
        double rate = farm.served().meanRate(
            sim::sec(static_cast<std::uint64_t>(t - 5)),
            sim::sec(static_cast<std::uint64_t>(t)));
        double avail =
            farm.totalOffered()
                ? 100.0 * static_cast<double>(farm.totalServed()) /
                      static_cast<double>(farm.totalOffered())
                : 100.0;
        const char *note = "";
        if (t == 30)
            note = "  << node 3 crashes";
        if (t == 70)
            note = "  << node 3 reboots";
        std::printf("  %3ds   %12.0f   %18.2f%%%s\n", t, rate, avail,
                    note);
    }

    std::printf("\nfinal: served %llu of %llu requests; cluster %s\n",
                (unsigned long long)farm.totalServed(),
                (unsigned long long)farm.totalOffered(),
                cluster.splintered() ? "SPLINTERED (operator needed)"
                                     : "whole");
    return 0;
}
